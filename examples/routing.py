"""Dynamic batching: single-graph requests routed into micro-batches.

``InferenceService`` (see ``examples/serving.py``) answers requests for
*lists* of graphs.  Online traffic has the opposite shape: independent
single-graph requests, each far too small to amortize a forward pass.
This walkthrough shows the ``BatchingRouter`` that closes the gap:

1. search a strategy as usual and stand up a service over the run's
   shared batch cache;
2. ``submit`` single-graph requests — the router buckets them *by spec*
   and flushes a server-side micro-batch (one collation + one forward)
   when a bucket reaches ``max_batch_size``;
3. drive the router's **simulated clock** with ``tick`` — a bucket whose
   oldest request has waited ``max_delay`` ticks is flushed even when
   half-empty, bounding trickle-traffic latency;
4. use ``predict_one`` when a caller needs an answer synchronously, and
   check the parity guarantee: routed logits are exactly the request's
   row of ``service.predict`` over the assembled micro-batch.

Run:  python examples/routing.py
"""

import numpy as np

from repro import InferenceService, S2PGNNSearcher, SearchConfig
from repro.gnn import GNNEncoder
from repro.graph import load_dataset
from repro.serve import BatchCacheRegistry


def main():
    # -- 1. a searched service, as in the serving walkthrough -------------
    dataset = load_dataset("bbbp", size=160)
    _, _, test_graphs = dataset.split()

    def encoder_factory():
        return GNNEncoder("gin", num_layers=3, emb_dim=32, dropout=0.0, seed=0)

    cache = BatchCacheRegistry()
    searcher = S2PGNNSearcher(encoder_factory(), dataset,
                              config=SearchConfig(epochs=2, seed=0),
                              batch_cache=cache)
    result = searcher.search()
    service = InferenceService(encoder_factory, dataset.num_tasks,
                               supernet=result.supernet, batch_cache=cache)
    print(f"searched spec: {result.spec.describe()}")

    # -- 2. flush-on-size: a full bucket becomes one micro-batch ----------
    rng = np.random.default_rng(7)
    spec_a = result.spec
    spec_b = searcher.space.random_spec(3, rng)
    router = service.router(max_batch_size=8, max_delay=3)

    tickets = [router.submit(g, spec_a if i % 2 == 0 else spec_b)
               for i, g in enumerate(test_graphs[:14])]
    # 7 requests per spec bucket: below max_batch_size, nothing flushed yet.
    print(f"\nsubmitted 14 requests over 2 specs -> "
          f"pending={router.pending}, stats={router.stats()['flushes']}")

    # -- 3. flush-on-deadline via the simulated clock ----------------------
    completed = router.tick(3)  # oldest requests now exceed max_delay
    print(f"after 3 ticks: {len(completed)} requests served by deadline "
          f"flush, pending={router.pending}")

    # -- 4. synchronous single requests + the parity guarantee -------------
    probe = test_graphs[-1]
    logits = service.predict_one(probe, spec_a)
    reference = service.predict([probe], spec_a)[0]
    assert np.array_equal(logits, reference)
    print(f"\npredict_one parity vs predict([g]): exact "
          f"(logit {float(logits[0]):+.4f})")

    for ticket in tickets:  # every ticket resolved by the flushes above
        assert ticket.done and ticket.result().shape == (dataset.num_tasks,)

    stats = router.stats()
    print(f"router: served {stats['served']} requests in {stats['batches']} "
          f"micro-batches (mean size {stats['mean_batch_size']:.1f}), "
          f"flush triggers: {stats['flushes']}")


if __name__ == "__main__":
    main()
