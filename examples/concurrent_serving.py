"""Concurrent serving: worker-pool InferenceServer + real transports.

``examples/routing.py`` drives the dynamic-batching router by hand —
*you* call ``tick()`` and ``flush()``.  A deployment can't do that: it
needs something to drive deadlines on a real clock and something to
execute micro-batches while new requests keep arriving.  This walkthrough
stands up that runtime:

1. search a strategy and build an ``InferenceService`` as usual — the
   whole serve stack underneath is thread-safe (context-local grad state,
   locked registries; see the README's concurrency-model section);
2. wrap it in an ``InferenceServer``: a background ticker thread maps the
   router's simulated clock onto real time, and a pool of worker threads
   executes flushed micro-batches;
3. hammer it from several submitter threads; every ticket records the
   micro-batch it was served in (``batch_graphs``/``batch_index``), so we
   replay each one serially and verify the responses are bit-identical —
   concurrency changes *when* a batch runs, never *what* it computes;
4. speak the same requests through the in-process transport and the
   stdlib HTTP/JSON transport (``submit``/``predict``/``stats``) — the
   wire format a real deployment would see.

Run:  python examples/concurrent_serving.py
"""

import threading
import time

import numpy as np

from repro import InferenceService, S2PGNNSearcher, SearchConfig
from repro.gnn import GNNEncoder
from repro.graph import load_dataset
from repro.serve import (
    BatchCacheRegistry,
    HTTPServingClient,
    HTTPServingTransport,
    InferenceServer,
    InProcessTransport,
)


def main():
    # -- 1. a searched service, as in the serving walkthrough -------------
    dataset = load_dataset("bbbp", size=160)
    _, _, test_graphs = dataset.split()

    def encoder_factory():
        return GNNEncoder("gin", num_layers=3, emb_dim=32, dropout=0.0, seed=0)

    cache = BatchCacheRegistry()
    searcher = S2PGNNSearcher(encoder_factory(), dataset,
                              config=SearchConfig(epochs=2, seed=0),
                              batch_cache=cache)
    result = searcher.search()
    service = InferenceService(encoder_factory, dataset.num_tasks,
                               supernet=result.supernet, batch_cache=cache)
    # An independent reference service for the parity replay below: it
    # shares nothing with the served one except the searched supernet.
    reference = InferenceService(encoder_factory, dataset.num_tasks,
                                 supernet=result.supernet)
    specs = [result.spec, searcher.space.random_spec(3, np.random.default_rng(7))]
    print(f"searched spec: {result.spec.describe()}")

    # -- 2 + 3. the concurrent runtime under multi-threaded load ----------
    tickets = []
    tickets_lock = threading.Lock()

    with InferenceServer(service, num_workers=4, max_batch_size=8,
                         max_delay=4, tick_interval_s=0.002) as server:

        def submitter(worker_id: int):
            for i in range(24):
                graph = test_graphs[(worker_id * 24 + i) % len(test_graphs)]
                ticket = server.submit(graph, specs[i % len(specs)])
                with tickets_lock:
                    tickets.append(ticket)

        start = time.perf_counter()
        threads = [threading.Thread(target=submitter, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.flush()  # release the trailing partial buckets
        rows = [t.wait(timeout=30.0) for t in tickets]
        elapsed = time.perf_counter() - start

        stats = server.stats()
        print(f"\nserved {len(tickets)} requests from 4 submitter threads in "
              f"{elapsed:.3f}s ({len(tickets) / elapsed:.0f} req/s) across "
              f"{stats['server_router']['batches']} micro-batches "
              f"(mean size {stats['server_router']['mean_batch_size']:.1f}, "
              f"{stats['server']['workers']} workers)")

        # Sequence numbers are allocated under the router lock: unique and
        # gapless even with 4 racing submitters.
        seqs = sorted(t.seq for t in tickets)
        assert seqs == list(range(len(tickets)))

        # Bit-identical parity: replay every ticket's recorded micro-batch
        # serially through the independent reference service.
        for ticket, row in zip(tickets, rows):
            replay = reference.predict(list(ticket.batch_graphs), ticket.spec,
                                       batch_size=len(ticket.batch_graphs))
            assert np.array_equal(row, replay[ticket.batch_index])
        print("parity: all responses bit-identical to the serial replay")

        # -- 4a. the same requests through the in-process transport --------
        transport = InProcessTransport(server)
        seq = transport.submit(test_graphs[0], specs[0])
        reply = transport.result(seq, timeout_s=10.0)
        print(f"\nin-process transport: submit -> seq {seq}, result batch "
              f"size {reply['batch_size']}")

        # -- 4b. ... and over real HTTP (stdlib http.server) ---------------
        with HTTPServingTransport(server, port=0) as http:
            client = HTTPServingClient(http.url)
            logits = client.predict(test_graphs[1], specs[0])
            remote_stats = client.stats()
            print(f"HTTP transport on {http.url}: predict -> logits "
                  f"{np.round(logits, 4).tolist()}, server has executed "
                  f"{remote_stats['server']['executed_batches']} micro-batches")

    print("\nserver stopped; every submitted ticket resolved before shutdown")


if __name__ == "__main__":
    main()
