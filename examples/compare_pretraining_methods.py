"""Compare pre-training methods under vanilla vs searched fine-tuning.

Reproduces a slice of paper Table VI interactively: picks three pre-training
methods spanning the SSL taxonomy (Context Prediction, Masked Component
Modeling, Contrastive Learning), fine-tunes each on two downstream datasets
with (a) vanilla fine-tuning and (b) S2PGNN, and prints the per-method gain.

This is the workflow of a practitioner deciding which released checkpoint
to adopt — the paper's point is that the *fine-tuning strategy*, not just
the checkpoint, decides downstream quality.

Run:  python examples/compare_pretraining_methods.py
"""

import numpy as np

from repro.experiments import BENCH_SCALE, average_gain, run_s2pgnn, run_vanilla
from repro.experiments.configs import Scale
from repro.pretrain import PRETRAIN_CATEGORIES

METHODS = ["contextpred", "attrmasking", "graphcl"]
DATASETS = ["bbbp", "esol"]

SCALE = Scale(
    dataset_size=200,
    search_epochs=5,
    finetune_epochs=12,
    patience=12,
    seeds=(0,),
)


def main():
    print(f"{'method':<14} {'SSL':<5} {'dataset':<8} "
          f"{'vanilla':>9} {'S2PGNN':>9} {'gain':>8}")
    print("-" * 60)
    per_method_gains = {}
    for method in METHODS:
        gains = []
        for dataset in DATASETS:
            base = run_vanilla(method, dataset, scale=SCALE)
            ours = run_s2pgnn(method, dataset, scale=SCALE)
            gain = average_gain(base, ours)
            gains.append(gain)
            print(f"{method:<14} {PRETRAIN_CATEGORIES[method]:<5} {dataset:<8} "
                  f"{base['mean']:>9.3f} {ours['mean']:>9.3f} {gain:>7.1%}")
        per_method_gains[method] = float(np.mean(gains))

    print("\nAverage gain from searching the fine-tuning strategy:")
    for method, gain in per_method_gains.items():
        print(f"  {method:<14} {gain:+.1%}")
    print("\nPaper Table VI reports +9.1% .. +17.7% at full scale; the shape "
          "(positive gains regardless of the SSL objective) is the claim.")


if __name__ == "__main__":
    main()
