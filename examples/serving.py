"""Batch serving: persistent models + shared batch caches for inference.

The search (PR 1) made a derived-strategy forward cost one model instead of
|candidates| models, and the segment-plan cache (PR 2) made repeated
inference over the same collated batches nearly free.  This walkthrough
shows the layer that exploits both for many-request / many-spec workloads:

1. search + fine-tune as usual — but every phase shares one
   ``BatchCacheRegistry``, so each split is collated exactly once;
2. wrap the fitted tuner in an ``InferenceService`` and answer repeated
   prediction requests from the persistent fine-tuned model;
3. fan a set of candidate specs out over the cached validation batches
   with ``score_specs`` — one one-hot supernet forward per batch per spec,
   no model construction, no re-collation;
4. inspect the cache counters that make the serving economics visible.

Run:  python examples/serving.py
"""

import numpy as np

from repro import InferenceService, S2PGNNFineTuner, SearchConfig
from repro.core.api import FineTuneConfig
from repro.graph import load_dataset
from repro.pretrain import get_pretrained


def main():
    # -- 1. search + fine-tune with a run-wide shared batch cache ---------
    dataset = load_dataset("bbbp", size=240)
    print(f"dataset: {dataset.info.name} | {len(dataset)} molecules")

    def pretrained_encoder():
        return get_pretrained(
            "contextpred", backbone="gin", num_layers=3, emb_dim=32,
            corpus_size=160, epochs=2,
        )

    tuner = S2PGNNFineTuner(
        pretrained_encoder,
        search_config=SearchConfig(epochs=4, seed=0),
        finetune_config=FineTuneConfig(epochs=10, patience=10),
    )
    result = tuner.fit(dataset)
    print(f"fitted: {tuner.best_spec_.describe()} | "
          f"test {dataset.info.metric} = {result.test_score:.3f}")
    print(f"shared batch cache after fit: {tuner.batch_cache.stats()}")

    # -- 2. a serving endpoint over the fitted run ------------------------
    # from_tuner shares the tuner's batch cache, attaches the searched
    # supernet, and registers the fine-tuned model under its spec.
    service = InferenceService.from_tuner(tuner)
    _, valid_graphs, test_graphs = dataset.split()
    service.warm(test_graphs)  # pre-pay collation + segment plans

    logits = service.predict(test_graphs, tuner.best_spec_)
    print(f"\nserved {logits.shape[0]} predictions "
          f"(mean logit {float(np.mean(logits)):+.3f})")
    # Repeated requests hit the persistent model and pre-built batches.
    for _ in range(3):
        service.predict(test_graphs, tuner.best_spec_)
    print(f"after 4 requests: {service.stats()['batches']}")

    # -- 3. many-spec scoring through the one-hot fast path ---------------
    rng = np.random.default_rng(7)
    candidates = [tuner.best_spec_] + [
        tuner.space.random_spec(3, rng) for _ in range(5)
    ]
    scores = service.score_specs(candidates, valid_graphs,
                                 metric=dataset.info.metric)
    print("\ncandidate specs on the validation split:")
    for entry in sorted(scores, key=lambda e: e.score, reverse=True):
        marker = " <- searched" if entry.spec == tuner.best_spec_ else ""
        print(f"  {entry.score:8.4f}  {entry.spec.describe()}{marker}")

    # -- 4. the serving economics -----------------------------------------
    stats = service.stats()
    print(f"\nmodel registry: {stats['models']}")
    print(f"batch cache:    {stats['batches']}")
    print("every split was collated once; all later requests were cache hits")


if __name__ == "__main__":
    main()
