"""Inspect what the strategy search actually learns.

Runs the bi-level search on two structurally different downstream datasets
and prints, per epoch, the temperature, losses, and the currently derived
strategy — then the final per-dimension candidate probabilities.  This is
the paper's "data-aware" claim made visible: different datasets prefer
different fusion/readout/identity choices.

Run:  python examples/inspect_search.py
"""

import numpy as np

from repro.core import S2PGNNSearcher, SearchConfig
from repro.graph import load_dataset
from repro.pretrain import get_pretrained


def pretrained_encoder():
    return get_pretrained("contextpred", backbone="gin", num_layers=5,
                          emb_dim=32, corpus_size=160, epochs=2)


def inspect(dataset_name: str):
    dataset = load_dataset(dataset_name, size=200)
    print(f"\n=== searching on {dataset_name} "
          f"({dataset.info.task_type}, {dataset.num_tasks} task(s)) ===")
    searcher = S2PGNNSearcher(
        pretrained_encoder(), dataset,
        config=SearchConfig(epochs=6, seed=0),
    )
    result = searcher.search()

    print(f"{'epoch':>5} {'tau':>6} {'train':>8} {'alpha':>8}  derived strategy")
    for entry in result.history:
        print(f"{entry['epoch']:>5} {entry['tau']:>6.2f} "
              f"{entry['train_loss']:>8.4f} {entry['alpha_loss']:>8.4f}  "
              f"{entry['derived']}")

    probs = searcher.controller.probabilities()
    space = searcher.space
    print("\nfinal controller probabilities:")
    print("  fusion: ", {n: round(float(p), 2)
                         for n, p in zip(space.fusion, probs["fusion"])})
    print("  readout:", {n: round(float(p), 2)
                         for n, p in zip(space.readout, probs["readout"])})
    for k in range(probs["identity"].shape[0]):
        row = {n: round(float(p), 2)
               for n, p in zip(space.identity, probs["identity"][k])}
        print(f"  identity[layer {k}]: {row}")

    print(f"\nselected strategy: {result.spec.describe()}")
    print(f"search wall-clock: {result.seconds:.1f}s for a space of "
          f"{space.size(5):,} strategies")
    return result.spec


def main():
    spec_cls = inspect("bbbp")  # classification
    spec_reg = inspect("esol")  # regression
    print("\n=== data-awareness check ===")
    print(f"bbbp strategy: {spec_cls.describe()}")
    print(f"esol strategy: {spec_reg.describe()}")
    if spec_cls != spec_reg:
        print("-> the search adapts the strategy to the dataset (paper Sec. I).")
    else:
        print("-> identical strategies this run; rerun with other seeds to see "
              "dataset-specific choices.")


if __name__ == "__main__":
    main()
