"""Quickstart: search a fine-tuning strategy for a pre-trained GNN.

This is the 60-second tour of the library:

1. load a downstream molecular-property-prediction dataset (BBBP shape);
2. grab a pre-trained encoder from the model zoo (ContextPred + 5-layer GIN,
   pre-trained on the synthetic ZINC-like corpus and cached on disk);
3. let S2PGNN search the 10,206-strategy fine-tuning space and fine-tune the
   derived model;
4. compare against vanilla fine-tuning.

Run:  python examples/quickstart.py
"""

from repro import S2PGNNFineTuner, SearchConfig
from repro.core.api import FineTuneConfig
from repro.finetune import VanillaFineTune, finetune
from repro.gnn import GraphPredictionModel
from repro.graph import load_dataset
from repro.pretrain import get_pretrained


def main():
    # -- 1. downstream dataset (scaled-down BBBP; paper size is 2039) -----
    dataset = load_dataset("bbbp", size=240)
    print(f"dataset: {dataset.info.name} | {len(dataset)} molecules | "
          f"{dataset.num_tasks} task(s) | metric={dataset.info.metric}")

    # -- 2. a pre-trained GNN from the zoo --------------------------------
    def pretrained_encoder():
        return get_pretrained(
            "contextpred", backbone="gin", num_layers=5, emb_dim=32,
            corpus_size=160, epochs=2,
        )

    # -- 3. vanilla fine-tuning baseline ----------------------------------
    vanilla_model = GraphPredictionModel(
        pretrained_encoder(), num_tasks=dataset.num_tasks,
        fusion="last", readout="mean",
    )
    vanilla = finetune(vanilla_model, dataset, strategy=VanillaFineTune(),
                       epochs=15, patience=15, seed=0)
    print(f"\nvanilla fine-tuning:  test ROC-AUC = {vanilla.test_score:.3f}")

    # -- 4. S2PGNN: search to fine-tune ------------------------------------
    tuner = S2PGNNFineTuner(
        pretrained_encoder,
        search_config=SearchConfig(epochs=6, seed=0),
        finetune_config=FineTuneConfig(epochs=15, patience=15),
    )
    result = tuner.fit(dataset)
    print(f"S2PGNN fine-tuning:   test ROC-AUC = {result.test_score:.3f}")
    print(f"searched strategy:    {tuner.best_spec_.describe()}")

    # -- 5. predict on new molecules ---------------------------------------
    predictions = tuner.predict(dataset.graphs[:5])
    print(f"\nlogits for 5 molecules: {predictions.ravel().round(3)}")


if __name__ == "__main__":
    main()
