"""Pre-train your own GNN from scratch and plug it into S2PGNN.

Shows the full substrate API — no model zoo:

1. generate an unlabeled molecular corpus;
2. define a GNN encoder and pre-train it with two different SSL objectives
   (attribute masking and GraphCL) using the library's trainer;
3. checkpoint the encoders; reload them;
4. fine-tune both on a downstream regression dataset with a searched
   strategy, plus a GTOT-regularized variant (the paper notes regularizers
   are orthogonal to S2PGNN and combinable).

Run:  python examples/custom_pretraining.py
"""

import os
import tempfile

from repro import S2PGNNFineTuner, SearchConfig
from repro.core.api import FineTuneConfig
from repro.finetune import GTOTFineTune
from repro.gnn import GNNEncoder
from repro.graph import load_dataset, zinc_corpus
from repro.nn import load_state_dict, save_state_dict
from repro.pretrain import AttrMaskingTask, GraphCLTask, pretrain


def main():
    # -- 1. unlabeled corpus (ZINC15 stand-in) -----------------------------
    corpus = zinc_corpus(size=150, seed=11)
    print(f"corpus: {len(corpus)} molecules, "
          f"avg {sum(g.num_nodes for g in corpus) / len(corpus):.1f} atoms")

    # -- 2. pre-train two encoders with different SSL objectives ----------
    checkpoints = {}
    workdir = tempfile.mkdtemp(prefix="s2pgnn_example_")
    for task_cls in (AttrMaskingTask, GraphCLTask):
        encoder = GNNEncoder(conv_type="gin", num_layers=5, emb_dim=32, seed=0)
        task = task_cls(encoder, seed=0)
        history = pretrain(task, corpus, epochs=3, batch_size=32, seed=0)
        path = os.path.join(workdir, f"{task.name}.npz")
        save_state_dict(encoder.state_dict(), path)
        checkpoints[task.name] = path
        print(f"pre-trained {task.name:<12} ({task.category}): "
              f"loss {history[0]:.3f} -> {history[-1]:.3f}")

    # -- 3. downstream fine-tuning with a searched strategy ----------------
    dataset = load_dataset("esol", size=200)
    print(f"\ndownstream: {dataset.info.name} (regression, RMSE, lower better)")

    for name, path in checkpoints.items():
        def encoder_factory(path=path):
            encoder = GNNEncoder(conv_type="gin", num_layers=5, emb_dim=32, seed=0)
            encoder.load_state_dict(load_state_dict(path))
            return encoder

        tuner = S2PGNNFineTuner(
            encoder_factory,
            search_config=SearchConfig(epochs=5, seed=0),
            finetune_config=FineTuneConfig(epochs=12, patience=12),
        )
        result = tuner.fit(dataset)
        print(f"  {name:<12} S2PGNN            RMSE = {result.test_score:.3f} "
              f"| {tuner.best_spec_.describe()}")

        # Orthogonal regularizer on top of the searched strategy.
        combo = S2PGNNFineTuner(
            encoder_factory,
            search_config=SearchConfig(epochs=5, seed=0),
            finetune_config=FineTuneConfig(epochs=12, patience=12),
            strategy=GTOTFineTune(weight=0.05),
        )
        combo_result = combo.fit(dataset, spec=tuner.best_spec_)
        print(f"  {name:<12} S2PGNN + GTOT     RMSE = {combo_result.test_score:.3f}")


if __name__ == "__main__":
    main()
