"""Gradient-free alternative: regularized evolution over the supernet.

The paper's search is differentiable (Gumbel-softmax).  This example runs
the library's evolutionary searcher — same weight-sharing supernet, but the
discrete space is explored by mutation + tournament selection — and
compares the strategies and costs of the two algorithms on one dataset.

Run:  python examples/evolutionary_search.py
"""

from repro.analysis import spec_distance
from repro.core import (
    EvolutionConfig,
    EvolutionarySearcher,
    S2PGNNSearcher,
    SearchConfig,
)
from repro.graph import load_dataset
from repro.pretrain import get_pretrained


def pretrained_encoder():
    return get_pretrained("contextpred", backbone="gin", num_layers=5,
                          emb_dim=32, corpus_size=160, epochs=2)


def main():
    dataset = load_dataset("bbbp", size=200)

    print("=== differentiable search (paper's algorithm) ===")
    diff = S2PGNNSearcher(
        pretrained_encoder(), dataset, config=SearchConfig(epochs=6, seed=0),
    ).search()
    print(f"strategy: {diff.spec.describe()}")
    print(f"wall-clock: {diff.seconds:.1f}s")

    print("\n=== regularized evolution (gradient-free) ===")
    evo = EvolutionarySearcher(
        pretrained_encoder(), dataset,
        config=EvolutionConfig(warmup_epochs=6, population_size=8,
                               generations=8, seed=0),
    ).search()
    print(f"strategy: {evo.spec.describe()}")
    print(f"validation score under shared weights: {evo.score:.3f}")
    print(f"wall-clock: {evo.seconds:.1f}s")
    for entry in evo.history:
        print(f"  gen {entry['generation']}: best={entry['best_fitness']:.3f}")

    print("\n=== comparison ===")
    distance = spec_distance(diff.spec, evo.spec)
    print(f"normalized strategy distance: {distance:.2f} "
          f"(0 = identical, 1 = fully different)")
    print("Both explore the same 10,206-strategy space on the same shared "
          "weights; the paper's differentiable algorithm needs no fitness "
          "evaluations during optimization, evolution needs one per child.")


if __name__ == "__main__":
    main()
