"""Paper Table VI: S2PGNN vs vanilla fine-tuning across all 10 pre-training
methods and all 8 downstream datasets (GIN backbone).

Paper shape: S2PGNN improves the average over datasets for EVERY
pre-training method (paper reports +9.1% .. +17.7%).  At CPU scale the
per-cell numbers are noisy, so the assertion targets the per-method average
gain; the printed table mirrors the paper's layout.
"""

import numpy as np
import pytest

from repro.experiments import run_table6
from repro.experiments.configs import TABLE6_DATASETS, TABLE6_PRETRAIN_METHODS
from repro.experiments.tables import format_table6

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table06")
def test_table6_s2pgnn_vs_vanilla(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: run_table6(TABLE6_PRETRAIN_METHODS, TABLE6_DATASETS, scale=scale),
    )
    print()
    print(format_table6(results, TABLE6_DATASETS))

    gains = {m: rows["avg_gain"] for m, rows in results.items()}
    print("\nPer-method average gains:",
          {m: f"{g * 100:+.1f}%" for m, g in gains.items()})

    # Shape: every method is covered and the overall average gain is positive
    # (the paper's headline 9-17% claim, relaxed for CPU-scale noise).
    assert set(gains) == set(TABLE6_PRETRAIN_METHODS)
    overall = float(np.mean(list(gains.values())))
    print(f"Overall average gain: {overall * 100:+.1f}%")
    if _strict():
        assert overall > 0.0, f"expected positive mean gain, got {overall:+.3f}"
        # A clear majority of pre-training methods must individually benefit.
        assert sum(g > 0 for g in gains.values()) >= len(gains) * 0.6
