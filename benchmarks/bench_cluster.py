"""Sharded-cluster throughput benchmark: shard counts 1 / 2 / 4.

Drives one deterministic stream of single-graph requests through a
:class:`repro.serve.ClusterRouter` over real spawned shard processes at
shard counts 1 / 2 / 4 and emits ``BENCH_cluster.json``:

* specs are sampled until their affinity homes cover all four shards of
  the widest sweep point (and therefore balance over two — ``hash % 2 ==
  (hash % 4) % 2``), so the shard counts differ only in how much of the
  stream each process owns;
* shard servers run ``max_batch_size=1`` and one worker, so every request
  is its own micro-batch and every response is asserted **bit-identical**
  to ``service.predict([graph], spec, batch_size=1)`` on an independent,
  identically-seeded local service — distributing the stream must change
  *where* a request runs, never *what* it computes;
* logit memoization is off in the shards and the reference, and each
  sweep point gets one untimed warm-up pass (model build + cache fill),
  so the timed region is steady-state serving.

Where the speedup comes from — and the single-core caveat
---------------------------------------------------------
This CI box has **one CPU core** (``cpu_count`` is in the JSON), so raw
CPU overlap across shard processes is physically impossible here.  Like
``bench_concurrency.py``, the bench emulates the offloaded deployment the
cluster targets: each shard's ``pre_execute`` hook sleeps
``offload_stall_s`` per micro-batch (``stall_factor`` x the measured
serial per-request compute, floored at ``min_stall_s``), releasing the
GIL exactly like a device wait.  Stalls on *different shards* overlap;
within one shard they serialize — which is precisely the scaling the
shard sweep measures.  The in-process serial number is recorded alongside
for the single-process comparison.

The acceptance contract is routed throughput at 4 shards >= 2x the
1-shard number, with bit-identical logits.

Run modes:

* ``python benchmarks/bench_cluster.py`` — full config, writes the JSON
  snapshot next to this file (``--smoke`` / ``REPRO_BENCH_TIER=smoke``
  for a fast sanity config that does not overwrite the snapshot).
* ``pytest benchmarks/bench_cluster.py`` — smoke config, asserts the
  throughput/parity contract, does not overwrite the snapshot
  (``REPRO_BENCH_WRITE=1`` writes it; ``REPRO_BENCH_SKIP=1`` skips).
"""

import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_cluster.json")

SMOKE = {"num_layers": 2, "emb_dim": 16, "dataset_size": 48, "requests": 32,
         "repeats": 2, "stall_factor": 4.0, "min_stall_s": 0.02,
         "driver_threads": 8, "shards": (1, 2, 4)}
FULL = {"num_layers": 3, "emb_dim": 32, "dataset_size": 96, "requests": 96,
        "repeats": 3, "stall_factor": 4.0, "min_stall_s": 0.02,
        "driver_threads": 8, "shards": (1, 2, 4)}


def smoke_mode() -> bool:
    return (os.environ.get("REPRO_BENCH_TIER") == "smoke"
            or "--smoke" in sys.argv)


def _build(cfg, seed=0):
    from repro.core import DEFAULT_SPACE
    from repro.graph import load_dataset
    from repro.serve import ShardServiceConfig, spec_affinity

    config = ShardServiceConfig(
        dataset="bbbp", size=cfg["dataset_size"],
        num_layers=cfg["num_layers"], emb_dim=cfg["emb_dim"],
        batch_size=8, seed=seed,
        logit_cache_size=0)  # memoization off: every request re-executes
    dataset = load_dataset("bbbp", size=cfg["dataset_size"])

    # One spec per affinity home of the widest sweep point, so 4 shards
    # each own a spec and 2 shards split them evenly.
    max_shards = max(cfg["shards"])
    rng = np.random.default_rng((seed, 92))
    by_home = {}
    while len(by_home) < max_shards:
        spec = DEFAULT_SPACE.random_spec(cfg["num_layers"], rng)
        by_home.setdefault(spec_affinity(spec, max_shards), spec)
    specs = [by_home[home] for home in sorted(by_home)]
    stream = [(dataset.graphs[i % len(dataset.graphs)],
               specs[i % len(specs)]) for i in range(cfg["requests"])]
    return config, specs, stream


def _run_serial(service, stream):
    """The stream, one batch-of-one at a time: the bit-parity reference."""
    return [service.predict([graph], spec, batch_size=1)[0]
            for graph, spec in stream]


def _run_cluster(cluster, stream, driver_threads):
    """The stream through the cluster, driver-threaded; (rows, seconds)."""
    def one(item):
        graph, spec = item
        return cluster.predict(graph, spec, timeout_s=300)

    with ThreadPoolExecutor(max_workers=driver_threads) as pool:
        start = time.perf_counter()
        rows = list(pool.map(one, stream))
        elapsed = time.perf_counter() - start
    return rows, elapsed


def bench_shard_sweep(cfg, seed=0):
    from repro.serve import ClusterRouter, launch_shards

    config, specs, stream = _build(cfg, seed)
    requests = cfg["requests"]

    # Serial single-process reference, independent and identically seeded.
    reference = config()
    serial_rows = _run_serial(reference, stream)      # warm-up + reference
    start = time.perf_counter()
    _run_serial(reference, stream)
    serial_steady_s = time.perf_counter() - start
    per_request_s = serial_steady_s / requests
    stall_s = max(cfg["stall_factor"] * per_request_s, cfg["min_stall_s"])

    per_shard_count = {}
    for num_shards in cfg["shards"]:
        shards = launch_shards(config, num_shards, num_workers=1,
                               max_batch_size=1, tick_interval_s=0.002,
                               offload_stall_s=stall_s)
        try:
            cluster = ClusterRouter([s.client(timeout_s=300) for s in shards])
            _run_cluster(cluster, stream, cfg["driver_threads"])  # warm-up
            best = np.inf
            for _ in range(cfg["repeats"]):
                rows, elapsed = _run_cluster(cluster, stream,
                                             cfg["driver_threads"])
                assert len(rows) == requests
                for row, ref in zip(rows, serial_rows):
                    assert np.array_equal(row, ref), "parity violation"
                best = min(best, elapsed)
            dispatched = cluster.stats()["cluster"]["dispatched"]
        finally:
            for shard in shards:
                shard.stop()
        per_shard_count[str(num_shards)] = {
            "seconds": best,
            "requests_per_s": requests / best,
            "dispatched_last_run": dispatched,
        }
    base = per_shard_count[str(cfg["shards"][0])]["requests_per_s"]
    for entry in per_shard_count.values():
        entry["speedup_vs_1_shard"] = entry["requests_per_s"] / base
    return {
        "requests": requests,
        "num_specs": len(specs),
        "cpu_count": os.cpu_count(),
        "serial_steady_s": serial_steady_s,
        "serial_requests_per_s": requests / serial_steady_s,
        "per_request_compute_s": per_request_s,
        "offload_stall_s": stall_s,
        "stall_factor": cfg["stall_factor"],
        "parity": "bit-identical to serial service.predict "
                  "(asserted per run)",
        "shard_sweep": per_shard_count,
        "speedup_4_vs_1_shards": per_shard_count[str(cfg["shards"][-1])][
            "speedup_vs_1_shard"],
    }


def run_benchmark(cfg=None, seed=0):
    cfg = cfg or (SMOKE if smoke_mode() else FULL)
    return {
        "benchmark": "cluster",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in cfg.items()},
        "shard_sweep": bench_shard_sweep(cfg, seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke tier)
# ----------------------------------------------------------------------
def test_cluster_throughput_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(SMOKE)
    print(json.dumps(results, indent=2))
    sweep = results["shard_sweep"]
    # Parity is asserted inside the sweep (bit-identical rows per run).
    assert sweep["speedup_4_vs_1_shards"] >= 2.0, sweep
    assert sweep["shard_sweep"]["2"]["speedup_vs_1_shard"] >= 1.3, sweep
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    if smoke_mode():
        print("\nsmoke mode: snapshot not written")
    else:
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)
        print(f"\nwrote {RESULT_PATH}")
