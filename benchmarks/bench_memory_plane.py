"""Inference memory plane benchmark: float32 + workspaces vs float64 serving.

PR 7 gave the serve stack an execution policy (``repro.nn.policy``):
float32 compute with preallocated forward workspaces.  This benchmark
measures what that buys on the steady-state serving path — repeated
``InferenceService.predict`` requests over a warmed batch cache, response
memoization off so every request pays the real forward — and emits
``BENCH_memory_plane.json``:

* **steady-state throughput** at float64 (the historical default policy)
  vs float32 + workspace pool, same fitted weights (both services derive
  from one deterministic supernet);
* **workspace economics** — pool hit/miss counters after warmup and after
  the timed run; the contract is *zero* steady-state misses (every kernel
  output buffer leased, nothing allocated) and the acceptance snapshot
  records the steady-state hit rate (1.0 by construction when the miss
  delta is zero);
* **accuracy cost** — max |logit_f32 - logit_f64| and the metric-score
  delta on the same fixed-seed evaluation, the committed number backing
  the toleranced serving-parity contract in
  ``tests/serve/test_memory_plane.py``.

Run modes (same protocol as the other benches):

* ``python benchmarks/bench_memory_plane.py`` — full config, writes the
  JSON snapshot (``--smoke`` / ``REPRO_BENCH_TIER=smoke`` for the sanity
  config, no overwrite).
* ``pytest benchmarks/bench_memory_plane.py`` — smoke config, asserts the
  speedup/allocation/accuracy contract (``REPRO_BENCH_WRITE=1`` writes,
  ``REPRO_BENCH_SKIP=1`` skips).
"""

import json
import os
import sys
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_memory_plane.json")

SMOKE = {"num_layers": 5, "emb_dim": 32, "dataset_size": 160,
         "batch_size": 32, "requests": 6, "repeats": 2}
FULL = {"num_layers": 5, "emb_dim": 64, "dataset_size": 240,
        "batch_size": 64, "requests": 10, "repeats": 3}


def smoke_mode() -> bool:
    return (os.environ.get("REPRO_BENCH_TIER") == "smoke"
            or "--smoke" in sys.argv)


def _build_service(cfg, policy, seed=0):
    """A serving stack under ``policy`` over one deterministic supernet.

    Response memoization is off (``logit_cache_size=0``): the benchmark
    measures the forward path, not the LRU.  Both policies build their
    supernet from the same seeds, so the float32 service serves a cast of
    the exact weights the float64 service serves.
    """
    from repro.core import DEFAULT_SPACE
    from repro.core.supernet import S2PGNNSupernet
    from repro.gnn import GNNEncoder
    from repro.graph import load_dataset
    from repro.serve import InferenceService

    dataset = load_dataset("bbbp", size=cfg["dataset_size"])

    def encoder_factory():
        return GNNEncoder("gin", num_layers=cfg["num_layers"],
                          emb_dim=cfg["emb_dim"], dropout=0.0, seed=seed)

    supernet = S2PGNNSupernet(encoder_factory(), DEFAULT_SPACE,
                              num_tasks=dataset.num_tasks, seed=seed)
    supernet.eval()
    service = InferenceService(encoder_factory, dataset.num_tasks,
                               supernet=supernet,
                               batch_size=cfg["batch_size"], seed=seed,
                               logit_cache_size=0, policy=policy)
    spec = DEFAULT_SPACE.random_spec(cfg["num_layers"],
                                     np.random.default_rng((seed, 55)))
    return dataset, service, spec


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_steady_state(cfg, seed=0):
    """Repeated predict requests: float64 default vs float32 + workspaces."""
    from repro.metrics import multitask_score_or_fallback

    results = {}
    logits = {}
    requests = cfg["requests"]
    metric, trues = None, None
    for name, policy in (("float64", None), ("float32", "float32")):
        dataset, service, spec = _build_service(cfg, policy, seed)
        graphs = dataset.graphs
        metric = dataset.info.metric
        trues = np.stack([g.y for g in graphs], axis=0)
        service.warm(graphs)
        logits[name] = service.predict(graphs, spec)  # warmup pass
        pool = service.policy.workspace if service.policy else None
        warm_stats = pool.stats() if pool else None

        def serve_requests(service=service, graphs=graphs, spec=spec):
            for _ in range(requests):
                service.predict(graphs, spec)

        elapsed = _best_of(serve_requests, cfg["repeats"])
        entry = {
            "elapsed_s": elapsed,
            "requests_per_s": requests / elapsed,
            "num_graphs": len(graphs),
        }
        if pool is not None:
            steady_stats = pool.stats()
            new_hits = steady_stats["hits"] - warm_stats["hits"]
            new_misses = steady_stats["misses"] - warm_stats["misses"]
            entry["workspace"] = {
                "warm": warm_stats,
                "steady": steady_stats,
                "steady_misses": new_misses,
                "steady_hit_rate": (new_hits / (new_hits + new_misses)
                                    if new_hits + new_misses else 0.0),
            }
        results[name] = entry

    score64 = multitask_score_or_fallback(
        trues, logits["float64"].astype(np.float64), metric)
    score32 = multitask_score_or_fallback(
        trues, logits["float32"].astype(np.float64), metric)
    results["speedup"] = (results["float64"]["elapsed_s"]
                          / results["float32"]["elapsed_s"])
    results["accuracy"] = {
        "metric": metric,
        "score_float64": float(score64),
        "score_float32": float(score32),
        "score_delta": float(abs(score64 - score32)),
        "logits_max_abs_diff": float(
            np.abs(logits["float32"].astype(np.float64)
                   - logits["float64"]).max()),
    }
    return results


def run_benchmark(cfg=None, seed=0):
    cfg = cfg or (SMOKE if smoke_mode() else FULL)
    return {
        "benchmark": "memory_plane",
        "config": dict(cfg),
        "steady_state": bench_steady_state(cfg, seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke tier)
# ----------------------------------------------------------------------
def test_memory_plane_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    try:
        from benchmarks.conftest import assert_zero_steady_state_misses
    except ImportError:  # invoked with benchmarks/ itself on sys.path
        from conftest import assert_zero_steady_state_misses

    results = run_benchmark(SMOKE)
    print(json.dumps(results, indent=2))
    steady = results["steady_state"]
    workspace = steady["float32"]["workspace"]
    assert_zero_steady_state_misses(workspace["warm"], workspace["steady"])
    assert workspace["steady_hit_rate"] == 1.0, workspace
    # Smoke tier runs a smaller model on a noisy box, so the bar sits
    # under the FULL-tier acceptance (>= 1.3x in the committed snapshot).
    assert steady["speedup"] >= 1.15, steady
    accuracy = steady["accuracy"]
    assert accuracy["logits_max_abs_diff"] <= 5e-4, accuracy
    assert accuracy["score_delta"] <= 1e-3, accuracy
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    if smoke_mode():
        print("\nsmoke mode: snapshot not written")
    else:
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)
        print(f"\nwrote {RESULT_PATH}")
