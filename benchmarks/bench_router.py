"""Throughput benchmark for the dynamic-batching router (repro.serve.router).

Times a stream of *single-graph* prediction requests two ways and emits
``BENCH_router.json``:

1. **Routed** — requests submitted to a ``BatchingRouter`` that assembles
   server-side micro-batches (flush-on-size): one disjoint-union
   collation + one forward per ``max_batch_size`` requests, with the
   micro-batch collations (and their segment plans, PR 2) cached across
   rounds by the service's shared batch cache.  Response memoization is
   disabled so the number measures batching, not request dedup.
2. **Batch-of-one** — what a naive endpoint pays per request: a fresh
   one-graph ``DataLoader`` (collation + segment plans rebuilt from
   scratch every time) and a one-graph forward through the *same*
   persistent model.  Model construction is deliberately excluded — that
   win already belongs to ``bench_serving.py``.

The acceptance contract is routed throughput >= 5x batch-of-one in the
full config, and per-request parity within float noise (batching changes
BLAS summation shapes, so routed rows differ from their own batch-of-one
forwards in the last bits; exact parity against ``service.predict`` over
the assembled micro-batch is pinned separately in
``tests/serve/test_router.py``).

Run modes:

* ``python benchmarks/bench_router.py`` — full config, writes the JSON
  snapshot next to this file (pass ``--smoke`` or set
  ``REPRO_BENCH_TIER=smoke`` for a fast sanity config that does not
  overwrite the snapshot).
* ``pytest benchmarks/bench_router.py`` — smoke config, asserts the
  throughput/parity contract, does not overwrite the snapshot
  (``REPRO_BENCH_WRITE=1`` writes it; ``REPRO_BENCH_SKIP=1`` skips).
"""

import json
import os
import sys
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_router.json")

SMOKE = {"num_layers": 3, "emb_dim": 16, "dataset_size": 60, "requests": 48,
         "max_batch_size": 16, "num_specs": 2, "repeats": 2}
FULL = {"num_layers": 5, "emb_dim": 32, "dataset_size": 160, "requests": 128,
        "max_batch_size": 32, "num_specs": 2, "repeats": 3}


def smoke_mode() -> bool:
    return (os.environ.get("REPRO_BENCH_TIER") == "smoke"
            or "--smoke" in sys.argv)


def _build(cfg, seed=0):
    from repro.core import DEFAULT_SPACE
    from repro.core.supernet import S2PGNNSupernet
    from repro.gnn import GNNEncoder
    from repro.graph import load_dataset
    from repro.serve import InferenceService

    dataset = load_dataset("bbbp", size=cfg["dataset_size"])

    def encoder_factory():
        return GNNEncoder("gin", num_layers=cfg["num_layers"],
                          emb_dim=cfg["emb_dim"], dropout=0.0, seed=seed)

    supernet = S2PGNNSupernet(encoder_factory(), DEFAULT_SPACE,
                              num_tasks=dataset.num_tasks, seed=seed)
    supernet.eval()
    # Memoization off: routed rounds must re-run their forwards, so the
    # measured win is micro-batching + plan reuse, not response dedup.
    service = InferenceService(encoder_factory, dataset.num_tasks,
                               supernet=supernet, seed=seed,
                               logit_cache_size=0)
    rng = np.random.default_rng((seed, 56))
    specs = [DEFAULT_SPACE.random_spec(cfg["num_layers"], rng)
             for _ in range(cfg["num_specs"])]
    stream = [(dataset.graphs[i % len(dataset.graphs)], specs[i % len(specs)])
              for i in range(cfg["requests"])]
    return dataset, service, specs, stream


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_routed_requests(cfg, seed=0):
    """Routed single-request stream vs per-request batch-of-one forwards."""
    from repro.graph import DataLoader
    from repro.nn import no_grad

    dataset, service, specs, stream = _build(cfg, seed)
    models = {spec: service.model_for(spec) for spec in specs}

    def route_stream():
        router = service.router(max_batch_size=cfg["max_batch_size"],
                                max_delay=4)
        tickets = [router.submit(graph, spec) for graph, spec in stream]
        router.flush()
        return tickets

    def single_stream():
        out = []
        with no_grad():
            for graph, spec in stream:
                model = models[spec]
                model.eval()
                for batch in DataLoader([graph], batch_size=1):
                    out.append(model(batch).data.copy())
        return out

    # Parity first (also warms the routed path's batch/plan caches).
    tickets, singles = route_stream(), single_stream()
    parity = max(float(np.abs(t.result() - s[0]).max())
                 for t, s in zip(tickets, singles))
    router_stats = service.default_router.stats()

    routed_s = _best_of(route_stream, cfg["repeats"])
    single_s = _best_of(single_stream, cfg["repeats"])
    requests = cfg["requests"]
    return {
        "requests": requests,
        "num_specs": len(specs),
        "max_batch_size": cfg["max_batch_size"],
        "mean_batch_size": router_stats["mean_batch_size"],
        "routed_s": routed_s,
        "single_s": single_s,
        "routed_requests_per_s": requests / routed_s,
        "single_requests_per_s": requests / single_s,
        "speedup": single_s / routed_s,
        "parity_max_abs_diff": parity,
        "cache": service.batch_cache.stats(),
    }


def run_benchmark(cfg=None, seed=0):
    cfg = cfg or (SMOKE if smoke_mode() else FULL)
    return {
        "benchmark": "router",
        "config": dict(cfg),
        "routed_requests": bench_routed_requests(cfg, seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke tier)
# ----------------------------------------------------------------------
def test_router_throughput_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(SMOKE)
    print(json.dumps(results, indent=2))
    routed = results["routed_requests"]
    assert routed["parity_max_abs_diff"] < 1e-9, routed
    assert routed["speedup"] >= 3.0, routed
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    if smoke_mode():
        print("\nsmoke mode: snapshot not written")
    else:
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)
        print(f"\nwrote {RESULT_PATH}")
