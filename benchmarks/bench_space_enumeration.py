"""Paper Remark 3: the search-space size and why brute force is infeasible.

Verifies the 10,206-strategy count for the 5-layer backbone, benchmarks
full enumeration of the spec space (cheap — specs are just tuples; it is
the *training per spec* that brute force cannot afford), and extrapolates
the brute-force cost from a measured single-spec fine-tuning time.
"""

import pytest

from repro.core import DEFAULT_SPACE, DerivedModel
from repro.finetune import finetune
from repro.gnn import GNNEncoder
from repro.graph import load_dataset


@pytest.mark.benchmark(group="space")
def test_space_size_and_enumeration(benchmark):
    specs = benchmark(lambda: sum(1 for _ in DEFAULT_SPACE.enumerate(5)))
    assert specs == DEFAULT_SPACE.size(5) == 10_206


@pytest.mark.benchmark(group="space")
def test_brute_force_extrapolation(benchmark, scale):
    """Time ONE spec trained to convergence, extrapolate to the full space."""
    dataset = load_dataset("bbbp", size=scale.dataset_size)
    spec = next(iter(DEFAULT_SPACE.enumerate(scale.num_layers)))

    def train_one():
        encoder = GNNEncoder("gin", scale.num_layers, scale.emb_dim, seed=0)
        model = DerivedModel(encoder, spec, dataset.num_tasks, seed=0)
        return finetune(model, dataset, epochs=scale.finetune_epochs,
                        patience=scale.patience, seed=0)

    result = benchmark.pedantic(train_one, rounds=1, iterations=1)
    per_spec = sum(result.train_losses) and benchmark.stats.stats.mean
    total = per_spec * DEFAULT_SPACE.size(scale.num_layers)
    print(f"\nOne spec: {per_spec:.1f}s -> brute force over "
          f"{DEFAULT_SPACE.size(scale.num_layers)} specs ~ {total / 3600:.1f} h")
    assert total > 100 * per_spec  # brute force is orders of magnitude above
