"""Search-algorithm ablations (design choices DESIGN.md calls out).

Not a table in the paper, but the paper's Sec. III-C motivates three design
choices we ablate here on one dataset:

1. **Weight sharing** (Eq. 16): sharing theta across sampled strategies vs
   perturbing theta per sample — sharing must not be slower and should reach
   a comparable-or-better derived strategy.
2. **Differentiable search vs random search**: the Gumbel-softmax search
   must cost far less than training N random strategies to convergence for
   the same candidate coverage.
3. **Temperature annealing**: the entropy of the controller distribution
   must fall as tau anneals (exploration -> commitment).
"""

import numpy as np
import pytest

from repro.core import S2PGNNSearcher, SearchConfig, random_search
from repro.experiments.runner import encoder_factory
from repro.graph import load_dataset

from conftest import run_once


@pytest.fixture(scope="module")
def setup(scale):
    dataset = load_dataset("bbbp", size=scale.dataset_size)
    factory = encoder_factory("contextpred", "gin", scale, seed=0)
    return dataset, factory, scale


@pytest.mark.benchmark(group="search-ablation")
def test_weight_sharing_vs_scratch(benchmark, setup):
    dataset, factory, scale = setup

    def theta(searcher):
        return {n: p.data.copy() for n, p in searcher.supernet.named_parameters()
                if not n.startswith("encoder.")}

    config = SearchConfig(epochs=scale.search_epochs, seed=0)

    def run(weight_sharing):
        searcher = S2PGNNSearcher(
            factory(), dataset,
            config=SearchConfig(epochs=config.epochs, seed=config.seed,
                                weight_sharing=weight_sharing),
        )
        start = theta(searcher)
        result = searcher.search()
        end = theta(searcher)
        drift = max(np.abs(end[n] - start[n]).max() for n in start)
        return searcher, result, end, drift

    _, shared, _, shared_drift = run_once(benchmark, lambda: run(True))
    scratch_searcher, scratch, scratch_end, _ = run(False)
    # The no-sharing ablation re-draws theta from the layer initializers
    # every batch, so the searched weights retain at most one optimizer
    # step of training: their residual from the final epoch's fresh draw
    # is tiny.  Weight sharing is what lets training *accumulate* — the
    # shared run must drift far more than that residual.  (Per-epoch
    # mixture losses are too noisy at CPU scale to compare directly.)
    from repro.core.supernet import S2PGNNSupernet

    last_reinit_seed = config.seed + config.epochs - 1
    fresh_net = S2PGNNSupernet(
        scratch_searcher.supernet.encoder, scratch_searcher.space,
        scratch_searcher.supernet.num_tasks, seed=last_reinit_seed,
    )
    fresh = {n: p.data for n, p in fresh_net.named_parameters()
             if not n.startswith("encoder.")}
    scratch_resid = max(np.abs(scratch_end[n] - fresh[n]).max() for n in fresh)
    print(f"\nshared-theta accumulated drift:    {shared_drift:.4f}")
    print(f"scratch-theta residual from fresh: {scratch_resid:.5f}")
    assert shared_drift > 3 * scratch_resid
    # And sharing must not make the search meaningfully slower.
    assert shared.seconds < scratch.seconds * 5 + 1.0


@pytest.mark.benchmark(group="search-ablation")
def test_differentiable_vs_random_search_cost(benchmark, setup):
    dataset, factory, scale = setup

    def differentiable():
        searcher = S2PGNNSearcher(
            factory(), dataset,
            config=SearchConfig(epochs=scale.search_epochs, seed=0),
        )
        return searcher.search()

    result = run_once(benchmark, differentiable)
    diff_seconds = result.seconds

    import time

    start = time.perf_counter()
    random_search(factory, dataset, num_candidates=4,
                  finetune_epochs=scale.finetune_epochs, seed=0)
    random_seconds = time.perf_counter() - start

    per_candidate = random_seconds / 4
    full_space = 10_206 * per_candidate
    print(f"\ndifferentiable search: {diff_seconds:.1f}s for the whole space")
    print(f"random search: {per_candidate:.1f}s/candidate -> "
          f"{full_space / 3600:.1f}h for all 10,206")
    # The differentiable search must beat exhaustive training by orders of
    # magnitude (this is the paper's efficiency claim).
    assert diff_seconds < full_space / 100


@pytest.mark.benchmark(group="search-ablation")
def test_temperature_annealing_reduces_entropy(benchmark, setup):
    dataset, factory, scale = setup

    def run():
        searcher = S2PGNNSearcher(
            factory(), dataset,
            config=SearchConfig(epochs=max(scale.search_epochs, 4), seed=0,
                                alpha_lr=1e-2),
        )
        result = searcher.search()
        return searcher, result

    searcher, result = run_once(benchmark, run)
    probs = searcher.controller.probabilities()

    def entropy(p):
        p = np.clip(p, 1e-12, 1.0)
        return float(-(p * np.log(p)).sum())

    uniform_fusion = entropy(np.full(7, 1 / 7))
    learned_fusion = entropy(probs["fusion"])
    print(f"\nfusion entropy: uniform={uniform_fusion:.3f} learned={learned_fusion:.3f}")
    # After annealed training the controller must have moved off uniform.
    assert learned_fusion < uniform_fusion + 1e-9
    taus = [h["tau"] for h in result.history]
    assert taus[0] > taus[-1]
