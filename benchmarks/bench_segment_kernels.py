"""Microbenchmark for the segment-kernel layer (repro.nn.segment).

Times the four segment reductions every forward pass bottoms out in —
``segment_sum/mean/max/softmax`` — on a representative batched-molecule
workload (all molecules of a synthetic-MoleculeNet split collated into one
batch, E ~= 50k directed edges), comparing:

1. **plan-backed vs legacy** — the sorted-plan kernels (CSR-matvec
   execution of the reduceat recurrence, rank-sliced vertical max) against
   the ``np.add.at`` / ``np.maximum.at`` reference backend.  The headline
   ``kernel_s`` numbers time the op forward (the part the backend changes);
   ``roundtrip_s`` times forward + full backward for context — the adjoint
   gathers are shared by both backends, so roundtrip ratios are diluted by
   identical autograd machinery.
2. **plan-cached vs plan-per-call** — reusing one precomputed
   :class:`SegmentPlan` (what ``Batch`` caching gives every model-level
   call) against rebuilding the plan from the raw index array per call.
3. **gather-backward scatter** (PR 5) — the ``gather`` / ``__getitem__``
   adjoint for *repeated* index arrays (embedding-id columns of cached
   batches): the two-touch cached-plan scatter in
   :func:`repro.nn.segment.scatter_add` against the ``np.add.at``
   reference it replaced.
4. **registry dispatch overhead** — every public op now routes through
   ``repro.nn.ops.OP_REGISTRY`` (one ContextVar read + one dict hit per
   call) instead of inline backend branches; the contract is <2% added
   cost over calling the resolved kernel directly, measured on a small
   per-call workload where dispatch is least amortized.
5. **compiled C kernels** (PR 10) — the JIT-built ctypes backend
   (``repro.nn.compiled``) against reduceat and legacy per op, the fused
   LSTM-step scan against the tape-composition reference, and the
   one-time JIT build cost with its disk-cache reload and the number of
   scan calls that amortize it.  Contract: >=1.5x over reduceat on the
   fused scan and on at least one segment reduction.

Per-op feature widths mirror the model hot paths: message aggregation
(sum/mean/max) runs at the encoder width, attention softmax at GAT's
per-head score width.

Emits ``BENCH_segment_kernels.json`` next to this file.

Run modes:

* ``python benchmarks/bench_segment_kernels.py`` — full config (E ~= 50k),
  writes the JSON snapshot.
* ``pytest benchmarks/bench_segment_kernels.py`` — quick tier, asserts the
  speedup contract, does not overwrite the snapshot (set
  ``REPRO_BENCH_WRITE=1`` to write it; set ``REPRO_BENCH_SKIP=1`` to skip
  entirely).
"""

import json
import os
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_segment_kernels.json")

#: op -> feature width factor: encoder-width features for aggregation ops,
#: per-head attention scores for softmax.
OP_DIMS = {"segment_sum": "emb", "segment_mean": "emb", "segment_max": "emb",
           "segment_softmax": "heads"}


def _edge_workload(num_graphs, seed=0):
    """One big collated batch of molecules: edge-level segment workload."""
    from repro.graph import Batch, load_dataset

    dataset = load_dataset("bbbp", size=num_graphs)
    batch = Batch(dataset.graphs)
    return batch.edge_index[1], batch.num_nodes, batch.num_edges


def _time(fn, repeats):
    """Best-of-``repeats`` wall time of ``fn`` (seconds)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_times(fn_a, fn_b, rounds):
    """Per-round wall times of two functions run adjacent in time.

    Each round times one call of each, alternating which goes first to
    cancel ordering bias; sustained load drift hits both members of a
    round equally, so per-round ratios stay meaningful on shared
    machines where two separate best-of loops would not (same rationale
    as :func:`bench_dispatch_overhead`'s paired measurement).
    """
    times_a, times_b = [], []
    for r in range(rounds):
        for fn, times in ([(fn_a, times_a), (fn_b, times_b)] if r % 2 == 0
                          else [(fn_b, times_b), (fn_a, times_a)]):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    return np.asarray(times_a), np.asarray(times_b)


def _get_op(op_name):
    from repro.nn import segment_max, segment_mean, segment_softmax, segment_sum

    return {"segment_sum": segment_sum, "segment_mean": segment_mean,
            "segment_max": segment_max, "segment_softmax": segment_softmax}[op_name]


def bench_backends(num_graphs=1800, emb_dim=32, num_heads=2, repeats=5, seed=0):
    """Plan-backed kernels vs legacy, and plan-cached vs plan-per-call."""
    from repro.nn import SegmentPlan, Tensor, no_grad, use_backend

    ids, n, num_edges = _edge_workload(num_graphs, seed)
    plan = SegmentPlan(ids, n)
    # Warm the lazy plan caches so ``plan-cached`` times steady state.
    plan.csr(), plan.rank_slices()
    rng = np.random.default_rng(seed)

    def kernel_sweep(op, data, index, num_segments, backend):
        def run():
            with no_grad(), use_backend(backend):
                op(Tensor(data), index, num_segments)
        return run

    def roundtrip_sweep(op, data, index, num_segments, backend):
        def run():
            x = Tensor(data, requires_grad=True)
            with use_backend(backend):
                out = op(x, index, num_segments)
            out.sum().backward()
        return run

    per_op = {}
    for op_name, width_kind in OP_DIMS.items():
        op = _get_op(op_name)
        width = emb_dim if width_kind == "emb" else num_heads
        data = rng.normal(size=(num_edges, width))
        row = {
            "feature_dim": width,
            "legacy_kernel_s": _time(
                kernel_sweep(op, data, ids, n, "legacy"), repeats),
            "plan_kernel_s": _time(
                kernel_sweep(op, data, plan, None, "reduceat"), repeats),
            "per_call_kernel_s": _time(
                kernel_sweep(op, data, ids, n, "reduceat"), repeats),
            "legacy_roundtrip_s": _time(
                roundtrip_sweep(op, data, ids, n, "legacy"), repeats),
            "plan_roundtrip_s": _time(
                roundtrip_sweep(op, data, plan, None, "reduceat"), repeats),
        }
        row["kernel_speedup_plan_vs_legacy"] = (
            row["legacy_kernel_s"] / row["plan_kernel_s"])
        row["kernel_speedup_plan_vs_per_call"] = (
            row["per_call_kernel_s"] / row["plan_kernel_s"])
        row["roundtrip_speedup_plan_vs_legacy"] = (
            row["legacy_roundtrip_s"] / row["plan_roundtrip_s"])
        per_op[op_name] = row

    def total(key):
        return sum(v[key] for v in per_op.values())

    return {
        "num_graphs": num_graphs,
        "num_edges": num_edges,
        "num_nodes": n,
        "ops": per_op,
        "aggregate_kernel_speedup_plan_vs_legacy":
            total("legacy_kernel_s") / total("plan_kernel_s"),
        "aggregate_roundtrip_speedup_plan_vs_legacy":
            total("legacy_roundtrip_s") / total("plan_roundtrip_s"),
    }


def bench_gather_backward(num_graphs=1800, emb_dim=32, repeats=5, seed=0):
    """Scatter-add adjoint of embedding-style gathers: cached plan vs add.at.

    The workload mirrors ``Embedding`` lookups on a cached batch: the same
    atom-type column (one view of ``batch.x`` per forward) gathers rows of
    a small weight table every epoch, and every backward scatter-adds the
    output gradient back onto the table.
    """
    from repro.nn import Tensor, gather, use_backend
    from repro.nn.segment import scatter_add
    from repro.graph import Batch, load_dataset

    dataset = load_dataset("bbbp", size=num_graphs)
    batch = Batch(dataset.graphs)
    ids = batch.x[:, 0]          # stable storage: the repeated-index case
    num_rows = int(ids.max()) + 1
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(ids.size, emb_dim))
    weight = rng.normal(size=(num_rows, emb_dim))

    def legacy_scatter():
        with use_backend("legacy"):
            scatter_add(g, ids, num_rows)

    def plan_scatter():
        scatter_add(g, ids, num_rows)

    def roundtrip(backend):
        def run():
            x = Tensor(weight, requires_grad=True)
            with use_backend(backend):
                gather(x, batch.x[:, 0]).backward(g)
        return run

    plan_scatter(), plan_scatter()  # two-touch: build + cache the plan
    row = {
        "num_items": int(ids.size),
        "num_rows": num_rows,
        "feature_dim": emb_dim,
        "legacy_scatter_s": _time(legacy_scatter, repeats),
        "plan_scatter_s": _time(plan_scatter, repeats),
        "legacy_roundtrip_s": _time(roundtrip("legacy"), repeats),
        "plan_roundtrip_s": _time(roundtrip("reduceat"), repeats),
    }
    row["scatter_speedup_plan_vs_legacy"] = (
        row["legacy_scatter_s"] / row["plan_scatter_s"])
    row["roundtrip_speedup_plan_vs_legacy"] = (
        row["legacy_roundtrip_s"] / row["plan_roundtrip_s"])
    return row


def bench_dispatch_overhead(pairs=3000, seed=0):
    """Registry dispatch vs calling the resolved kernel directly.

    Times single invocations of ``segment_sum`` on a deliberately small
    workload (400 rows x 8 features) so the fixed per-call dispatch
    cost is as visible as it ever gets; model-sized batches amortize it
    further.  Measurement: ``pairs`` *paired* single-call timings —
    direct and dispatched adjacent in time (order alternating to cancel
    bias), overhead = median of the per-pair ratios.  The two calls of
    a pair run ~0.1ms apart, so sustained load drift cancels inside
    each pair and spikes land in single pairs where the median discards
    them.  (Back-to-back loop timing was +-10% noisy on shared
    machines, swamping the <2% contract.)
    """
    from repro.nn import Tensor, no_grad
    from repro.nn.ops import OP_REGISTRY

    rng = np.random.default_rng(seed)
    num_segments = 40
    ids = np.sort(rng.integers(0, num_segments, 400))
    data = rng.normal(size=(ids.size, 8))
    dispatched = OP_REGISTRY.dispatcher("segment_sum")
    direct = OP_REGISTRY.resolve("segment_sum", "reduceat")
    x = Tensor(data)

    def timed(fn):
        start = time.perf_counter()
        fn(x, ids, num_segments)
        return time.perf_counter() - start

    ratios, direct_times, dispatched_times = [], [], []
    with no_grad():
        for _ in range(20):  # warm-up: dispatch table, allocator, caches
            timed(direct), timed(dispatched)
        for index in range(pairs):
            if index % 2 == 0:
                direct_s, dispatched_s = timed(direct), timed(dispatched)
            else:
                dispatched_s, direct_s = timed(dispatched), timed(direct)
            ratios.append(dispatched_s / direct_s)
            direct_times.append(direct_s)
            dispatched_times.append(dispatched_s)
    return {
        "pairs": pairs,
        "num_items": int(ids.size),
        "feature_dim": int(data.shape[1]),
        "median_direct_s": float(np.median(direct_times)),
        "median_dispatched_s": float(np.median(dispatched_times)),
        "overhead_pct": (float(np.median(ratios)) - 1.0) * 100.0,
    }


def bench_plan_build(num_graphs=1800, repeats=3, seed=0):
    """One-off cost of plan construction (amortized away by Batch caching)."""
    from repro.nn import SegmentPlan

    ids, n, num_edges = _edge_workload(num_graphs, seed)
    build_s = _time(lambda: SegmentPlan(ids, n), repeats)

    def build_full():
        plan = SegmentPlan(ids, n)
        plan.csr(), plan.rank_slices()

    return {
        "plan_build_s": build_s,
        "plan_build_with_kernel_caches_s": _time(build_full, repeats),
        "num_edges": num_edges,
    }


def bench_compiled(num_graphs=1800, emb_dim=32, num_heads=2, repeats=5,
                   seed=0, lstm_steps=16, lstm_batch=128, lstm_hidden=32):
    """Compiled C kernels vs reduceat/legacy + JIT build amortization.

    The build numbers time the two one-off costs real processes pay:
    ``first_build_s`` (cc -O3 into an empty cache — first process on a
    machine) and ``cached_reload_s`` (dlopen of the cached object —
    every later process).  ``scan_calls_to_amortize_build`` divides the
    build cost by the per-call saving of the fused LSTM scan.
    """
    import shutil
    import tempfile

    from repro.nn import SegmentPlan, Tensor, no_grad, use_backend
    from repro.nn.compiled import build
    from repro.nn.ops import OP_REGISTRY

    if build.find_compiler() is None:
        return {"available": False}

    tmp = tempfile.mkdtemp(prefix="repro-bench-compiled-")
    prior = os.environ.get("REPRO_COMPILED_CACHE")
    try:
        os.environ["REPRO_COMPILED_CACHE"] = tmp
        build.reset()
        first_build_s = _time(build.load, 1)
        build.reset()
        cached_reload_s = _time(build.load, 1)
    finally:
        if prior is None:
            os.environ.pop("REPRO_COMPILED_CACHE", None)
        else:
            os.environ["REPRO_COMPILED_CACHE"] = prior
        build.reset()
        shutil.rmtree(tmp, ignore_errors=True)
    build.load()  # steady state (default cache) for the kernel timings

    ids, n, num_edges = _edge_workload(num_graphs, seed)
    plan = SegmentPlan(ids, n)
    plan.csr(), plan.rank_slices()
    rng = np.random.default_rng(seed)

    def kernel_sweep(op, data, index, num_segments, backend):
        def run():
            with no_grad(), use_backend(backend):
                op(Tensor(data), index, num_segments)
        return run

    per_op = {}
    for op_name, width_kind in OP_DIMS.items():
        op = _get_op(op_name)
        width = emb_dim if width_kind == "emb" else num_heads
        data = rng.normal(size=(num_edges, width))
        row = {
            "feature_dim": width,
            "compiled_kernel_s": _time(
                kernel_sweep(op, data, plan, None, "compiled"), repeats),
            "reduceat_kernel_s": _time(
                kernel_sweep(op, data, plan, None, "reduceat"), repeats),
            "legacy_kernel_s": _time(
                kernel_sweep(op, data, ids, n, "legacy"), repeats),
        }
        row["kernel_speedup_compiled_vs_reduceat"] = (
            row["reduceat_kernel_s"] / row["compiled_kernel_s"])
        row["kernel_speedup_compiled_vs_legacy"] = (
            row["legacy_kernel_s"] / row["compiled_kernel_s"])
        per_op[op_name] = row

    # Fused LSTM-step scan (nn/rnn.py routes here under no_grad): the
    # hybrid GEMM + C elementwise kernel vs the tape-composition
    # reference, on a Set2Set/fusion-sized workload.
    dispatch = OP_REGISTRY.dispatcher("lstm_scan")
    x = rng.normal(size=(lstm_steps, lstm_batch, emb_dim))
    w_x = 0.4 * rng.normal(size=(emb_dim, 4 * lstm_hidden))
    w_h = 0.4 * rng.normal(size=(lstm_hidden, 4 * lstm_hidden))
    bias = rng.normal(size=4 * lstm_hidden)

    def scan_sweep(backend):
        def run():
            with no_grad(), use_backend(backend):
                dispatch(Tensor(x), w_x, w_h, bias)
        return run

    compiled_t, reference_t = _paired_times(
        scan_sweep("compiled"), scan_sweep("legacy"), max(2 * repeats, 6))
    lstm_row = {
        "steps": lstm_steps,
        "batch": lstm_batch,
        "input_dim": emb_dim,
        "hidden_dim": lstm_hidden,
        "compiled_scan_s": float(compiled_t.min()),
        "reference_scan_s": float(reference_t.min()),
        # contracted figure: median of per-round ratios (spike-robust)
        "scan_speedup_compiled_vs_reference": float(
            np.median(reference_t / compiled_t)),
    }
    saving = lstm_row["reference_scan_s"] - lstm_row["compiled_scan_s"]
    amortize = first_build_s / saving if saving > 0 else float("inf")

    return {
        "available": True,
        "build": {
            "first_build_s": first_build_s,
            "cached_reload_s": cached_reload_s,
            "scan_calls_to_amortize_build": amortize,
        },
        "num_edges": num_edges,
        "ops": per_op,
        "lstm_scan": lstm_row,
        "best_segment_speedup_compiled_vs_reduceat": max(
            row["kernel_speedup_compiled_vs_reduceat"]
            for row in per_op.values()),
    }


def run_benchmark(num_graphs=1800, emb_dim=32, num_heads=2, repeats=5, seed=0):
    config = {
        "num_graphs": num_graphs,
        "emb_dim": emb_dim,
        "num_heads": num_heads,
        "repeats": repeats,
        "seed": seed,
    }
    return {
        "benchmark": "segment_kernels",
        "config": config,
        "backends": bench_backends(num_graphs, emb_dim, num_heads, repeats, seed),
        "gather_backward": bench_gather_backward(num_graphs, emb_dim, repeats,
                                                 seed),
        "plan_build": bench_plan_build(num_graphs, max(repeats // 2, 1), seed),
        "dispatch_overhead": bench_dispatch_overhead(seed=seed),
        "compiled": bench_compiled(num_graphs, emb_dim, num_heads, repeats,
                                   seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (quick tier)
# ----------------------------------------------------------------------
def test_segment_kernel_speedup_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(num_graphs=400, emb_dim=16, repeats=3)
    print(json.dumps(results, indent=2))
    backends = results["backends"]
    assert backends["aggregate_kernel_speedup_plan_vs_legacy"] >= 3.0, backends
    for op_name, row in backends["ops"].items():
        # Per-op floors are loose (timer noise); the aggregate is the contract.
        assert row["kernel_speedup_plan_vs_legacy"] >= 1.2, (op_name, row)
        assert row["kernel_speedup_plan_vs_per_call"] >= 0.9, (op_name, row)
        assert row["roundtrip_speedup_plan_vs_legacy"] >= 0.95, (op_name, row)
    scatter = results["gather_backward"]
    assert scatter["scatter_speedup_plan_vs_legacy"] >= 2.0, scatter
    assert scatter["roundtrip_speedup_plan_vs_legacy"] >= 1.0, scatter
    dispatch = results["dispatch_overhead"]
    assert dispatch["overhead_pct"] < 2.0, dispatch
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


def test_compiled_backend_speedup_contract():
    """Smoke-tier contract for the compiled backend (auto-skips when no
    C compiler is discovered): >=1.5x over reduceat on the fused LSTM
    scan and on at least one segment reduction."""
    import pytest

    from repro.nn.compiled import build

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    if build.find_compiler() is None:
        pytest.skip("no C compiler discovered")
    results = bench_compiled(num_graphs=400, emb_dim=16, repeats=3)
    print(json.dumps(results, indent=2))
    assert results["available"] is True
    lstm = results["lstm_scan"]
    assert lstm["scan_speedup_compiled_vs_reference"] >= 1.5, lstm
    assert results["best_segment_speedup_compiled_vs_reduceat"] >= 1.5, \
        results["ops"]
    build_info = results["build"]
    assert build_info["cached_reload_s"] < build_info["first_build_s"], \
        build_info


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    with open(RESULT_PATH, "w") as f:
        json.dump(results, f, indent=2)
    print(f"\nwrote {RESULT_PATH}")
