"""Benchmark configuration.

Each benchmark regenerates one of the paper's evaluation tables at CPU
scale and asserts the paper's *shape* (who wins, sign of gaps) rather than
absolute numbers.  Set ``REPRO_BENCH_TIER=smoke`` to run a fast sanity tier
(used in CI-style runs); the default ``bench`` tier regenerates the full
row/column structure of every table.
"""

import os

import pytest

from repro.experiments.configs import BENCH_SCALE, SMOKE_SCALE, Scale


def bench_scale() -> Scale:
    tier = os.environ.get("REPRO_BENCH_TIER", "bench")
    return SMOKE_SCALE if tier == "smoke" else BENCH_SCALE


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def assert_zero_steady_state_misses(warm_stats: dict, steady_stats: dict):
    """The workspace-pool allocation contract (``bench_memory_plane.py``).

    ``warm_stats`` / ``steady_stats`` are :meth:`WorkspacePool.stats`
    snapshots taken after the warmup pass and after the steady-state
    requests.  Steady state must lease every kernel output buffer from
    the pool: not one new allocation (misses frozen), all the new
    traffic served as hits.
    """
    assert steady_stats["misses"] == warm_stats["misses"], (
        f"steady-state allocated "
        f"{steady_stats['misses'] - warm_stats['misses']} new buffers: "
        f"{warm_stats} -> {steady_stats}")
    assert steady_stats["hits"] > warm_stats["hits"], (warm_stats,
                                                       steady_stats)
