"""Throughput benchmark for the batch-serving subsystem (repro.serve).

Times the two serving hot paths and emits ``BENCH_serving.json`` so future
PRs can track the trajectory:

1. **Prediction requests** — repeated ``InferenceService.predict`` calls
   (persistent derived model + shared pre-collated batches) vs the cold
   path a caller without the serving layer pays per request: build a
   fresh ``DerivedModel`` from the encoder factory, warm-start it from
   the supernet, collate an uncached loader, forward.  Logits must be
   bit-identical.
2. **Many-spec scoring** — ``score_specs`` fan-outs over one shared batch
   cache (one-hot supernet fast path, collate once) vs the per-call cold
   path (fresh warm-started model + fresh uncached loader per spec per
   round).  The acceptance contract is >= 2x throughput for repeated
   scoring rounds.

Run modes:

* ``python benchmarks/bench_serving.py`` — full config, writes the JSON
  snapshot next to this file (pass ``--smoke`` or set
  ``REPRO_BENCH_TIER=smoke`` for a fast sanity config that does not
  overwrite the snapshot).
* ``pytest benchmarks/bench_serving.py`` — smoke config, asserts the
  throughput/equivalence contract, does not overwrite the snapshot
  (``REPRO_BENCH_WRITE=1`` writes it; ``REPRO_BENCH_SKIP=1`` skips).
"""

import json
import os
import sys
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_serving.json")

SMOKE = {"num_layers": 3, "emb_dim": 16, "dataset_size": 60, "batch_size": 32,
         "requests": 8, "num_specs": 4, "rounds": 2, "repeats": 2}
FULL = {"num_layers": 5, "emb_dim": 32, "dataset_size": 160, "batch_size": 32,
        "requests": 20, "num_specs": 8, "rounds": 3, "repeats": 3}


def smoke_mode() -> bool:
    return (os.environ.get("REPRO_BENCH_TIER") == "smoke"
            or "--smoke" in sys.argv)


def _build(cfg, seed=0):
    from repro.core import DEFAULT_SPACE
    from repro.core.supernet import S2PGNNSupernet
    from repro.gnn import GNNEncoder
    from repro.graph import load_dataset
    from repro.serve import InferenceService

    dataset = load_dataset("bbbp", size=cfg["dataset_size"])
    _, valid_graphs, _ = dataset.split()

    def encoder_factory():
        return GNNEncoder("gin", num_layers=cfg["num_layers"],
                          emb_dim=cfg["emb_dim"], dropout=0.0, seed=seed)

    supernet = S2PGNNSupernet(encoder_factory(), DEFAULT_SPACE,
                              num_tasks=dataset.num_tasks, seed=seed)
    supernet.eval()
    service = InferenceService(encoder_factory, dataset.num_tasks,
                               supernet=supernet,
                               batch_size=cfg["batch_size"], seed=seed)
    rng = np.random.default_rng((seed, 55))
    specs = [DEFAULT_SPACE.random_spec(cfg["num_layers"], rng)
             for _ in range(cfg["num_specs"])]
    return dataset, valid_graphs, supernet, service, specs, encoder_factory


def _cold_model(encoder_factory, spec, num_tasks, supernet, seed=0):
    from repro.core.supernet import DerivedModel

    model = DerivedModel(encoder_factory(), spec, num_tasks, seed=seed)
    model.load_from_supernet(supernet)
    model.eval()
    return model


def _cold_forward(model, graphs, batch_size):
    from repro.graph import DataLoader
    from repro.nn import no_grad

    preds = []
    with no_grad():
        for batch in DataLoader(graphs, batch_size=batch_size):
            preds.append(model(batch).data.copy())
    return np.concatenate(preds, axis=0)


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_predict_requests(cfg, seed=0):
    """Persistent-model serving vs per-request model build + collation."""
    dataset, graphs, supernet, service, specs, factory = _build(cfg, seed)
    spec = specs[0]
    requests = cfg["requests"]

    warm_logits = service.predict(graphs, spec)  # populate model + batches
    cold_logits = _cold_forward(
        _cold_model(factory, spec, dataset.num_tasks, supernet, seed),
        graphs, cfg["batch_size"])
    max_diff = float(np.abs(warm_logits - cold_logits).max())

    from repro.serve import InferenceService

    # Mid tier: persistent model + shared batch cache, response
    # memoization off — isolates the collation/model-reuse win from the
    # idempotent-request win.
    nolog = InferenceService(factory, dataset.num_tasks, supernet=supernet,
                             batch_cache=service.batch_cache,
                             models=service.models,
                             batch_size=cfg["batch_size"], seed=seed,
                             logit_cache_size=0)

    def serve_requests():
        for _ in range(requests):
            service.predict(graphs, spec)

    def serve_requests_nologit():
        for _ in range(requests):
            nolog.predict(graphs, spec)

    def cold_requests():
        for _ in range(requests):
            model = _cold_model(factory, spec, dataset.num_tasks, supernet, seed)
            _cold_forward(model, graphs, cfg["batch_size"])

    warm_s = _best_of(serve_requests, cfg["repeats"])
    nologit_s = _best_of(serve_requests_nologit, cfg["repeats"])
    cold_s = _best_of(cold_requests, cfg["repeats"])
    return {
        "requests": requests,
        "num_graphs": len(graphs),
        "warm_s": warm_s,
        "warm_nologit_s": nologit_s,
        "cold_s": cold_s,
        "warm_requests_per_s": requests / warm_s,
        "warm_nologit_requests_per_s": requests / nologit_s,
        "cold_requests_per_s": requests / cold_s,
        "speedup": cold_s / warm_s,
        "speedup_nologit": cold_s / nologit_s,
        "logits_max_abs_diff": max_diff,
    }


def bench_spec_scoring(cfg, seed=0):
    """Shared-cache one-hot fan-out vs per-call cold scoring."""
    from repro.metrics import multitask_score_or_fallback

    dataset, graphs, supernet, service, specs, factory = _build(cfg, seed)
    rounds, metric = cfg["rounds"], dataset.info.metric

    # Parity: serving logits per spec == cold model + uncached loader.
    served = service.score_specs(specs, graphs, metric=metric, keep_logits=True)
    max_diff = 0.0
    for entry in served:
        cold = _cold_forward(
            _cold_model(factory, entry.spec, dataset.num_tasks, supernet, seed),
            graphs, cfg["batch_size"])
        max_diff = max(max_diff, float(np.abs(entry.logits - cold).max()))

    trues = np.concatenate([g.y.reshape(1, -1) for g in graphs], axis=0)

    from repro.serve import InferenceService

    nolog = InferenceService(factory, dataset.num_tasks, supernet=supernet,
                             batch_cache=service.batch_cache,
                             models=service.models,
                             batch_size=cfg["batch_size"], seed=seed,
                             logit_cache_size=0)

    def warm_rounds():
        for _ in range(rounds):
            service.score_specs(specs, graphs, metric=metric)

    def nologit_rounds():
        for _ in range(rounds):
            nolog.score_specs(specs, graphs, metric=metric)

    def cold_rounds():
        for _ in range(rounds):
            for spec in specs:
                model = _cold_model(factory, spec, dataset.num_tasks,
                                    supernet, seed)
                logits = _cold_forward(model, graphs, cfg["batch_size"])
                multitask_score_or_fallback(trues, logits, metric)

    warm_s = _best_of(warm_rounds, cfg["repeats"])
    nologit_s = _best_of(nologit_rounds, cfg["repeats"])
    cold_s = _best_of(cold_rounds, cfg["repeats"])
    scored = rounds * len(specs)
    return {
        "num_specs": len(specs),
        "rounds": rounds,
        "warm_s": warm_s,
        "warm_nologit_s": nologit_s,
        "cold_s": cold_s,
        "warm_specs_per_s": scored / warm_s,
        "warm_nologit_specs_per_s": scored / nologit_s,
        "cold_specs_per_s": scored / cold_s,
        "speedup": cold_s / warm_s,
        "speedup_nologit": cold_s / nologit_s,
        "logits_max_abs_diff": max_diff,
        "cache": service.batch_cache.stats(),
    }


def run_benchmark(cfg=None, seed=0):
    cfg = cfg or (SMOKE if smoke_mode() else FULL)
    return {
        "benchmark": "serving",
        "config": dict(cfg),
        "predict_requests": bench_predict_requests(cfg, seed),
        "spec_scoring": bench_spec_scoring(cfg, seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke tier)
# ----------------------------------------------------------------------
def test_serving_throughput_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(SMOKE)
    print(json.dumps(results, indent=2))
    predict, scoring = results["predict_requests"], results["spec_scoring"]
    assert predict["logits_max_abs_diff"] == 0.0, predict
    assert scoring["logits_max_abs_diff"] == 0.0, scoring
    assert predict["speedup"] >= 2.0, predict
    assert scoring["speedup"] >= 2.0, scoring
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    if smoke_mode():
        print("\nsmoke mode: snapshot not written")
    else:
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)
        print(f"\nwrote {RESULT_PATH}")
