"""Worker-pool throughput benchmark for the concurrent serving runtime.

Drives one deterministic stream of single-graph requests through an
:class:`repro.serve.InferenceServer` at worker counts 1 / 2 / 4 and emits
``BENCH_concurrency.json``:

* the driver thread submits requests round-robin over ``num_specs``
  strategy specs with the ticker disabled, so micro-batch composition is
  **identical across worker counts** (flush-on-size plus one trailing
  forced flush) and every response can be asserted **bit-identical** to
  the same stream executed serially through an inline (executor-less)
  ``BatchingRouter`` on an independent, identically-seeded service —
  concurrency must change *when* a micro-batch runs, never *what* it
  computes;
* response memoization is off and the batch/plan caches are warmed before
  timing, so the measured work is micro-batch execution, not request
  dedup or collation.

Where the speedup comes from — and the single-core caveat
---------------------------------------------------------
A worker pool's win is overlap: while one worker is inside a micro-batch,
the others keep draining the queue.  On a multi-core host the overlapped
interval is the numpy/BLAS compute itself (those kernels release the
GIL).  In the deployment this server targets, the overlapped interval is
the **offload latency** — the worker thread blocks on an accelerator or
a remote model shard while the CPU is free.  This CI box has **one CPU
core** (``cpu_count`` is recorded in the JSON), so raw CPU overlap is
physically impossible here; the benchmark therefore emulates the
offload interval explicitly: the server's ``pre_execute`` hook sleeps
``offload_stall_s`` per micro-batch, calibrated as ``stall_factor`` x the
measured serial per-batch compute.  The sleep releases the GIL exactly
like a device wait, so the worker-count sweep measures precisely the
overlap machinery the pool exists for.  The pure-CPU sweep (stall 0) is
also recorded — expect ~flat numbers on one core, real scaling on many.

The acceptance contract is routed throughput at 4 workers >= 2x the
1-worker number on the stalled config, with bit-identical logits.

Run modes:

* ``python benchmarks/bench_concurrency.py`` — full config, writes the
  JSON snapshot next to this file (``--smoke`` / ``REPRO_BENCH_TIER=smoke``
  for a fast sanity config that does not overwrite the snapshot).
* ``pytest benchmarks/bench_concurrency.py`` — smoke config, asserts the
  throughput/parity contract, does not overwrite the snapshot
  (``REPRO_BENCH_WRITE=1`` writes it; ``REPRO_BENCH_SKIP=1`` skips).
"""

import json
import os
import sys
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_concurrency.json")

SMOKE = {"num_layers": 3, "emb_dim": 16, "dataset_size": 60, "requests": 96,
         "max_batch_size": 8, "num_specs": 2, "repeats": 2,
         "stall_factor": 3.0, "workers": (1, 2, 4)}
FULL = {"num_layers": 3, "emb_dim": 32, "dataset_size": 120, "requests": 256,
        "max_batch_size": 16, "num_specs": 4, "repeats": 3,
        "stall_factor": 3.0, "workers": (1, 2, 4)}


def smoke_mode() -> bool:
    return (os.environ.get("REPRO_BENCH_TIER") == "smoke"
            or "--smoke" in sys.argv)


def _build(cfg, seed=0):
    from repro.core import DEFAULT_SPACE
    from repro.gnn import GNNEncoder
    from repro.graph import load_dataset
    from repro.serve import InferenceService

    dataset = load_dataset("bbbp", size=cfg["dataset_size"])

    def encoder_factory():
        return GNNEncoder("gin", num_layers=cfg["num_layers"],
                          emb_dim=cfg["emb_dim"], dropout=0.0, seed=seed)

    def make_service():
        # Memoization off: every run must re-execute its forwards, so the
        # sweep measures micro-batch execution, not response dedup.
        return InferenceService(encoder_factory, dataset.num_tasks, seed=seed,
                                logit_cache_size=0)

    rng = np.random.default_rng((seed, 91))
    specs = [DEFAULT_SPACE.random_spec(cfg["num_layers"], rng)
             for _ in range(cfg["num_specs"])]
    stream = [(dataset.graphs[i % len(dataset.graphs)],
               specs[i % len(specs)]) for i in range(cfg["requests"])]
    return dataset, make_service, specs, stream


def _run_serial(service, stream, max_batch_size):
    """The stream through an inline router: the bit-parity reference.

    Round-robin submission + flush-on-size makes the micro-batch
    composition a pure function of the stream, so the threaded runs (same
    router parameters, ticker off) assemble byte-for-byte the same
    batches."""
    from repro.serve import BatchingRouter

    router = BatchingRouter(service, max_batch_size=max_batch_size,
                            max_delay=10_000, max_pending=10_000)
    tickets = [router.submit(graph, spec) for graph, spec in stream]
    router.flush()
    return [t.result() for t in tickets], router.stats()


def _run_server(service, stream, max_batch_size, num_workers, stall_s):
    """The stream through a worker-pool server; returns (rows, seconds)."""
    from repro.serve import InferenceServer

    pre_execute = (lambda: time.sleep(stall_s)) if stall_s else None
    server = InferenceServer(service, num_workers=num_workers,
                             max_batch_size=max_batch_size, max_delay=10_000,
                             tick_interval_s=None, queue_size=1024,
                             pre_execute=pre_execute)
    with server:
        start = time.perf_counter()
        tickets = [server.submit(graph, spec) for graph, spec in stream]
        server.flush()
        rows = [t.wait(timeout=600) for t in tickets]
        elapsed = time.perf_counter() - start
    if server.worker_errors:
        raise RuntimeError(f"worker errors: {server.worker_errors!r}")
    return rows, elapsed


def bench_worker_sweep(cfg, seed=0):
    dataset, make_service, specs, stream = _build(cfg, seed)
    requests = cfg["requests"]

    # Serial reference on an independent, identically-seeded service.
    reference_service = make_service()
    serial_rows, _ = _run_serial(reference_service, stream,
                                 cfg["max_batch_size"])

    # Shared service for the sweep: models built + caches warmed once, so
    # every worker count times the same steady state.
    service = make_service()
    warm_rows, serial_stats = _run_serial(service, stream,
                                          cfg["max_batch_size"])
    start = time.perf_counter()
    _run_serial(service, stream, cfg["max_batch_size"])
    serial_steady_s = time.perf_counter() - start
    num_batches = serial_stats["batches"]
    batch_compute_s = serial_steady_s / num_batches
    stall_s = cfg["stall_factor"] * batch_compute_s

    def sweep(stall):
        per_worker = {}
        for workers in cfg["workers"]:
            best = np.inf
            for _ in range(cfg["repeats"]):
                rows, elapsed = _run_server(service, stream,
                                            cfg["max_batch_size"], workers,
                                            stall)
                assert len(rows) == requests
                for row, ref in zip(rows, serial_rows):
                    assert np.array_equal(row, ref), "parity violation"
                best = min(best, elapsed)
            per_worker[str(workers)] = {
                "seconds": best,
                "requests_per_s": requests / best,
            }
        base = per_worker[str(cfg["workers"][0])]["requests_per_s"]
        for entry in per_worker.values():
            entry["speedup_vs_1_worker"] = entry["requests_per_s"] / base
        return per_worker

    stalled = sweep(stall_s)
    pure_cpu = sweep(0.0)
    return {
        "requests": requests,
        "num_specs": len(specs),
        "max_batch_size": cfg["max_batch_size"],
        "micro_batches_per_run": num_batches,
        "cpu_count": os.cpu_count(),
        "serial_steady_s": serial_steady_s,
        "batch_compute_s": batch_compute_s,
        "offload_stall_s": stall_s,
        "stall_factor": cfg["stall_factor"],
        "parity": "bit-identical to serial inline router (asserted per run)",
        "stalled_offload": stalled,
        "pure_cpu": pure_cpu,
        "speedup_4_vs_1_workers": stalled[str(cfg["workers"][-1])][
            "speedup_vs_1_worker"],
    }


def run_benchmark(cfg=None, seed=0):
    cfg = cfg or (SMOKE if smoke_mode() else FULL)
    return {
        "benchmark": "concurrency",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in cfg.items()},
        "worker_sweep": bench_worker_sweep(cfg, seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke tier)
# ----------------------------------------------------------------------
def test_concurrency_throughput_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(SMOKE)
    print(json.dumps(results, indent=2))
    sweep = results["worker_sweep"]
    # Parity is asserted inside the sweep (bit-identical rows per run).
    assert sweep["speedup_4_vs_1_workers"] >= 2.0, sweep
    assert sweep["stalled_offload"]["2"]["speedup_vs_1_worker"] >= 1.3, sweep
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    if smoke_mode():
        print("\nsmoke mode: snapshot not written")
    else:
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)
        print(f"\nwrote {RESULT_PATH}")
