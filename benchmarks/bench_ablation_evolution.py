"""Search-algorithm comparison: differentiable (paper) vs regularized
evolution over the same weight-sharing supernet.

The paper argues for the Gumbel-softmax differentiable search; regularized
evolution is the standard gradient-free one-shot-NAS alternative.  Both
share the fitness substrate (weight-sharing supernet), so the comparison
isolates the explore strategy.  Shape: both find a strategy whose shared-
weights validation score is at least vanilla's, and neither costs more
than a small multiple of the other.
"""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearcher,
    S2PGNNSearcher,
    SearchConfig,
)
from repro.experiments.runner import encoder_factory
from repro.graph import load_dataset

from conftest import run_once


@pytest.mark.benchmark(group="search-ablation")
def test_differentiable_vs_evolution(benchmark, scale):
    dataset = load_dataset("bbbp", size=scale.dataset_size)
    factory = encoder_factory("contextpred", "gin", scale, seed=0)

    def run_both():
        diff = S2PGNNSearcher(
            factory(), dataset,
            config=SearchConfig(epochs=scale.search_epochs, seed=0),
        ).search()
        evo = EvolutionarySearcher(
            factory(), dataset,
            config=EvolutionConfig(
                warmup_epochs=scale.search_epochs,
                population_size=6,
                generations=6,
                seed=0,
            ),
        ).search()
        return diff, evo

    diff, evo = run_once(benchmark, run_both)
    print(f"\ndifferentiable: {diff.spec.describe()}  ({diff.seconds:.1f}s)")
    print(f"evolutionary:   {evo.spec.describe()}  "
          f"(val={evo.score:.3f}, {evo.seconds:.1f}s)")
    assert np.isfinite(evo.score)
    # Both complete within a small factor of each other (same substrate).
    ratio = max(diff.seconds, evo.seconds) / max(min(diff.seconds, evo.seconds), 1e-9)
    print(f"cost ratio: {ratio:.1f}x")
    assert ratio < 20
