"""Paper Table IX: ablation on S2PGNN's design dimensions.

Variants search degraded spaces: S2PGNN-\\id (no identity augmentation),
S2PGNN-\\fuse (last-layer only), S2PGNN-\\read (fixed mean pooling).

Paper shape: every degraded variant drops relative to the full space
(paper: -5.2%, -12.1%, -12.3% average), with the fusion and readout
dimensions mattering most.
"""

import numpy as np
import pytest

from repro.experiments import run_table9
from repro.experiments.configs import TABLE6_DATASETS
from repro.experiments.tables import format_table9

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table09")
def test_table9_design_dimension_ablation(benchmark, scale):
    results = run_once(benchmark, lambda: run_table9(TABLE6_DATASETS, scale=scale))
    print()
    print(format_table9(results, TABLE6_DATASETS))

    drops = {v: results[v]["avg_drop"] for v in ["no_id", "no_fuse", "no_read"]}
    print("\nAverage change vs full space:",
          {k: f"{v * 100:+.1f}%" for k, v in drops.items()})

    # Shape: degrading the space must not help on average; at least one
    # dimension must show a clear drop (the paper's "key factors" claim).
    if _strict():
        mean_drop = float(np.mean(list(drops.values())))
        assert mean_drop <= 0.02, drops
        assert min(drops.values()) < 0.0, drops
