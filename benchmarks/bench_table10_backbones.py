"""Paper Table X: S2PGNN vs vanilla on other backbones (GCN, SAGE, GAT)
with ContextPred pre-training.

Paper shape: every backbone benefits from S2PGNN (paper: +4.6% GCN,
+6.0% SAGE, +19.7% GAT) — the framework is backbone-agnostic.
"""

import numpy as np
import pytest

from repro.experiments import run_table10
from repro.experiments.configs import TABLE6_DATASETS, TABLE10_BACKBONES
from repro.experiments.tables import format_table10

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table10")
def test_table10_backbone_study(benchmark, scale):
    results = run_once(
        benchmark, lambda: run_table10(TABLE10_BACKBONES, TABLE6_DATASETS, scale=scale)
    )
    print()
    print(format_table10(results, TABLE6_DATASETS))

    gains = {b: results[b]["avg_gain"] for b in TABLE10_BACKBONES}
    print("\nPer-backbone average gains:",
          {b: f"{g * 100:+.1f}%" for b, g in gains.items()})

    assert set(gains) == set(TABLE10_BACKBONES)
    if _strict():
        # Shape: the mean across backbones is positive and a majority benefit.
        assert float(np.mean(list(gains.values()))) > 0.0, gains
        assert sum(g > 0 for g in gains.values()) >= 2, gains
