"""Paper Table XI: running time (seconds per epoch) of each fine-tuning
strategy (ContextPred + GIN, 6 classification datasets).

Paper shape: S2PGNN's per-epoch cost is the same order of magnitude as the
regularized baselines (paper: 15.6s avg vs 7.2 vanilla / 24.2 BSS) — the
10,206-strategy search does NOT cost 10,206x training, which is the point
of the weight-sharing differentiable algorithm (Remark 3 + Sec. IV-F).
"""

import pytest

from repro.experiments import run_table11
from repro.experiments.configs import CLASSIFICATION_DATASETS, TABLE11_STRATEGIES
from repro.experiments.tables import format_table11

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table11")
def test_table11_seconds_per_epoch(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: run_table11(TABLE11_STRATEGIES, CLASSIFICATION_DATASETS, scale=scale),
    )
    print()
    print(format_table11(results, CLASSIFICATION_DATASETS))

    averages = {name: rows["avg"] for name, rows in results.items()}
    print("\nSeconds/epoch averages:", {k: f"{v:.3f}" for k, v in averages.items()})

    if _strict():
        vanilla = averages["vanilla"]
        # Shape: S2PGNN stays within a small constant factor of vanilla — far,
        # far below the 10,206x a brute-force search would need.
        assert averages["s2pgnn"] < vanilla * 50
        # And it is comparable to the slowest regularized baseline's order.
        slowest_baseline = max(v for k, v in averages.items() if k != "s2pgnn")
        assert averages["s2pgnn"] < slowest_baseline * 25
