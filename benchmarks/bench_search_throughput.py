"""Throughput benchmark for the fast-path supernet execution layer.

Times the three hot paths this layer optimizes and emits
``BENCH_search_throughput.json`` so future PRs can track the trajectory:

1. **Supernet forward, one-hot strategy** — branch-skipping fast path
   (default ``mix_threshold``) vs the pre-fast-path mixed forward
   (``mix_threshold=None``, every candidate branch computed).  The fast
   path must be >= 2x faster and numerically equivalent.
2. **DerivedModel equivalence** — fast-path one-hot logits must match a
   warm-started :class:`DerivedModel` on the same spec to atol 1e-9.
3. **DataLoader iteration** — cached collation (collate once, shuffle
   batch order) vs fresh per-epoch collation.

Run modes:

* ``python benchmarks/bench_search_throughput.py`` — full config, writes
  the JSON snapshot next to this file.
* ``pytest benchmarks/bench_search_throughput.py`` — quick config,
  asserts the speedup/equivalence contract, does not overwrite the
  snapshot (set ``REPRO_BENCH_WRITE=1`` to write it; set
  ``REPRO_BENCH_SKIP=1`` to skip entirely).
"""

import json
import os
import time

import numpy as np

RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "BENCH_search_throughput.json")


def _build(num_layers, emb_dim, dataset_size, batch_size, seed=0):
    from repro.core import DEFAULT_SPACE
    from repro.core.space import FineTuneStrategySpec
    from repro.core.supernet import S2PGNNSupernet
    from repro.gnn import GNNEncoder
    from repro.graph import Batch, load_dataset

    dataset = load_dataset("bbbp", size=dataset_size)
    train_graphs, _, _ = dataset.split()
    batches = [
        Batch(train_graphs[i:i + batch_size])
        for i in range(0, len(train_graphs), batch_size)
    ]
    encoder = GNNEncoder("gin", num_layers=num_layers, emb_dim=emb_dim,
                         dropout=0.0, seed=seed)
    supernet = S2PGNNSupernet(encoder, DEFAULT_SPACE,
                              num_tasks=dataset.num_tasks, seed=seed)
    supernet.eval()
    spec = FineTuneStrategySpec(identity=("identity_aug",) * num_layers,
                                fusion="mean", readout="sum")
    return dataset, train_graphs, batches, supernet, spec


def _time_sweeps(fn, repeats):
    """Best-of-``repeats`` wall time of one full sweep (seconds)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_supernet_forward(num_layers=5, emb_dim=32, dataset_size=120,
                           batch_size=32, repeats=5, seed=0):
    """Fast-path vs mixed one-hot forward + DerivedModel equivalence."""
    from repro.core import DEFAULT_SPACE
    from repro.core.search import _spec_to_onehots
    from repro.core.supernet import MIX_SKIP_THRESHOLD, DerivedModel
    from repro.nn import no_grad

    dataset, _, batches, supernet, spec = _build(
        num_layers, emb_dim, dataset_size, batch_size, seed)
    one_hots = _spec_to_onehots(spec, DEFAULT_SPACE, num_layers)

    def sweep():
        with no_grad():
            for batch in batches:
                supernet.forward_full(batch, one_hots)

    supernet.mix_threshold = None  # pre-PR behavior: every branch computed
    mixed_s = _time_sweeps(sweep, repeats)
    supernet.mix_threshold = MIX_SKIP_THRESHOLD
    fast_s = _time_sweeps(sweep, repeats)

    derived = DerivedModel(supernet.encoder, spec, dataset.num_tasks, seed=seed)
    derived.load_from_supernet(supernet)
    derived.eval()
    max_diff = 0.0
    with no_grad():
        for batch in batches:
            fast = supernet.forward_full(batch, one_hots)["logits"].data
            ref = derived(batch).data
            max_diff = max(max_diff, float(np.abs(fast - ref).max()))

    return {
        "mixed_forward_s": mixed_s,
        "fastpath_forward_s": fast_s,
        "speedup": mixed_s / fast_s,
        "derived_equivalence_max_abs_diff": max_diff,
        "num_batches": len(batches),
    }


def bench_loader(dataset_size=120, batch_size=32, epochs=5, repeats=3, seed=0):
    """Cached vs fresh batch collation over ``epochs`` loader sweeps."""
    from repro.graph import DataLoader, load_dataset

    dataset = load_dataset("bbbp", size=dataset_size)
    train_graphs, _, _ = dataset.split()

    def sweep(cache):
        loader = DataLoader(train_graphs, batch_size=batch_size, shuffle=True,
                            rng=np.random.default_rng(seed), cache=cache)
        for _ in range(epochs):
            for batch in loader:
                batch.x.shape  # touch the collated arrays
        return loader

    fresh_s = _time_sweeps(lambda: sweep(cache=False), repeats)
    cached_s = _time_sweeps(lambda: sweep(cache=True), repeats)
    return {
        "epochs": epochs,
        "fresh_iteration_s": fresh_s,
        "cached_iteration_s": cached_s,
        "speedup": fresh_s / cached_s,
    }


def run_benchmark(num_layers=5, emb_dim=32, dataset_size=120, batch_size=32,
                  repeats=5, seed=0):
    config = {
        "num_layers": num_layers,
        "emb_dim": emb_dim,
        "dataset_size": dataset_size,
        "batch_size": batch_size,
        "repeats": repeats,
        "seed": seed,
    }
    return {
        "benchmark": "search_throughput",
        "config": config,
        "supernet_forward": bench_supernet_forward(
            num_layers, emb_dim, dataset_size, batch_size, repeats, seed),
        "loader": bench_loader(dataset_size, batch_size, repeats=max(repeats // 2, 1),
                               seed=seed),
    }


# ----------------------------------------------------------------------
# pytest entry point (quick tier)
# ----------------------------------------------------------------------
def test_fastpath_throughput_contract():
    import pytest

    if os.environ.get("REPRO_BENCH_SKIP") == "1":
        pytest.skip("REPRO_BENCH_SKIP=1")
    results = run_benchmark(num_layers=3, emb_dim=16, dataset_size=60,
                            batch_size=16, repeats=3)
    forward = results["supernet_forward"]
    print(json.dumps(results, indent=2))
    assert forward["speedup"] >= 2.0, forward
    assert forward["derived_equivalence_max_abs_diff"] <= 1e-9, forward
    assert results["loader"]["speedup"] >= 1.0, results["loader"]
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(RESULT_PATH, "w") as f:
            json.dump(results, f, indent=2)


if __name__ == "__main__":
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    with open(RESULT_PATH, "w") as f:
        json.dump(results, f, indent=2)
    print(f"\nwrote {RESULT_PATH}")
