"""Paper Table VIII: strategies outside the S2PGNN search space —
Feature Extractor, Last-k (k=1..3), Adapter (m=2/4/8) — vs vanilla and
S2PGNN (ContextPred + GIN).

Paper shape: FE degrades severely (58.2 avg vs 69.0 vanilla); Last-k and
Adapter stay below vanilla; increasing tunable capacity (k up, m up)
recovers performance monotonically-ish; S2PGNN tops the table.
"""

import pytest

from repro.experiments import run_table8
from repro.experiments.configs import CLASSIFICATION_DATASETS, TABLE8_STRATEGIES
from repro.experiments.tables import format_table8

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table08")
def test_table8_outside_space_strategies(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: run_table8(TABLE8_STRATEGIES, CLASSIFICATION_DATASETS, scale=scale),
    )
    print()
    print(format_table8(results, CLASSIFICATION_DATASETS))

    averages = {name: rows["avg"] for name, rows in results.items()}
    print("\nAverages:", {k: f"{v * 100:.1f}" for k, v in averages.items()})

    if _strict():
        # Shape 1: the frozen feature extractor is the weakest full-freeze point.
        assert averages["feature_extractor"] <= averages["vanilla"] + 0.02
        # Shape 2: partial tuning does not beat S2PGNN beyond run noise.
        assert averages["s2pgnn"] >= max(
            v for k, v in averages.items() if k != "s2pgnn"
        ) - 0.06
        # Shape 3: more tunable layers recovers performance (k=3 >= k=1, noise pad).
        assert averages["last_k_k3"] >= averages["last_k_k1"] - 0.05
