"""Paper Table VII: S2PGNN vs regularized fine-tuning baselines
(ContextPred + GIN, 6 classification datasets).

Paper shape: the baselines (L2-SP, DELTA, BSS, StochNorm, GTOT) land near
vanilla (small +/-), GTOT is the strongest baseline, and S2PGNN's average
beats every baseline's average.
"""

import pytest

from repro.experiments import run_table7
from repro.experiments.configs import CLASSIFICATION_DATASETS, TABLE7_STRATEGIES
from repro.experiments.tables import format_table7

from conftest import run_once


def _strict() -> bool:
    """Shape assertions only run at the full bench tier; the smoke tier is a
    fast plumbing check where statistical shapes are not meaningful."""
    import os

    return os.environ.get("REPRO_BENCH_TIER", "bench") != "smoke"


@pytest.mark.benchmark(group="table07")
def test_table7_strategy_comparison(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: run_table7(TABLE7_STRATEGIES, CLASSIFICATION_DATASETS, scale=scale),
    )
    print()
    print(format_table7(results, CLASSIFICATION_DATASETS))

    averages = {name: rows["avg"] for name, rows in results.items()}
    print("\nStrategy averages:", {k: f"{v * 100:.1f}" for k, v in averages.items()})

    assert set(averages) == set(TABLE7_STRATEGIES) | {"s2pgnn"}
    if _strict():
        # Paper shape, adapted to CPU-scale noise (2 seeds, 24-graph test
        # splits): on the classification-only slice individual strategy
        # averages move by ~+-4 AUC points between runs, so we assert that
        # S2PGNN stays in the leaders' band — at or above vanilla within
        # noise, and within the spread of the regularized baselines — while
        # S2PGNN's dominant wins live in Table VI's aggregate (cls+reg).
        best_baseline = max(v for k, v in averages.items() if k != "s2pgnn")
        assert averages["s2pgnn"] >= averages["vanilla"] - 0.04, averages
        assert averages["s2pgnn"] >= best_baseline - 0.06, averages
        # No baseline should collapse: all stay within a plausible AUC band.
        assert all(v > 0.4 for v in averages.values())
