"""Reproduction of *Search to Fine-tune Pre-trained Graph Neural Networks
for Graph-level Tasks* (S2PGNN, ICDE 2024) on a from-scratch numpy stack.

Public API highlights:

* :class:`repro.core.S2PGNNFineTuner` — search + fine-tune driver.
* :func:`repro.pretrain.get_pretrained` — cached pre-trained encoders for
  the 10 SSL methods of paper Tab. V.
* :func:`repro.graph.load_dataset` — the 8 downstream datasets of Tab. IV.
* :mod:`repro.finetune` — every baseline fine-tuning strategy (Tab. II).
"""

from . import core, finetune, gnn, graph, metrics, nn, pretrain, serve
from .core import (
    DEFAULT_SPACE,
    FineTuneSpace,
    FineTuneStrategySpec,
    S2PGNNFineTuner,
    S2PGNNSearcher,
    SearchConfig,
)
from .serve import (
    BatchCacheRegistry,
    BatchingRouter,
    InferenceService,
    ModelRegistry,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "graph",
    "gnn",
    "pretrain",
    "finetune",
    "core",
    "metrics",
    "serve",
    "InferenceService",
    "ModelRegistry",
    "BatchCacheRegistry",
    "BatchingRouter",
    "S2PGNNFineTuner",
    "S2PGNNSearcher",
    "SearchConfig",
    "FineTuneSpace",
    "FineTuneStrategySpec",
    "DEFAULT_SPACE",
    "__version__",
]
