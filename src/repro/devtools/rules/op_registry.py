"""REP008: the op-registry table must be complete and backend-closed.

The registry in ``nn/ops.py`` is the single source of truth for backend
dispatch, the gradcheck sweep and the parity suites — an incomplete
registration silently shrinks all three.  Statically (via
:mod:`repro.devtools.opregs`), every ``register(...)`` call must:

* use a literal op name (a dynamic name is invisible to every lint);
* declare a non-empty ``adjoint`` description;
* declare a ``samples`` generator;
* declare at least two backends, or carry an explicit single-backend
  ``waiver``;
* only use backend keys declared via ``register_backend``.

And everywhere in the linted tree, a ``use_backend("...")`` string
literal must name a declared backend — a typo would raise at runtime
only on the (possibly untested) path that hits it.

The compiled backend registers through the other seam —
``register_backend(..., impls={...})`` in
``config.compiled_registration_module`` — so those fills get their own
contract: the call must (re)declare its ``fallback`` (a partially
implemented backend must say where unimplemented ops resolve), and every
implementation reference must resolve into a module under
``config.compiled_impl_prefix`` (JIT-kernel wrappers live in
``repro.nn.compiled``, not scattered through the package).
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..opregs import parse_ops_module, resolve_impl
from ..registry import rule


def _is_use_backend(func) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "use_backend"
    if isinstance(func, ast.Attribute):
        return func.attr == "use_backend"
    return False


@rule("REP008", "registered ops must declare adjoint, samples and >=2 "
                "backends (or a waiver); use_backend literals must name "
                "declared backends")
def check_op_registry(project, config):
    findings: list = []
    ops_rel = getattr(config, "ops_module", None)
    info = project.get(ops_rel) if ops_rel else None
    if info is None:
        return findings  # fixture projects without an ops module
    model = parse_ops_module(info)
    declared = set(model.backend_fallbacks)

    for name, fallback in model.backend_fallbacks.items():
        if fallback is not None and fallback not in declared:
            findings.append(Finding(
                info.rel, model.backend_decls[name], "REP008",
                f"backend '{name}' falls back to undeclared "
                f"'{fallback}'"))

    seen: set = set()
    for reg in model.registrations:
        if reg.dynamic_name:
            findings.append(Finding(
                info.rel, reg.lineno, "REP008",
                "register() call with a non-literal op name — invisible "
                "to the registry lints; use a string constant"))
            continue
        if reg.name in seen:
            findings.append(Finding(
                info.rel, reg.lineno, "REP008",
                f"op '{reg.name}' registered twice"))
        seen.add(reg.name)
        if not reg.has_adjoint or reg.adjoint_empty:
            findings.append(Finding(
                info.rel, reg.lineno, "REP008",
                f"op '{reg.name}' registered without an adjoint "
                "description"))
        if not reg.has_samples:
            findings.append(Finding(
                info.rel, reg.lineno, "REP008",
                f"op '{reg.name}' registered without a samples generator "
                "— the gradcheck sweep and parity suites would skip it"))
        if len(reg.backends) < 2 and reg.waiver is None:
            findings.append(Finding(
                info.rel, reg.lineno, "REP008",
                f"op '{reg.name}' declares a single backend with no "
                "waiver — add a second backend entry or an explicit "
                "single-backend waiver"))
        for backend in reg.backends:
            if backend not in declared:
                findings.append(Finding(
                    info.rel, reg.lineno, "REP008",
                    f"op '{reg.name}' registered for undeclared backend "
                    f"'{backend}'"))

    # Compiled-backend fills: every register_backend(..., impls=...) in
    # the compiled registration module must declare its fallback and
    # reference impls living under the compiled package.
    comp_rel = getattr(config, "compiled_registration_module", None)
    comp_info = project.get(comp_rel) if comp_rel else None
    if comp_info is not None:
        prefix = getattr(config, "compiled_impl_prefix", "") or ""
        comp_model = parse_ops_module(comp_info)
        for fill in comp_model.backend_fills:
            if not fill.has_fallback:
                findings.append(Finding(
                    comp_info.rel, fill.lineno, "REP008",
                    f"register_backend('{fill.name}', impls=...) without "
                    "a fallback declaration — a partially implemented "
                    "backend must say where unimplemented ops resolve"))
            for op_name, ref in fill.impls.items():
                target_rel, _ = resolve_impl(comp_model, comp_info.rel, ref)
                if target_rel is None or not target_rel.startswith(prefix):
                    findings.append(Finding(
                        comp_info.rel, fill.lineno, "REP008",
                        f"'{fill.name}' impl for op '{op_name}' resolves "
                        f"to {target_rel or '<unresolved>'} — compiled-"
                        "backend implementations must live under "
                        f"{prefix or '<unset prefix>'}"))

    # use_backend("...") literals anywhere in the tree must be declared.
    for minfo in project.modules:
        for node in ast.walk(minfo.tree):
            if not (isinstance(node, ast.Call)
                    and _is_use_backend(node.func)
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            backend = node.args[0].value
            if backend not in declared:
                findings.append(Finding(
                    minfo.rel, node.lineno, "REP008",
                    f"use_backend({backend!r}) names an undeclared "
                    f"backend; declared: {tuple(sorted(declared))}"))
    return findings
