"""Rule modules — importing this package registers every REP rule."""

from . import lock_order      # noqa: F401  REP001 + REP006
from . import wallclock       # noqa: F401  REP002
from . import mutable_globals  # noqa: F401  REP003
from . import autograd        # noqa: F401  REP004
from . import backend_parity  # noqa: F401  REP005
from . import dtype           # noqa: F401  REP007
from . import op_registry     # noqa: F401  REP008

__all__ = ["lock_order", "wallclock", "mutable_globals", "autograd",
           "backend_parity", "dtype", "op_registry"]
