"""REP005: two-backend parity for the public segment kernels.

The fast plan-backed ops in :mod:`repro.nn.segment` and the legacy
``np.add.at`` reference ops in :mod:`repro.nn.tensor` are a contract
pair: every public segment op must dispatch to the legacy backend under
``use_backend("legacy")`` (so the tier-2 differential suite can compare
them), and must actually be exercised by the differential/gradcheck
suites.  ``np.add.at`` / ``np.maximum.at`` — the slow scatters the fast
backend exists to replace — are banned outside the legacy reference
module and the ``scatter_add`` fallback.
"""

from __future__ import annotations

import ast
import os

from ..findings import Finding
from ..registry import rule


def _declared_all(tree: ast.Module) -> list:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [e.value for e in node.value.elts
                                if isinstance(e, ast.Constant)
                                and isinstance(e.value, str)]
    return []


def _module_functions(tree: ast.Module) -> dict:
    return {node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _contains_constant(node, value) -> bool:
    return any(isinstance(sub, ast.Constant) and sub.value == value
               for sub in ast.walk(node))


def _enclosing_function(tree: ast.Module, target) -> str | None:
    """Name of the module-level function lexically containing ``target``."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(sub is target for sub in ast.walk(node)):
                return node.name
    return None


def _ufunc_at_calls(tree: ast.Module):
    """Yield ``np.add.at`` / ``np.maximum.at`` Call nodes."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "at"):
            continue
        inner = node.func.value
        if (isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "np"
                and inner.attr in ("add", "maximum")):
            yield node, f"np.{inner.attr}.at"


@rule("REP005", "public segment ops must exist in both backends, be "
                "suite-covered, and keep ufunc.at scatters out of hot paths")
def check_backend_parity(project, config):
    findings: list = []
    fast = project.get(config.parity_fast_module)
    reference = project.get(config.parity_reference_module)

    if fast is not None:
        fast_functions = _module_functions(fast.tree)
        reference_functions = (_module_functions(reference.tree)
                               if reference is not None else {})
        public = _declared_all(fast.tree)
        ops = [name for name in public
               if name.startswith("segment_")
               or name in ("gather_segments", "scatter_add")]

        # Which suite files exist?  (Fixture projects have none — skip.)
        repo_root = os.path.dirname(os.path.dirname(project.root))
        suites = []
        for rel in config.parity_suite_files:
            path = os.path.join(repo_root, rel)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    suites.append((rel, handle.read()))

        for name in ops:
            node = fast_functions.get(name)
            if node is None:
                findings.append(Finding(
                    fast.rel, 1, "REP005",
                    f"public op '{name}' in __all__ has no module-level "
                    "definition"))
                continue
            if not _contains_constant(node, "legacy"):
                findings.append(Finding(
                    fast.rel, node.lineno, "REP005",
                    f"op '{name}' has no legacy-backend dispatch — it "
                    "would silently ignore use_backend(\"legacy\") and "
                    "escape differential testing"))
            if suites and not any(name in text for _, text in suites):
                findings.append(Finding(
                    fast.rel, node.lineno, "REP005",
                    f"op '{name}' is referenced by none of the "
                    "differential/gradcheck suite files"))

        # Every `_tensor.X(...)` dispatch must hit a real reference impl.
        for node in ast.walk(fast.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "_tensor"):
                if node.func.attr not in reference_functions:
                    findings.append(Finding(
                        fast.rel, node.lineno, "REP005",
                        f"legacy dispatch targets _tensor.{node.func.attr} "
                        "which does not exist in the reference module"))

    # ufunc.at ban: reference module free-for-all, fast module only inside
    # the scatter_add fallback, everywhere else banned.
    for info in project.modules:
        if info.rel == config.parity_reference_module:
            continue
        for call, label in _ufunc_at_calls(info.tree):
            if info.rel == config.parity_fast_module:
                if _enclosing_function(info.tree, call) in (
                        config.parity_scatter_functions or ("scatter_add",)):
                    continue
            findings.append(Finding(
                info.rel, call.lineno, "REP005",
                f"{label} scatter outside the legacy reference ops and "
                "scatter_add — use the plan-backed segment kernels"))
    return findings
