"""REP005: backend parity, sourced from the op registry.

The fast plan-backed ops in :mod:`repro.nn.segment` and the legacy
``np.add.at`` reference ops in :mod:`repro.nn.tensor` are a contract
pair, and the registry in ``nn/ops.py`` is where that contract is
declared.  This rule checks the declaration against the code instead of
reverse-engineering dispatch from the AST (the pre-registry heuristics —
"does the op body mention 'legacy'?" — are gone):

* every public segment-family op exported by the fast module must be a
  registered op (otherwise it bypasses dispatch and escapes the
  differential suites);
* every registered op must carry an implementation for the reference
  backend (the declared backend with no fallback) — the fallback chain
  bottoms out there, and cross-backend parity needs a reference leg;
* every registered op name must appear in the differential/gradcheck
  suite files (skipped when none exist — fixture projects);
* no inline backend branching outside the ops module: comparing a call
  result against a declared backend-name literal is exactly the
  scattered-``if`` dispatch the registry replaced;
* ``np.add.at`` / ``np.maximum.at`` — the slow scatters the fast backend
  exists to replace — stay banned outside the legacy reference module
  and the declared scatter fallback functions.
"""

from __future__ import annotations

import ast
import os

from ..findings import Finding
from ..opregs import parse_ops_module
from ..registry import rule

#: Ops the fast module may export without registering (plan plumbing).
_NON_OP_EXPORTS = frozenset({
    "SegmentPlan", "as_plan", "use_backend", "active_backend",
})


def _declared_all(tree: ast.Module) -> list:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [e.value for e in node.value.elts
                                if isinstance(e, ast.Constant)
                                and isinstance(e.value, str)]
    return []


def _enclosing_function(tree: ast.Module, target) -> str | None:
    """Name of the module-level function lexically containing ``target``."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(sub is target for sub in ast.walk(node)):
                return node.name
    return None


def _ufunc_at_calls(tree: ast.Module):
    """Yield ``np.add.at`` / ``np.maximum.at`` Call nodes."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "at"):
            continue
        inner = node.func.value
        if (isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "np"
                and inner.attr in ("add", "maximum")):
            yield node, f"np.{inner.attr}.at"


def _inline_backend_branches(tree: ast.Module, backend_names: frozenset):
    """Yield Compare nodes matching a call result against a backend name."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        named = [o for o in operands
                 if isinstance(o, ast.Constant) and o.value in backend_names]
        calls = [o for o in operands if isinstance(o, ast.Call)]
        if named and calls:
            yield node, named[0].value


@rule("REP005", "public segment ops must be registered with a reference-"
                "backend impl, be suite-covered, and keep inline backend "
                "branches and ufunc.at scatters out of hot paths")
def check_backend_parity(project, config):
    findings: list = []
    fast = project.get(config.parity_fast_module)
    ops_info = project.get(getattr(config, "ops_module", None) or "")
    model = parse_ops_module(ops_info) if ops_info is not None else None
    registered = ({reg.name for reg in model.registrations
                   if not reg.dynamic_name} if model else set())
    backend_names = frozenset(model.backend_fallbacks) if model else frozenset()
    reference_backends = {name for name, fallback
                          in (model.backend_fallbacks.items() if model else ())
                          if fallback is None}

    if fast is not None and model is not None:
        # Public fast-module ops must all be registered.
        public = _declared_all(fast.tree)
        ops = [name for name in public if name not in _NON_OP_EXPORTS]
        for name in ops:
            if name not in registered:
                findings.append(Finding(
                    fast.rel, 1, "REP005",
                    f"public op '{name}' in __all__ is not registered in "
                    f"the op registry ({ops_info.rel}) — it bypasses "
                    "backend dispatch and the differential suites"))

        # Every registration needs a reference-backend implementation.
        for reg in model.registrations:
            if reg.dynamic_name:
                continue
            if reference_backends and not (set(reg.backends)
                                           & reference_backends):
                findings.append(Finding(
                    ops_info.rel, reg.lineno, "REP005",
                    f"op '{reg.name}' has no reference-backend "
                    f"implementation ({tuple(sorted(reference_backends))})"
                    " — the fallback chain cannot bottom out and parity "
                    "has no reference leg"))

        # Suite coverage, from the registry (skipped for fixtures).
        repo_root = os.path.dirname(os.path.dirname(project.root))
        suites = []
        for rel in config.parity_suite_files:
            path = os.path.join(repo_root, rel)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    suites.append((rel, handle.read()))
        if suites:
            for reg in model.registrations:
                if reg.dynamic_name:
                    continue
                if not any(reg.name in text for _, text in suites):
                    findings.append(Finding(
                        ops_info.rel, reg.lineno, "REP005",
                        f"registered op '{reg.name}' is referenced by none "
                        "of the differential/gradcheck suite files"))

    # Inline backend branches: dispatch belongs in the registry.
    if backend_names:
        ops_rel = ops_info.rel if ops_info is not None else None
        for info in project.modules:
            if info.rel == ops_rel:
                continue
            for node, backend in _inline_backend_branches(info.tree,
                                                          backend_names):
                findings.append(Finding(
                    info.rel, node.lineno, "REP005",
                    f"inline backend branch comparing against {backend!r} "
                    "— dispatch through the op registry instead"))

    # ufunc.at ban: reference module free-for-all, fast module only inside
    # the declared scatter fallback functions, everywhere else banned.
    for info in project.modules:
        if info.rel == config.parity_reference_module:
            continue
        for call, label in _ufunc_at_calls(info.tree):
            if info.rel == config.parity_fast_module:
                if _enclosing_function(info.tree, call) in (
                        config.parity_scatter_functions or ("scatter_add",)):
                    continue
            findings.append(Finding(
                info.rel, call.lineno, "REP005",
                f"{label} scatter outside the legacy reference ops and "
                "the scatter fallback — use the plan-backed segment "
                "kernels"))
    return findings
