"""REP004: autograd completeness for ops built on ``Tensor._result``.

Every differentiable op in the autograd modules follows one idiom::

    def op(...):
        out_data = ...
        def backward(g):
            if x.requires_grad:
                x._accumulate(...)
        return Tensor._result(out_data, (x, ...), "op", backward)

The tape only visits tensors reachable through ``_prev`` (the parents
tuple), so a backward closure that accumulates into a tensor *not*
listed there silently drops gradients — the bug class this rule exists
for.  Checks, per ``Tensor._result`` call:

* a backward closure is passed (4th argument) and is defined locally;
* every receiver of ``._accumulate(...)`` inside that closure appears in
  the parents tuple — directly by name, or as a loop variable drawn
  (possibly via ``zip``) from a collection passed as ``tuple(coll)``.

Registry consistency: every *differentiable* implementation registered
in the op table (``config.ops_module``, parsed via
:mod:`repro.devtools.opregs`) must resolve to a named function defined
in one of the autograd-checked modules — a lambda or an impl living
outside ``autograd_modules`` would dodge the checks above.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..opregs import parse_ops_module, resolve_impl
from ..registry import rule


def _result_calls(func_node):
    """Yield ``Tensor._result(...)`` Call nodes lexically inside
    ``func_node`` (not inside nested defs other than the backward)."""
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_result"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "Tensor"):
            yield node


def _parent_names(parents_expr) -> tuple[set, set]:
    """(direct parent names, collection names passed via tuple(coll))."""
    direct: set = set()
    collections: set = set()
    if isinstance(parents_expr, ast.Tuple):
        for element in parents_expr.elts:
            if isinstance(element, ast.Name):
                direct.add(element.id)
            elif isinstance(element, ast.Starred) and isinstance(
                    element.value, ast.Name):
                collections.add(element.value.id)
    elif isinstance(parents_expr, ast.Call):
        func = parents_expr.func
        if (isinstance(func, ast.Name) and func.id == "tuple"
                and parents_expr.args
                and isinstance(parents_expr.args[0], ast.Name)):
            collections.add(parents_expr.args[0].id)
    elif isinstance(parents_expr, ast.Name):
        # e.g. a prebuilt `parents` tuple: treat the name as a collection
        collections.add(parents_expr.id)
    return direct, collections


def _loop_sources(backward_node) -> dict:
    """loop-variable name -> iterated collection name, inside backward.

    Handles ``for t in coll`` and positional unpacking over
    ``zip(coll, ...)``: ``for t, s in zip(coll, other)`` maps t -> coll,
    s -> other.
    """
    sources: dict = {}
    for node in ast.walk(backward_node):
        if not isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            continue
        target, iterator = node.target, node.iter
        if isinstance(iterator, ast.Name):
            if isinstance(target, ast.Name):
                sources[target.id] = iterator.id
        elif (isinstance(iterator, ast.Call)
              and isinstance(iterator.func, ast.Name)
              and iterator.func.id == "zip"
              and isinstance(target, ast.Tuple)):
            for element, arg in zip(target.elts, iterator.args):
                if isinstance(element, ast.Name) and isinstance(arg,
                                                                ast.Name):
                    sources[element.id] = arg.id
    return sources


def _accumulate_receivers(backward_node):
    """Yield (name, lineno) for every ``name._accumulate(...)`` call."""
    for node in ast.walk(backward_node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_accumulate"
                and isinstance(node.func.value, ast.Name)):
            yield node.func.value.id, node.lineno


def _local_defs(func_node) -> dict:
    """name -> FunctionDef for defs lexically inside ``func_node``."""
    defs: dict = {}
    for node in ast.walk(func_node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func_node:
            defs[node.name] = node
    return defs


def _check_op(info, func_node, findings):
    defs = _local_defs(func_node)
    for call in _result_calls(func_node):
        if len(call.args) < 4:
            findings.append(Finding(
                info.rel, call.lineno, "REP004",
                f"{func_node.name}: Tensor._result called without a "
                "backward closure — grad-tracked output has no _backward"))
            continue
        parents_expr, backward_expr = call.args[1], call.args[3]
        direct, collections = _parent_names(parents_expr)
        backward_node = None
        if isinstance(backward_expr, ast.Name):
            backward_node = defs.get(backward_expr.id)
        elif isinstance(backward_expr, ast.Lambda):
            backward_node = backward_expr
        if backward_node is None:
            if not (isinstance(backward_expr, ast.Constant)
                    and backward_expr.value is None):
                continue  # forwarded closure from elsewhere: out of scope
            findings.append(Finding(
                info.rel, call.lineno, "REP004",
                f"{func_node.name}: Tensor._result called with backward="
                "None — grad-tracked output has no _backward"))
            continue
        sources = _loop_sources(backward_node)
        for name, lineno in _accumulate_receivers(backward_node):
            if name in direct:
                continue
            if sources.get(name) in collections:
                continue
            findings.append(Finding(
                info.rel, lineno, "REP004",
                f"{func_node.name}: backward accumulates into '{name}' "
                "which is not listed in the op's parents (_prev) — its "
                "gradient would be dropped by the tape"))


def _module_function_names(tree: ast.Module) -> set:
    return {node.name for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _check_registry_impls(project, config, findings):
    """Registered differentiable impls must be named functions in the
    autograd-checked modules (where the ``_result`` checks can see them)."""
    ops_rel = getattr(config, "ops_module", None)
    info = project.get(ops_rel) if ops_rel else None
    if info is None:
        return
    model = parse_ops_module(info)
    checked = {rel: project.get(rel) for rel in config.autograd_modules}
    for reg in model.registrations:
        if reg.dynamic_name or not reg.differentiable:
            continue
        for backend, ref in reg.backends.items():
            if ref is None:
                findings.append(Finding(
                    info.rel, reg.lineno, "REP004",
                    f"op '{reg.name}' backend '{backend}' implementation "
                    "is not a named function — lambdas/expressions dodge "
                    "the autograd completeness checks"))
                continue
            target_rel, func_name = resolve_impl(model, info.rel, ref)
            target = checked.get(target_rel)
            if target_rel not in checked:
                findings.append(Finding(
                    info.rel, reg.lineno, "REP004",
                    f"op '{reg.name}' backend '{backend}' implementation "
                    f"resolves to {target_rel or '<unknown module>'}, "
                    "which is not in the autograd-checked modules"))
            elif target is not None \
                    and func_name not in _module_function_names(target.tree):
                findings.append(Finding(
                    info.rel, reg.lineno, "REP004",
                    f"op '{reg.name}' backend '{backend}' implementation "
                    f"'{func_name}' is not defined in {target_rel}"))


@rule("REP004", "ops returning grad-tracked tensors must attach _backward "
                "and list every accumulated-into tensor in _prev; "
                "registered differentiable impls must live in the "
                "autograd-checked modules")
def check_autograd(project, config):
    findings: list = []
    for rel in config.autograd_modules:
        info = project.get(rel)
        if info is None:
            continue
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "_result":
                    continue  # the constructor itself
                _check_op(info, node, findings)
    _check_registry_impls(project, config, findings)
    return findings
