"""REP003: mutable module globals must be ContextVar, lock-guarded, or
allowlisted.

Regression guard for the PR-5 contextvars conversion: shared mutable
state at module scope either has to be context-local (``ContextVar``),
or every mutation inside a function body must happen under a registered
lock whose :attr:`~repro.devtools.locks.LockSpec.guards` names the
global.  Module-scope statements (building ``__all__``, export tables,
registries at import time) run under the import lock and are exempt.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule

#: method calls that mutate common containers in place
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end", "appendleft",
    "extendleft", "sort", "reverse",
})


def _module_globals(tree: ast.Module) -> tuple[set, set]:
    """(module-global names, the subset bound to ContextVars)."""
    names: set = set()
    contextvars_: set = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            names.add(target.id)
            if isinstance(value, ast.Call):
                func = value.func
                attr = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if attr == "ContextVar":
                    contextvars_.add(target.id)
    return names, contextvars_


def _lock_guards(hierarchy, rel: str) -> dict:
    """lock global-name -> set of guarded global names, for this module."""
    guards = {}
    for spec in hierarchy:
        if spec.module == rel and spec.owner is None and spec.guards:
            guards[spec.name] = set(spec.guards)
    return guards


class _MutationScanner(ast.NodeVisitor):
    """Walk function bodies tracking local shadows and held guard sets."""

    def __init__(self, info, globals_, contextvars_, guards, allowlist,
                 findings):
        self.info = info
        self.globals = globals_
        self.contextvars = contextvars_
        self.guards = guards          # lock name -> guarded globals
        self.allowlist = allowlist
        self.findings = findings
        self.scopes: list[dict] = []  # {"locals": set, "globals": set}
        self.guarded: list[set] = []  # stack of guard-name sets in force

    # -- scope tracking -------------------------------------------------
    def _visit_func(self, node):
        local = {arg.arg for arg in (node.args.args + node.args.kwonlyargs
                                     + node.args.posonlyargs)}
        if node.args.vararg:
            local.add(node.args.vararg.arg)
        if node.args.kwarg:
            local.add(node.args.kwarg.arg)
        declared_global: set = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue  # their locals tracked in their own visit
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name) and isinstance(
                                name.ctx, ast.Store):
                            local.add(name.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        local.add(name.id)
            elif isinstance(sub, ast.comprehension):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        local.add(name.id)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if isinstance(item.optional_vars, ast.Name):
                        local.add(item.optional_vars.id)
        local -= declared_global
        self.scopes.append({"locals": local, "globals": declared_global})
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _is_global(self, name: str) -> bool:
        if not self.scopes:
            return False  # module scope: import-time, exempt
        if name not in self.globals:
            return False
        for scope in reversed(self.scopes):
            if name in scope["globals"]:
                return True
            if name in scope["locals"]:
                return False
        return True

    def _held_guards(self) -> set:
        held: set = set()
        for layer in self.guarded:
            held |= layer
        return held

    def visit_With(self, node):
        layer: set = set()
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id in self.guards:
                layer |= self.guards[expr.id]
        self.guarded.append(layer)
        self.generic_visit(node)
        self.guarded.pop()

    visit_AsyncWith = visit_With

    # -- mutation checks ------------------------------------------------
    def _flag(self, name: str, node, how: str):
        if not self._is_global(name):
            return
        if name in self.contextvars:
            return
        if (self.info.rel, name) in self.allowlist:
            return
        if name in self._held_guards():
            return
        self.findings.append(Finding(
            self.info.rel, node.lineno, "REP003",
            f"module global '{name}' mutated ({how}) without its "
            "registered guard lock — use a ContextVar, hold the guarding "
            "lock, or allowlist it"))

    def visit_Assign(self, node):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name):
                self._flag(target.value.id, node, "item assignment")
            elif isinstance(target, ast.Name) and self.scopes:
                # plain rebinding is only a global mutation under `global`
                for scope in self.scopes:
                    if target.id in scope["globals"]:
                        self._flag(target.id, node, "rebinding via global")
                        break
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        target = node.target
        if isinstance(target, ast.Subscript) and isinstance(target.value,
                                                            ast.Name):
            self._flag(target.value.id, node, "augmented item assignment")
        elif isinstance(target, ast.Name):
            self._flag(target.id, node, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name):
                self._flag(target.value.id, node, "item deletion")
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _MUTATING_METHODS):
            self._flag(func.value.id, node, f".{func.attr}()")
        self.generic_visit(node)


@rule("REP003", "mutable module globals must be ContextVar, mutated only "
                "under their registered guard lock, or allowlisted")
def check_mutable_globals(project, config):
    findings: list = []
    for info in project.modules:
        globals_, contextvars_ = _module_globals(info.tree)
        if not globals_:
            continue
        guards = _lock_guards(config.lock_hierarchy, info.rel)
        scanner = _MutationScanner(info, globals_, contextvars_, guards,
                                   config.globals_allowlist, findings)
        scanner.visit(info.tree)
    return findings
