"""REP002: wall-clock reads are banned outside the explicit allowlist.

The router/serving logic is tested against a *simulated* clock — the
deadline unit is the tick, and only the server's ticker thread maps
ticks to real time.  Any other ``time.time()``/``monotonic()``/
``perf_counter()``/``sleep()`` call makes behaviour scheduler-dependent
and untestable, so it is a finding unless the file is allowlisted
(tickers, CLI benchmarks, epoch-timing telemetry) or the line carries a
``# repro: disable=REP002`` pragma.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule

_BANNED = frozenset({
    "time", "monotonic", "perf_counter", "sleep",
    "time_ns", "monotonic_ns", "perf_counter_ns",
})


def _time_aliases(tree: ast.Module) -> tuple[set, set]:
    """(names bound to the ``time`` module, names bound to banned members)."""
    module_aliases: set = set()
    member_aliases: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED:
                    member_aliases.add(alias.asname or alias.name)
    return module_aliases, member_aliases


@rule("REP002", "wall-clock calls (time.time/monotonic/perf_counter/sleep) "
                "only in allowlisted files — serve logic is simulated-clock")
def check_wallclock(project, config):
    findings = []
    for info in project.modules:
        if info.rel in config.wallclock_allowlist:
            continue
        module_aliases, member_aliases = _time_aliases(info.tree)
        if not module_aliases and not member_aliases:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = None
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_aliases
                    and func.attr in _BANNED):
                called = f"{func.value.id}.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in member_aliases:
                called = func.id
            if called is not None:
                findings.append(Finding(
                    info.rel, node.lineno, "REP002",
                    f"wall-clock call {called}() outside the allowlist — "
                    "serve/router logic must stay simulated-clock testable"))
    return findings
