"""REP007: hard-coded float64 / dtype-less allocations banned on hot paths.

The inference memory plane (:mod:`repro.nn.policy`) makes the execution
dtype an explicit, context-local policy: float64 for training, float32
for serving.  A hot-path module that hard-codes ``dtype=np.float64`` (or
the ``"float64"`` string) in an allocation or cast silently pins that
path to double precision — upcasting float32 serving traffic back to
float64 and defeating the policy.  A *dtype-less* ``np.zeros`` /
``np.empty`` is the same bug in disguise: numpy defaults to float64.

The rule fires only in ``config.dtype_hot_modules``.  The policy module
itself and the legacy reference backend (:mod:`repro.nn.tensor`) are
exempt by omission — the reference ops define the float64 baseline the
differential suite compares against.  Lines carrying a
``# repro: disable=REP007`` pragma are sanctioned (e.g. dataset-level
labels that stay canonical float64 across policies).
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule

#: numpy callables that materialize or cast an array; a hard-coded
#: float64 handed to any of these fixes the result's dtype.
_ALLOC_FUNCS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "asarray", "array", "ascontiguousarray",
})
#: of those, the ones whose *omitted* dtype defaults to float64 — a bare
#: call is an implicit float64 allocation.
_DEFAULT_FLOAT_FUNCS = frozenset({"zeros", "empty", "ones"})


def _numpy_aliases(tree: ast.Module) -> tuple[set, set]:
    """(names bound to the numpy module, names bound to numpy.float64)."""
    module_aliases: set = set()
    member_aliases: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    module_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "float64":
                    member_aliases.add(alias.asname or "float64")
    return module_aliases, member_aliases


def _is_float64(node, module_aliases: set, member_aliases: set) -> bool:
    """Whether an expression is a hard-coded float64 dtype."""
    if (isinstance(node, ast.Attribute) and node.attr == "float64"
            and isinstance(node.value, ast.Name)
            and node.value.id in module_aliases):
        return True
    if isinstance(node, ast.Name) and node.id in member_aliases:
        return True
    if isinstance(node, ast.Constant) and node.value == "float64":
        return True
    return False


def _called_allocator(func, module_aliases: set) -> str | None:
    """``np.zeros`` -> ``"zeros"`` when func is a numpy allocator call."""
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
            and func.attr in _ALLOC_FUNCS):
        return func.attr
    return None


@rule("REP007", "hard-coded np.float64 (or dtype-less np.zeros/empty/ones) "
                "allocations banned in hot-path modules — use the active "
                "ExecutionPolicy dtype (repro.nn.policy)")
def check_dtype(project, config):
    findings = []
    hot = frozenset(getattr(config, "dtype_hot_modules", ()))
    for info in project.modules:
        if info.rel not in hot:
            continue
        module_aliases, member_aliases = _numpy_aliases(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            allocator = _called_allocator(node.func, module_aliases)
            is_astype = (isinstance(node.func, ast.Attribute)
                         and node.func.attr == "astype")
            if allocator is None and not is_astype:
                continue
            label = (f"np.{allocator}" if allocator is not None
                     else ".astype")
            hard_coded = any(
                _is_float64(arg, module_aliases, member_aliases)
                for arg in list(node.args)
                + [kw.value for kw in node.keywords])
            if hard_coded:
                findings.append(Finding(
                    info.rel, node.lineno, "REP007",
                    f"hard-coded float64 in {label}(...) on a hot path — "
                    "allocate in the active policy dtype "
                    "(repro.nn.policy.active_dtype / workspace_zeros)"))
                continue
            if (allocator in _DEFAULT_FLOAT_FUNCS
                    and len(node.args) < 2
                    and not any(kw.arg == "dtype" for kw in node.keywords)):
                findings.append(Finding(
                    info.rel, node.lineno, "REP007",
                    f"dtype-less {label}(...) on a hot path defaults to "
                    "float64 — pass an explicit policy-derived dtype"))
    return findings
