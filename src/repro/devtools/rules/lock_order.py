"""REP001 lock-order analysis + REP006 undocumented-lock census.

REP001 builds, per function, the sequence of lock acquisitions (``with``
blocks over expressions that resolve to a registered
:class:`~repro.devtools.locks.LockSpec`) and an intra-package call graph,
then flags:

* acquiring a lock of rank <= the highest-ranked lock already held
  (hierarchy inversion — the classic deadlock shape);
* re-entering a non-reentrant ``Lock`` already held on the same path;
* calling a function whose *transitive* acquisitions include such a lock;
* known blocking calls (``.wait()`` / ``.join()``, and ``.get()`` /
  ``.put()`` on queue-named receivers) while any registered lock is held.

Resolution is name-based and deliberately conservative: ``self._lock``
resolves through the enclosing class, ``self.service._lock`` through the
config's attribute bindings, module globals by name, and accessor calls
like ``self._model_lock(model)`` through a spec's ``acquire_names``.
Locks bound to a local (``lock = self._model_lock(m)``) are tracked
through single-name assignments.  Nested functions and lambdas execute
later, so their bodies are analyzed separately with an empty held set
and their acquisitions do not count at the definition site.

REP006 cross-checks creation sites against the hierarchy table in both
directions: every ``threading.Lock/RLock()`` constructed in the tree
must be a registered spec of the right kind, and every registered spec
whose module is in the tree must still have a creation site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..findings import Finding
from ..registry import rule

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_BLOCKING_ATTRS = frozenset({"wait", "join"})
_QUEUE_ATTRS = frozenset({"get", "put"})


# ----------------------------------------------------------------------
# lock creation sites
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreationSite:
    module: str
    owner: str | None
    name: str
    kind: str
    line: int


def _import_aliases(tree: ast.Module) -> tuple[set, dict]:
    """(names bound to the ``threading`` module, direct Lock/RLock names)."""
    module_aliases: set = set()
    direct: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    module_aliases.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _LOCK_FACTORIES:
                    direct[alias.asname or alias.name] = alias.name
    return module_aliases, direct


def _lock_kind(value, module_aliases: set, direct: dict) -> str | None:
    """``"Lock"``/``"RLock"`` when ``value`` constructs one, else None."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
            and func.attr in _LOCK_FACTORIES):
        return func.attr
    if isinstance(func, ast.Name) and func.id in direct:
        return direct[func.id]
    return None


class _CreationVisitor(ast.NodeVisitor):
    """Collect every lock construction with its (owner, name) candidates."""

    def __init__(self, rel: str, module_aliases: set, direct: dict):
        self.rel = rel
        self.module_aliases = module_aliases
        self.direct = direct
        self.class_stack: list[str] = []
        self.func_depth = 0
        self.sites: list[tuple[CreationSite, list]] = []

    def visit_ClassDef(self, node):
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_func(self, node):
        self.func_depth += 1
        self.generic_visit(node)
        self.func_depth -= 1

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _candidates(self, targets) -> list[tuple[str | None, str]]:
        owner = self.class_stack[-1] if self.class_stack else None
        out = []
        for target in targets:
            if isinstance(target, ast.Attribute):
                if (isinstance(target.value, ast.Name)
                        and target.value.id == "self" and owner):
                    out.append((owner, target.attr))
            elif isinstance(target, ast.Subscript):
                inner = target.value
                if (isinstance(inner, ast.Attribute)
                        and isinstance(inner.value, ast.Name)
                        and inner.value.id == "self" and owner):
                    out.append((owner, inner.attr))
            elif isinstance(target, ast.Name):
                if self.func_depth == 0:
                    # module-level or class-body lock
                    out.append((owner, target.id))
                else:
                    # A bare local: only meaningful if no other target
                    # registers the lock (checked by the caller).
                    out.append((None, target.id))
        return out

    def _record(self, node, value, targets):
        kind = _lock_kind(value, self.module_aliases, self.direct)
        if kind is None:
            return
        candidates = self._candidates(targets)
        name = candidates[0][1] if candidates else "<anonymous>"
        owner = candidates[0][0] if candidates else None
        self.sites.append((CreationSite(self.rel, owner, name, kind,
                                        node.lineno), candidates))

    def visit_Assign(self, node):
        self._record(node, node.value, node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None and node.target is not None:
            self._record(node, node.value, [node.target])
        self.generic_visit(node)


def _collect_sites(info) -> list[tuple[CreationSite, list]]:
    module_aliases, direct = _import_aliases(info.tree)
    if not module_aliases and not direct:
        return []
    visitor = _CreationVisitor(info.rel, module_aliases, direct)
    visitor.visit(info.tree)
    return visitor.sites


# ----------------------------------------------------------------------
# spec lookup helpers
# ----------------------------------------------------------------------
def _spec_owner_attr(hierarchy, owner: str | None, name: str):
    for spec in hierarchy:
        if spec.owner == owner and spec.name == name:
            return spec
    return None


def _spec_module_global(hierarchy, module: str, name: str):
    for spec in hierarchy:
        if spec.module == module and spec.owner is None and spec.name == name:
            return spec
    return None


def _spec_acquire_name(hierarchy, owner: str | None, method: str):
    for spec in hierarchy:
        if method in spec.acquire_names and (owner is None
                                             or spec.owner == owner):
            return spec
    return None


# ----------------------------------------------------------------------
# the flow analysis
# ----------------------------------------------------------------------
@dataclass
class _Ctx:
    rel: str
    current_class: str | None
    config: object
    functions: dict
    classes: dict
    hierarchy: tuple
    trans: dict | None = None        # set in the reporting pass
    local_locks: dict = field(default_factory=dict)
    nested: list = field(default_factory=list)


@dataclass
class _Sink:
    acquires: set = field(default_factory=set)
    calls: set = field(default_factory=set)
    findings: list = field(default_factory=list)
    report: bool = False


def _receiver_class(expr, ctx: _Ctx) -> str | None:
    """The class a lock/method receiver expression refers to, if known."""
    bindings = ctx.config.attr_bindings
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return ctx.current_class
        if expr.id in bindings:
            return bindings[expr.id]
        if expr.id in ctx.classes:
            return expr.id  # classmethod/staticmethod access, e.g. Tensor
    if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
            and expr.value.id == "self" and expr.attr in bindings):
        return bindings[expr.attr]
    return None


def _resolve_lock(expr, ctx: _Ctx):
    """The LockSpec an expression evaluates to, or None."""
    if isinstance(expr, ast.Name):
        if expr.id in ctx.local_locks:
            return ctx.local_locks[expr.id]
        return _spec_module_global(ctx.hierarchy, ctx.rel, expr.id)
    if isinstance(expr, ast.Attribute):
        owner = _receiver_class(expr.value, ctx)
        if owner is not None:
            return _spec_owner_attr(ctx.hierarchy, owner, expr.attr)
        return None
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            return _spec_acquire_name(ctx.hierarchy,
                                      _receiver_class(func.value, ctx),
                                      func.attr)
        if isinstance(func, ast.Name):
            return _spec_acquire_name(ctx.hierarchy, None, func.id)
    return None


def _resolve_callee(func, ctx: _Ctx):
    """The (module, owner, name) key of an intra-package callee, or None."""
    if isinstance(func, ast.Name):
        key = (ctx.rel, None, func.id)
        return key if key in ctx.functions else None
    if isinstance(func, ast.Attribute):
        owner = _receiver_class(func.value, ctx)
        if owner is not None:
            module = ctx.classes.get(owner)
            if module is not None:
                key = (module, owner, func.attr)
                if key in ctx.functions:
                    return key
    return None


def _walk_expr(expr):
    """Yield expression nodes, not descending into lambda bodies (their
    calls run later, under the *caller's* held set, not ours)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(child for child in ast.iter_child_nodes(node)
                     if isinstance(child, ast.expr)
                     or isinstance(child, ast.comprehension))


def _held_summary(held) -> str:
    worst = max(held, key=lambda s: s.rank)
    return f"{worst.qualified} (rank {worst.rank})"


def _check_call(call: ast.Call, held, ctx: _Ctx, sink: _Sink):
    func = call.func
    callee = _resolve_callee(func, ctx)
    if callee is not None:
        sink.calls.add(callee)
    if not sink.report or not held:
        return
    if isinstance(func, ast.Attribute):
        receiver = ast.unparse(func.value)
        if func.attr in _BLOCKING_ATTRS or (
                func.attr in _QUEUE_ATTRS and "queue" in receiver.lower()):
            sink.findings.append(Finding(
                ctx.rel, call.lineno, "REP001",
                f"blocking call {receiver}.{func.attr}() while holding "
                f"{_held_summary(held)}"))
    if callee is not None and ctx.trans is not None:
        max_rank = max(spec.rank for spec in held)
        for spec in sorted(ctx.trans.get(callee, ()), key=lambda s: s.rank):
            if spec in held:
                if spec.kind == "Lock":
                    sink.findings.append(Finding(
                        ctx.rel, call.lineno, "REP001",
                        f"call to {callee[2]}() may re-acquire non-reentrant "
                        f"{spec.qualified} already held"))
            elif spec.rank <= max_rank:
                sink.findings.append(Finding(
                    ctx.rel, call.lineno, "REP001",
                    f"call to {callee[2]}() may acquire {spec.qualified} "
                    f"(rank {spec.rank}) while holding {_held_summary(held)}"))


def _check_acquire(spec, held, node, ctx: _Ctx, sink: _Sink):
    sink.acquires.add(spec)
    if not sink.report or not held:
        return
    if spec in held:
        if spec.kind == "Lock":
            sink.findings.append(Finding(
                ctx.rel, node.lineno, "REP001",
                f"re-acquiring non-reentrant {spec.qualified} already held "
                "on this path (self-deadlock)"))
        return
    max_rank = max(s.rank for s in held)
    if spec.rank <= max_rank:
        sink.findings.append(Finding(
            ctx.rel, node.lineno, "REP001",
            f"acquires {spec.qualified} (rank {spec.rank}) while holding "
            f"{_held_summary(held)} — violates the lock hierarchy"))


def _scan_expr(expr, held, ctx: _Ctx, sink: _Sink):
    for node in _walk_expr(expr):
        if isinstance(node, ast.Call):
            _check_call(node, held, ctx, sink)


def _scan_block(stmts, held, ctx: _Ctx, sink: _Sink):
    for stmt in stmts:
        _scan_stmt(stmt, held, ctx, sink)


def _scan_stmt(stmt, held, ctx: _Ctx, sink: _Sink):
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        # Runs later (or defines methods analyzed on their own): never
        # under the current held set.
        ctx.nested.append(stmt)
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        inner = list(held)
        for item in stmt.items:
            _scan_expr(item.context_expr, inner, ctx, sink)
            spec = _resolve_lock(item.context_expr, ctx)
            if spec is not None:
                _check_acquire(spec, inner, stmt, ctx, sink)
                inner.append(spec)
        _scan_block(stmt.body, inner, ctx, sink)
        return
    if isinstance(stmt, ast.Assign):
        _scan_expr(stmt.value, held, ctx, sink)
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            spec = _resolve_lock(stmt.value, ctx)
            if spec is not None:
                ctx.local_locks[stmt.targets[0].id] = spec
        return
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.stmt):
                    _scan_stmt(item, held, ctx, sink)
                elif isinstance(item, ast.excepthandler):
                    _scan_block(item.body, held, ctx, sink)
                elif isinstance(item, ast.expr):
                    _scan_expr(item, held, ctx, sink)
        elif isinstance(value, ast.expr):
            _scan_expr(value, held, ctx, sink)


def _index_functions(project):
    """(function key -> (info, node), class name -> module rel)."""
    functions: dict = {}
    classes: dict = {}
    for info in project.modules:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[(info.rel, None, node.name)] = (info, node)
            elif isinstance(node, ast.ClassDef):
                classes.setdefault(node.name, info.rel)
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        functions[(info.rel, node.name, sub.name)] = (info, sub)
    return functions, classes


def _scan_function(key, node, info, config, functions, classes, hierarchy,
                   trans, report: bool) -> _Sink:
    """Scan one function body (plus its nested defs, each with an empty
    held set).  Nested acquisitions do not leak into the summary."""
    sink = _Sink(report=report)
    ctx = _Ctx(rel=info.rel, current_class=key[1], config=config,
               functions=functions, classes=classes, hierarchy=hierarchy,
               trans=trans)
    body = node.body if not isinstance(node, ast.Module) else node.body
    _scan_block(body, [], ctx, sink)
    # Nested defs: analyze for violations only, under an empty held set.
    pending = list(ctx.nested)
    while pending and report:
        nested = pending.pop()
        if isinstance(nested, ast.ClassDef):
            continue
        sub_sink = _Sink(report=True)
        sub_ctx = _Ctx(rel=info.rel, current_class=key[1], config=config,
                       functions=functions, classes=classes,
                       hierarchy=hierarchy, trans=trans)
        _scan_block(nested.body, [], sub_ctx, sub_sink)
        sink.findings.extend(sub_sink.findings)
        pending.extend(n for n in sub_ctx.nested
                       if not isinstance(n, ast.ClassDef))
    return sink


@rule("REP001", "lock acquisitions must follow the documented hierarchy; "
                "no blocking calls under a lock")
def check_lock_order(project, config):
    hierarchy = config.lock_hierarchy
    functions, classes = _index_functions(project)

    # Pass 1: per-function summaries (direct acquires + resolved calls).
    summaries = {}
    for key, (info, node) in functions.items():
        summaries[key] = _scan_function(key, node, info, config, functions,
                                        classes, hierarchy, None, False)

    # Pass 2: transitive acquisition sets to a fixpoint.
    trans = {key: set(sink.acquires) for key, sink in summaries.items()}
    changed = True
    while changed:
        changed = False
        for key, sink in summaries.items():
            for callee in sink.calls:
                extra = trans.get(callee, set()) - trans[key]
                if extra:
                    trans[key] |= extra
                    changed = True

    # Pass 3: report violations, including module-level code.
    findings = []
    for key, (info, node) in functions.items():
        sink = _scan_function(key, node, info, config, functions, classes,
                              hierarchy, trans, True)
        findings.extend(sink.findings)
    for info in project.modules:
        sink = _Sink(report=True)
        ctx = _Ctx(rel=info.rel, current_class=None, config=config,
                   functions=functions, classes=classes, hierarchy=hierarchy,
                   trans=trans)
        for stmt in info.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                _scan_stmt(stmt, [], ctx, sink)
        findings.extend(sink.findings)
    return findings


@rule("REP006", "every Lock/RLock created in the tree must be registered "
                "in the lock-hierarchy table (and vice versa)")
def check_undocumented_locks(project, config):
    hierarchy = config.lock_hierarchy
    findings = []
    seen: set = set()
    for info in project.modules:
        for site, candidates in _collect_sites(info):
            spec = None
            for owner, name in candidates:
                spec = _spec_owner_attr(
                    hierarchy, owner, name) if owner else _spec_module_global(
                    hierarchy, info.rel, name)
                if spec is not None and spec.module == info.rel:
                    break
                spec = None
            if spec is None:
                findings.append(Finding(
                    info.rel, site.line, "REP006",
                    f"threading.{site.kind}() for "
                    f"{(site.owner + '.') if site.owner else ''}{site.name} "
                    "is not registered in devtools.locks.LOCK_HIERARCHY"))
                continue
            seen.add((spec.module, spec.owner, spec.name))
            if spec.kind != site.kind:
                findings.append(Finding(
                    info.rel, site.line, "REP006",
                    f"{spec.qualified} is registered as {spec.kind} but "
                    f"created as threading.{site.kind}()"))
    for spec in hierarchy:
        info = project.get(spec.module)
        if info is None:
            continue  # linting a subtree / fixture dir
        if (spec.module, spec.owner, spec.name) not in seen:
            findings.append(Finding(
                spec.module, 1, "REP006",
                f"stale hierarchy entry: {spec.qualified} has no creation "
                "site — update devtools.locks.LOCK_HIERARCHY"))
    return findings
