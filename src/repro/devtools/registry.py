"""Rule registry and the lint driver.

A rule is a callable ``rule(project, config) -> iterable[Finding]``
registered under its ``REPxxx`` id via the :func:`rule` decorator.
:func:`run_rules` runs a selection over a parsed project and applies
pragma + baseline suppression; :func:`run_lint` is the CLI entry point
(load, run, print, exit code).
"""

from __future__ import annotations

from .config import LintConfig, default_config
from .findings import filter_findings, load_baseline
from .project import Project

__all__ = ["Rule", "RULES", "rule", "run_rules", "run_lint"]


class Rule:
    """One registered rule: id, one-line summary, and the check callable."""

    def __init__(self, rule_id: str, summary: str, check):
        self.rule_id = rule_id
        self.summary = summary
        self.check = check

    def __call__(self, project: Project, config: LintConfig):
        return self.check(project, config)

    def __repr__(self) -> str:
        return f"Rule({self.rule_id}: {self.summary})"


#: rule id -> Rule.  Populated at import time by @rule decorators (the
#: import lock serializes registration; nothing mutates this afterwards).
RULES: dict = {}


def rule(rule_id: str, summary: str):
    """Register ``check(project, config)`` under ``rule_id``."""
    def decorator(check):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, summary, check)
        return check
    return decorator


def run_rules(project: Project, config: LintConfig | None = None,
              rule_ids=None, baseline: set | None = None):
    """Run selected rules over ``project``; returns suppressed-filtered,
    sorted findings."""
    from . import rules as _rules  # noqa: F401  (ensure registration)

    config = config or default_config()
    selected = sorted(rule_ids or RULES)
    unknown = [rid for rid in selected if rid not in RULES]
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(unknown)}")
    findings = []
    for rule_id in selected:
        findings.extend(RULES[rule_id](project, config))
    disabled_by_file = {info.rel: info.disabled for info in project.modules}
    return filter_findings(findings, disabled_by_file, baseline=baseline)


def run_lint(root: str, rule_ids=None, baseline_path=None,
             config: LintConfig | None = None, out=None) -> int:
    """Lint ``root``; print findings to ``out``; return the exit code
    (0 clean, 1 findings)."""
    import sys

    out = out or sys.stdout
    project = Project.load(root)
    baseline = load_baseline(baseline_path)
    findings = run_rules(project, config=config, rule_ids=rule_ids,
                         baseline=baseline)
    for finding in findings:
        print(finding.render(), file=out)
    checked = len(project.modules)
    ran = sorted(rule_ids or RULES)
    if findings:
        print(f"repro lint: {len(findings)} finding(s) in {checked} files "
              f"({', '.join(ran)})", file=out)
        return 1
    print(f"repro lint: clean — {checked} files, rules {', '.join(ran)}",
          file=out)
    return 0
