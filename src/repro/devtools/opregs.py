"""Static model of the op-registry table in ``nn/ops.py``.

The registry module keeps every ``register(...)`` /
``register_backend(...)`` call a literal (constant op name, dict-literal
backends) precisely so the lint rules can read the table without
importing the package.  This module is that reader: it parses one
:class:`~repro.devtools.project.ModuleInfo` into
:class:`OpsModuleModel` — the declared backends with their fallback
chain, every op registration with its backend->implementation
references, and the module's import aliases (so an implementation
reference like ``_segment._segment_sum_plan`` can be resolved back to
``nn/segment.py`` by REP004).

Shared by REP004 (autograd consistency of registered implementations),
REP005 (registry-sourced backend parity) and REP008 (registration
completeness + ``use_backend`` literal validation).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BackendFill", "OpRegistration", "OpsModuleModel",
           "parse_ops_module", "resolve_impl"]


@dataclass
class BackendFill:
    """One ``register_backend(..., impls={...})`` call — a late fill of a
    declared backend with implementations (the compiled backend's
    registration shape, checked by REP008)."""

    name: str
    lineno: int
    #: whether the call passed a ``fallback`` declaration
    has_fallback: bool = False
    #: op name -> (alias, attribute) implementation reference (None marks
    #: an unreadable value)
    impls: dict = field(default_factory=dict)


@dataclass
class OpRegistration:
    """One ``register(...)`` call, statically extracted."""

    name: str
    lineno: int
    #: backend name -> (alias, attribute) implementation reference;
    #: ``alias`` is "" for a bare name, None marks an unreadable value
    #: (lambda, call, subscript).
    backends: dict = field(default_factory=dict)
    has_adjoint: bool = False
    adjoint_empty: bool = False
    has_samples: bool = False
    waiver: str | None = None
    differentiable: bool = True
    #: True when the op name was not a string literal (unparseable).
    dynamic_name: bool = False


@dataclass
class OpsModuleModel:
    """Everything the rules need from one parsed ops module."""

    registrations: list
    #: backend name -> declaration line
    backend_decls: dict = field(default_factory=dict)
    #: backend name -> fallback backend name (or None)
    backend_fallbacks: dict = field(default_factory=dict)
    #: local alias -> project-relative module path ("nn/segment.py")
    alias_to_module: dict = field(default_factory=dict)
    #: local name -> (project-relative module path, original name)
    from_imports: dict = field(default_factory=dict)
    #: ``register_backend(..., impls=...)`` fills, in source order
    backend_fills: list = field(default_factory=list)


def _relative_base(info_rel: str, level: int, module: str | None) -> list:
    """Package-path components a relative import resolves against."""
    parts = info_rel.split("/")[:-1]
    for _ in range(max(level - 1, 0)):
        if parts:
            parts.pop()
    if module:
        parts.extend(module.split("."))
    return parts


def _collect_imports(tree: ast.Module, info_rel: str, model: OpsModuleModel):
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.level == 0:
            continue  # absolute imports leave the project; out of scope
        base = _relative_base(info_rel, node.level, node.module)
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module is None:
                # ``from . import segment as _segment`` — names are modules.
                model.alias_to_module[local] = "/".join(
                    base + [alias.name]) + ".py"
            else:
                # ``from .tensor import as_tensor`` — names are members.
                model.from_imports[local] = ("/".join(base) + ".py",
                                             alias.name)


def _impl_ref(value):
    """(alias, attr) for a Name/Attribute implementation value, else None."""
    if isinstance(value, ast.Name):
        return ("", value.id)
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        return (value.value.id, value.attr)
    return None


def _registration_of(call: ast.Call) -> OpRegistration:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        reg = OpRegistration(name=call.args[0].value, lineno=call.lineno)
    else:
        reg = OpRegistration(name="<dynamic>", lineno=call.lineno,
                             dynamic_name=True)
    for keyword in call.keywords:
        value = keyword.value
        if keyword.arg == "backends" and isinstance(value, ast.Dict):
            for key, impl in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    reg.backends[key.value] = _impl_ref(impl)
        elif keyword.arg == "adjoint":
            reg.has_adjoint = True
            reg.adjoint_empty = (isinstance(value, ast.Constant)
                                 and not value.value)
        elif keyword.arg == "samples":
            reg.has_samples = True
        elif keyword.arg == "waiver":
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                reg.waiver = value.value
            elif not (isinstance(value, ast.Constant) and value.value is None):
                reg.waiver = "<dynamic>"
        elif keyword.arg == "differentiable":
            if isinstance(value, ast.Constant):
                reg.differentiable = bool(value.value)
    return reg


def parse_ops_module(info) -> OpsModuleModel:
    """Extract the registry table from a parsed ops module.

    ``info`` is a :class:`~repro.devtools.project.ModuleInfo`.  Only
    literal calls are modeled — a dynamically-built registration is
    recorded with ``dynamic_name=True`` so REP008 can flag it rather
    than silently skipping it.
    """
    model = OpsModuleModel(registrations=[])
    _collect_imports(info.tree, info.rel, model)
    for node in ast.walk(info.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "register_backend":
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                name = node.args[0].value
                fallback = None
                has_fallback = False
                impls_node = None
                if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                    fallback = node.args[1].value
                    has_fallback = fallback is not None
                for keyword in node.keywords:
                    if keyword.arg == "fallback" and isinstance(
                            keyword.value, ast.Constant):
                        fallback = keyword.value.value
                        has_fallback = fallback is not None
                    elif keyword.arg == "impls":
                        impls_node = keyword.value
                model.backend_decls[name] = node.lineno
                model.backend_fallbacks[name] = fallback
                if impls_node is not None:
                    fill = BackendFill(name=name, lineno=node.lineno,
                                       has_fallback=has_fallback)
                    if isinstance(impls_node, ast.Dict):
                        for key, impl in zip(impls_node.keys,
                                             impls_node.values):
                            if isinstance(key, ast.Constant) \
                                    and isinstance(key.value, str):
                                fill.impls[key.value] = _impl_ref(impl)
                    model.backend_fills.append(fill)
        elif node.func.attr == "register":
            model.registrations.append(_registration_of(node))
    return model


def resolve_impl(model: OpsModuleModel, info_rel: str, ref):
    """(module rel path, function name) an impl reference points at.

    ``ref`` is the ``(alias, attr)`` pair from :class:`OpRegistration`;
    returns ``(None, None)`` when the reference cannot be resolved
    statically (unknown alias, non-name value).
    """
    if ref is None:
        return None, None
    alias, attr = ref
    if alias:
        target = model.alias_to_module.get(alias)
        return (target, attr) if target else (None, None)
    if attr in model.from_imports:
        return model.from_imports[attr]
    return info_rel, attr
