"""Finding records, pragma suppression, and baseline handling.

A :class:`Finding` is one rule violation at one source line.  Findings
are suppressed either by an inline pragma on the offending line::

    something_suspicious()  # repro: disable=REP002
    another_thing()         # repro: disable=REP001, REP003
    escape_hatch()          # repro: disable=all

or by a JSON baseline file listing known pre-existing findings (a list
of ``{"file": ..., "line": ..., "rule_id": ...}`` objects).  The repo
ships an *empty* baseline — the lint gate requires zero findings — but
the mechanism exists so a future rule can land before its last fixes do.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

__all__ = ["Finding", "parse_pragmas", "filter_findings", "load_baseline"]


#: ``# repro: disable=REP001`` / ``disable=REP001, REP002`` / ``disable=all``
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*disable=((?:REP\d+|all)(?:\s*,\s*(?:REP\d+|all))*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: ``file:line  RULE  message``."""

    file: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id}: {self.message}"

    def baseline_key(self) -> tuple:
        # Messages may carry volatile detail (ranks, names); the baseline
        # matches on location + rule only.
        return (self.file, self.line, self.rule_id)


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number (1-based) -> rule ids disabled on that line.

    The sentinel id ``"all"`` disables every rule on the line.
    """
    disabled: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            ids = frozenset(part.strip() for part in match.group(1).split(","))
            disabled[lineno] = ids
    return disabled


def is_disabled(disabled: dict[int, frozenset[str]], line: int,
                rule_id: str) -> bool:
    ids = disabled.get(line)
    return ids is not None and (rule_id in ids or "all" in ids)


def filter_findings(findings, disabled_by_file: dict[str, dict[int, frozenset[str]]],
                    baseline: set[tuple] | None = None) -> list[Finding]:
    """Drop pragma-suppressed and baselined findings; sort the rest."""
    baseline = baseline or set()
    kept = []
    for finding in findings:
        disabled = disabled_by_file.get(finding.file, {})
        if is_disabled(disabled, finding.line, finding.rule_id):
            continue
        if finding.baseline_key() in baseline:
            continue
        kept.append(finding)
    return sorted(kept)


def load_baseline(path) -> set[tuple]:
    """Load a JSON baseline file into a set of baseline keys.

    Returns the empty set for a missing path, so "no baseline" and
    "empty baseline" are the same strictest configuration.
    """
    if path is None:
        return set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)
    except FileNotFoundError:
        return set()
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    keys = set()
    for entry in entries:
        keys.add((entry["file"], int(entry["line"]), entry["rule_id"]))
    return keys
