"""Debug-mode runtime lock-order guard — the dynamic witness for REP001.

:class:`LockOrderGuard` wraps live ``threading.Lock``/``RLock`` objects
in rank-checking proxies: each thread keeps its own stack of held ranks,
and acquiring a lock whose rank is <= the highest rank already held (by
a *different* guarded lock) raises :class:`LockOrderViolation`
immediately — turning a latent deadlock into a loud test failure.  The
tier-2 stress suite runs its hammer threads under a guard, so every
interleaving it explores also validates the documented hierarchy.

Usage::

    guard = LockOrderGuard()
    guard.wrap_instance(service, rank=30, attr="_lock",
                        name="InferenceService._lock")
    ...
    guard.unwrap()   # restore the raw locks (also a context manager)

Guarded locks are transparent for ``with``/``acquire``/``release``;
re-entry of the *same* guarded RLock is always allowed.  The guard is
itself thread-safe: wrapping happens before the worker threads start,
and per-thread state lives in ``threading.local``.
"""

from __future__ import annotations

import threading

from .locks import LOCK_HIERARCHY

__all__ = ["LockOrderGuard", "LockOrderViolation", "guard_serving_stack"]


class LockOrderViolation(AssertionError):
    """A thread acquired locks against the documented hierarchy."""


class _GuardedLock:
    """Rank-checking proxy around one Lock/RLock instance."""

    def __init__(self, raw, rank: int, name: str, state):
        self._raw = raw
        self.rank = rank
        self.name = name
        self._state = state
        self._reentrant = isinstance(raw, type(threading.RLock()))

    # -- rank bookkeeping ----------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._state, "stack", None)
        if stack is None:
            stack = self._state.stack = []
        return stack

    def _check(self) -> None:
        stack = self._stack()
        if not stack:
            return
        top_rank, top_name, top_lock = max(stack, key=lambda e: e[0])
        if any(entry[2] is self for entry in stack):
            if not self._reentrant:
                raise LockOrderViolation(
                    f"re-acquiring non-reentrant {self.name} already held "
                    "by this thread (self-deadlock)")
            return  # re-entry of this very RLock

        if self.rank <= top_rank:
            raise LockOrderViolation(
                f"lock-order violation: acquiring {self.name} "
                f"(rank {self.rank}) while holding {top_name} "
                f"(rank {top_rank})")

    # -- lock protocol --------------------------------------------------
    def acquire(self, *args, **kwargs):
        self._check()
        acquired = self._raw.acquire(*args, **kwargs)
        if acquired:
            self._stack().append((self.rank, self.name, self))
        return acquired

    def release(self):
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][2] is self:
                del stack[index]
                break
        self._raw.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def __repr__(self) -> str:
        return f"_GuardedLock({self.name}, rank={self.rank})"


class LockOrderGuard:
    """Wrap registered locks on live objects; assert rank order per-thread.

    Wrapped locations are remembered so :meth:`unwrap` (or leaving the
    context manager) restores the raw locks exactly.
    """

    def __init__(self):
        self._state = threading.local()
        self._wrapped: list = []  # (holder, attr, raw, is_module)

    # -- wrapping primitives -------------------------------------------
    def wrap_instance(self, obj, rank: int, attr: str = "_lock",
                      name: str | None = None) -> "_GuardedLock":
        """Replace ``obj.<attr>`` with a guarded proxy of itself."""
        raw = getattr(obj, attr)
        if isinstance(raw, _GuardedLock):
            return raw
        guarded = _GuardedLock(raw, rank,
                               name or f"{type(obj).__name__}.{attr}",
                               self._state)
        setattr(obj, attr, guarded)
        self._wrapped.append((obj, attr, raw))
        return guarded

    def wrap_module_global(self, module, name: str, rank: int) -> "_GuardedLock":
        """Replace a module-global lock with a guarded proxy."""
        raw = getattr(module, name)
        if isinstance(raw, _GuardedLock):
            return raw
        guarded = _GuardedLock(raw, rank, f"{module.__name__}.{name}",
                               self._state)
        setattr(module, name, guarded)
        self._wrapped.append((module, name, raw))
        return guarded

    def unwrap(self) -> None:
        """Restore every wrapped lock to its raw object."""
        while self._wrapped:
            holder, attr, raw = self._wrapped.pop()
            setattr(holder, attr, raw)

    def __enter__(self) -> "LockOrderGuard":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.unwrap()
        return False

    def held_ranks(self) -> list:
        """This thread's currently held (rank, name) pairs (debugging)."""
        stack = getattr(self._state, "stack", [])
        return [(rank, name) for rank, name, _ in stack]


def _rank_of(owner: str | None, name: str) -> int:
    for spec in LOCK_HIERARCHY:
        if spec.owner == owner and spec.name == name:
            return spec.rank
    raise KeyError(f"no registered lock {owner}.{name}")


def guard_serving_stack(server=None, service=None,
                        guard: LockOrderGuard | None = None) -> LockOrderGuard:
    """Wrap a serving stack's registered locks with hierarchy ranks.

    Wraps the server lock, its router, the service lock, the model /
    batch-cache registries, and the module-global scatter-plan lock —
    every table entry reachable from live objects without intercepting
    per-instance lazy locks (per-model, per-batch, per-loader), which
    are created after wrapping time.  Call before starting worker
    threads; ``unwrap`` (or the context manager) restores everything.
    """
    from ..nn import segment as _segment

    guard = guard or LockOrderGuard()
    if server is not None:
        guard.wrap_instance(server, _rank_of("InferenceServer", "_lock"),
                            name="InferenceServer._lock")
        guard.wrap_instance(server.router, _rank_of("BatchingRouter", "_lock"),
                            name="BatchingRouter._lock")
        if service is None:
            service = server.service
    if service is not None:
        guard.wrap_instance(service, _rank_of("InferenceService", "_lock"),
                            name="InferenceService._lock")
        guard.wrap_instance(service.models, _rank_of("ModelRegistry", "_lock"),
                            name="ModelRegistry._lock")
        guard.wrap_instance(service.batch_cache,
                            _rank_of("BatchCacheRegistry", "_lock"),
                            name="BatchCacheRegistry._lock")
    guard.wrap_module_global(_segment, "_scatter_plan_lock",
                             _rank_of(None, "_scatter_plan_lock"))
    return guard
