"""The machine-readable lock-hierarchy table — single source of truth.

Every ``threading.Lock``/``RLock`` created anywhere in ``src/repro``
must appear here (rule REP006), and the ranks here drive both the static
lock-order rule (REP001) and the runtime :class:`~repro.devtools.runtime.
LockOrderGuard`.  The prose lock-order section in
:mod:`repro.serve.service` is generated from this table's *levels*; a
tier-1 test asserts every entry is named there.

Ranks are ordered coarse-to-fine: a thread may only acquire locks of
strictly increasing rank (same-rank re-acquisition is allowed for RLocks
only).  ``level`` groups ranks into the six documented tiers of the
serve stack's prose table (cluster front end above server internals,
leaf registries at the bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LockSpec", "LOCK_HIERARCHY", "spec_for", "render_lock_table"]


@dataclass(frozen=True)
class LockSpec:
    """One registered lock.

    Parameters
    ----------
    rank:
        Total acquisition order — acquire strictly increasing ranks only.
    level:
        Documented tier (1-6) in the :mod:`repro.serve.service` prose.
    module:
        Defining file, relative to ``src/repro`` (e.g. ``serve/router.py``).
    owner:
        Defining class, or ``None`` for a module-global lock.
    name:
        Attribute / global name of the lock (e.g. ``_lock``).
    kind:
        ``"Lock"`` or ``"RLock"``.
    description:
        What the lock guards (one line, rendered into the table).
    acquire_names:
        Extra callable names whose *call result* is this lock — e.g.
        ``InferenceService._model_lock(model)`` returns a per-model
        execution lock, so ``with self._model_lock(m):`` acquires rank 40.
    guards:
        Module-global names whose mutation this lock licenses (consumed
        by rule REP003).
    """

    rank: int
    level: int
    module: str
    owner: str | None
    name: str
    kind: str
    description: str
    acquire_names: tuple = ()
    guards: tuple = field(default_factory=tuple)

    @property
    def qualified(self) -> str:
        owner = f"{self.owner}." if self.owner else ""
        return f"{self.module}:{owner}{self.name}"


LOCK_HIERARCHY: tuple[LockSpec, ...] = (
    LockSpec(5, 1, "serve/cluster.py", "ClusterRouter", "_lock", "Lock",
             "cluster front end: shard health flags + dispatch counters; "
             "shard calls (which take the whole serve stack's locks in "
             "in-process doubles) run with no cluster lock held"),
    LockSpec(10, 2, "serve/server.py", "InferenceServer", "_lock", "RLock",
             "server lifecycle flags, worker bookkeeping, error ring"),
    LockSpec(20, 3, "serve/router.py", "BatchingRouter", "_lock", "RLock",
             "buckets, seq counter, drain window; flush executes unlocked"),
    LockSpec(30, 4, "serve/service.py", "InferenceService", "_lock", "RLock",
             "response LRU, counters, default-router slot, model-lock table"),
    LockSpec(40, 5, "serve/service.py", "InferenceService", "_model_locks",
             "RLock",
             "per-model execution locks (weakref-keyed); serialize the "
             "train/eval mode flip around each forward",
             acquire_names=("_model_lock",)),
    LockSpec(50, 6, "serve/registry.py", "ModelRegistry", "_lock", "RLock",
             "model map, pin set, counters; cache-miss build runs under it"),
    LockSpec(51, 6, "serve/cache.py", "BatchCacheRegistry", "_lock", "RLock",
             "loader entry map and hit/miss counters"),
    LockSpec(52, 6, "graph/loader.py", "DataLoader", "_cache_lock", "Lock",
             "double-checked one-time batch materialization"),
    LockSpec(53, 6, "graph/graph.py", "Batch", "_plan_lock", "Lock",
             "lazy per-batch segment-plan and degree-norm builds"),
    LockSpec(54, 6, "graph/datasets.py", None, "_dataset_cache_lock", "Lock",
             "process-wide synthetic dataset cache",
             guards=("_DATASET_CACHE",)),
    LockSpec(55, 6, "nn/segment.py", None, "_scatter_plan_lock", "Lock",
             "module-level scatter-plan LRU",
             guards=("_scatter_plans",)),
    LockSpec(56, 6, "serve/transport.py", "ServingProtocol", "_lock", "Lock",
             "submit/result ticket window"),
    LockSpec(57, 6, "nn/policy.py", "WorkspacePool", "_lock", "Lock",
             "workspace arena registry (stats/reset aggregation only; "
             "leases run lock-free on per-thread arenas)"),
    LockSpec(58, 6, "nn/compiled/build.py", None, "_build_lock", "Lock",
             "one-time JIT build/load of the compiled kernel library "
             "(compiler discovery result, loaded handle, build counters)",
             guards=("_STATE",)),
)


def spec_for(module: str, owner: str | None, name: str) -> LockSpec | None:
    """The registered spec for a lock creation site, or None."""
    for spec in LOCK_HIERARCHY:
        if spec.module == module and spec.owner == owner and spec.name == name:
            return spec
    return None


def render_lock_table() -> str:
    """Human-readable rendering of the hierarchy (CLI ``lint --locks``)."""
    lines = ["rank  level  kind   lock",
             "----  -----  -----  ----"]
    for spec in sorted(LOCK_HIERARCHY, key=lambda s: s.rank):
        lines.append(f"{spec.rank:>4}  {spec.level:>5}  {spec.kind:<5}  "
                     f"{spec.qualified}  — {spec.description}")
    return "\n".join(lines)
