"""Lint configuration: allowlists and per-rule knobs for ``src/repro``.

The defaults encode *this repo's* invariants; fixture tests build their
own stripped-down configs.  Paths are relative to the linted root with
``/`` separators (``serve/server.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .locks import LOCK_HIERARCHY, LockSpec

__all__ = ["LintConfig", "default_config"]


@dataclass
class LintConfig:
    """Everything a rule needs beyond the parsed sources."""

    #: the ranked lock table (REP001 / REP003 / REP006)
    lock_hierarchy: tuple[LockSpec, ...] = LOCK_HIERARCHY

    #: files where wall-clock calls are legitimate (REP002): the real-time
    #: ticker boundary, CLI benchmarks, and epoch timing telemetry.
    #: (serve/cluster.py is deliberately NOT here: its single wall-clock
    #: site — retry backoff / stall emulation in ``_wall_sleep`` — carries
    #: a per-line ``# repro: disable=REP002`` pragma so any new wall-clock
    #: use in the routing logic still trips the rule.)
    wallclock_allowlist: frozenset = frozenset({
        "serve/server.py",       # ticker thread: simulated-clock <-> real time
        "cli.py",                # benchmark targets time their own runs
        "finetune/base.py",      # per-epoch wall-time telemetry
        "experiments/runner.py",  # experiment harness timing
    })

    #: (file, global) pairs whose module-global mutation is accepted
    #: without a lock or ContextVar (REP003).
    globals_allowlist: frozenset = frozenset({
        # The rule registry is populated by @rule decorators at import
        # time only, under the interpreter's module import lock.
        ("devtools/registry.py", "RULES"),
    })

    #: files whose ops must satisfy the autograd contract (REP004); the
    #: op registry's differentiable implementations must resolve into
    #: this set.
    autograd_modules: tuple = ("nn/tensor.py", "nn/segment.py", "nn/ops.py",
                               "nn/rnn.py", "nn/compiled/kernels.py")

    #: the declarative op-registry module (REP004/REP005/REP008 parse its
    #: register()/register_backend() calls statically via
    #: :mod:`repro.devtools.opregs`).  Rules skip their registry checks
    #: when the module is absent from the linted tree (fixtures).
    ops_module: str = "nn/ops.py"

    #: the compiled-backend registration module: REP008 additionally
    #: requires every ``register_backend(..., impls=...)`` fill in here to
    #: declare its fallback and to reference implementations living under
    #: ``compiled_impl_prefix``.  Skipped when the module is absent from
    #: the linted tree (fixtures override it to a planted file).
    compiled_registration_module: str = "nn/compiled/__init__.py"
    compiled_impl_prefix: str = "nn/compiled/"

    #: hot-path files where hard-coded float64 (or dtype-less) allocations
    #: are banned (REP007): everything here must allocate in the active
    #: ExecutionPolicy dtype via repro.nn.policy.  The policy module
    #: itself and the legacy reference backend (nn/tensor.py) are exempt
    #: by omission.
    dtype_hot_modules: tuple = (
        "nn/segment.py",
        "nn/ops.py",
        "nn/compiled/kernels.py",
        "nn/compiled/build.py",
        "graph/graph.py",
        "graph/loader.py",
        "serve/cache.py",
        "serve/registry.py",
        "serve/service.py",
        "serve/router.py",
        "serve/server.py",
        "serve/transport.py",
        "serve/cluster.py",
    )

    #: backend-parity config (REP005)
    parity_fast_module: str = "nn/segment.py"
    parity_reference_module: str = "nn/tensor.py"
    #: functions in the fast module allowed to call np.add.at /
    #: np.maximum.at (the plan-miss fallback); the reference module may
    #: use them anywhere (they ARE the legacy ops).
    parity_scatter_functions: tuple = ("_scatter_add_plan",)
    #: test files (repo-relative) that must reference every *registered*
    #: op; the suite check is skipped when none exist (fixtures).
    parity_suite_files: tuple = (
        "tests/serve/test_backend_differential.py",
        "tests/gnn/test_segment_parity.py",
        "tests/nn/test_segment.py",
        "tests/nn/test_segment_fuzz.py",
        "tests/nn/test_thread_state.py",
        "tests/nn/test_ops_gradients.py",
    )

    #: how attribute receivers map to lock-owning classes (REP001): an
    #: attribute access like ``self.service._lock`` or a bare global like
    #: ``models`` resolves through these bindings to the owning class.
    attr_bindings: dict = field(default_factory=lambda: {
        "service": "InferenceService",
        "router": "BatchingRouter",
        "default_router": "BatchingRouter",
        "_default_router": "BatchingRouter",
        "models": "ModelRegistry",
        "registry": "ModelRegistry",
        "batch_cache": "BatchCacheRegistry",
        "loader": "DataLoader",
        "protocol": "ServingProtocol",
        "serving_protocol": "ServingProtocol",
        "cluster": "ClusterRouter",
    })


def default_config() -> LintConfig:
    return LintConfig()
