"""Static-analysis devtools for the repro codebase.

The concurrent serving stack (PR 5) made the repo's safety rest on
hand-documented invariants: a ranked lock hierarchy, a simulated-clock
rule for router logic, context-local grad/backend state, and a
two-backend parity contract for every segment kernel.  This package
machine-checks those invariants over ``src/repro`` using only the stdlib
``ast`` module — the static counterpart of the tier-2 differential
suite's numeric checks.

Entry points
------------
* ``python -m repro lint`` — run every registered rule over ``src/repro``
  and exit non-zero on findings (see :func:`repro.devtools.registry.run_lint`);
* :data:`repro.devtools.locks.LOCK_HIERARCHY` — the machine-readable
  lock-ranking table; the prose in :mod:`repro.serve.service` is kept in
  sync with it by a tier-1 test;
* :class:`repro.devtools.runtime.LockOrderGuard` — a debug-mode dynamic
  witness for the static lock-order rule, used by the tier-2 stress
  suite.

Suppression: a line ending in ``# repro: disable=REP001`` (or a
comma-separated list, or ``all``) suppresses findings on that line.
Pre-existing findings can also be carried in a JSON baseline file; the
shipped baseline is empty and must stay empty.
"""

from .findings import Finding, load_baseline
from .locks import LOCK_HIERARCHY, LockSpec, render_lock_table
from .registry import RULES, run_lint, run_rules
from .runtime import LockOrderGuard

# Import for the registration side effect: each module adds its rules to
# RULES at import time.
from . import rules  # noqa: F401  (registers REP001..REP008)

__all__ = [
    "Finding",
    "load_baseline",
    "LOCK_HIERARCHY",
    "LockSpec",
    "render_lock_table",
    "RULES",
    "run_lint",
    "run_rules",
    "LockOrderGuard",
]
