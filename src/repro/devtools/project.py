"""Project loading: parse every module under a root into AST + metadata.

Rules operate on :class:`ModuleInfo` objects — path, dotted module name,
source text, parsed tree, and the per-line pragma map — so each file is
read and parsed exactly once per lint run regardless of how many rules
inspect it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .findings import parse_pragmas

__all__ = ["ModuleInfo", "Project"]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str            # absolute filesystem path
    rel: str             # path relative to the project root, '/'-separated
    module: str          # dotted module name rooted at the package
    source: str
    tree: ast.Module
    disabled: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


@dataclass
class Project:
    """All parsed modules under one root directory."""

    root: str
    package: str
    modules: list[ModuleInfo]

    @classmethod
    def load(cls, root: str, package: str | None = None) -> "Project":
        """Parse every ``.py`` file under ``root`` (sorted, deterministic).

        ``package`` is the dotted prefix for module names; it defaults to
        the basename of ``root`` (so loading ``src/repro`` yields modules
        named ``repro.serve.service`` etc.).
        """
        root = os.path.abspath(root)
        if package is None:
            package = os.path.basename(root.rstrip(os.sep))
        modules: list[ModuleInfo] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__" and not d.startswith("."))
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                parts = rel[:-3].split("/")  # strip .py
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                module = ".".join([package] + parts) if parts else package
                modules.append(ModuleInfo(
                    path=path, rel=rel, module=module, source=source,
                    tree=ast.parse(source, filename=path),
                    disabled=parse_pragmas(source)))
        return cls(root=root, package=package, modules=modules)

    def get(self, rel: str) -> ModuleInfo | None:
        for info in self.modules:
            if info.rel == rel:
                return info
        return None
