"""Bi-level fine-tuning-strategy search (paper Sec. III-C, Eq. 15-16).

Alternating optimization:

* **theta step** (Eq. 16): sample a relaxed strategy from the controller,
  run the weight-sharing supernet on a *training* batch, update the shared
  GNN weights theta.
* **alpha step** (Eq. 15): sample again (Monte-Carlo estimate of the
  expectation, Eq. 18), evaluate on a *validation* batch, update the
  controller parameters alpha by backprop through the Gumbel-softmax.

The temperature anneals geometrically from ``tau_start`` to ``tau_end`` so
early epochs explore (soft mixtures) and late epochs commit (near one-hot),
ensuring the relaxation is asymptotically unbiased (paper's remark after
Eq. 18).  :func:`random_search` provides the brute-force comparison point
used in the search-algorithm ablation benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.datasets import MolecularDataset
from ..graph.loader import DataLoader
from ..metrics import higher_is_better, multitask_score_or_fallback
from ..nn import Adam, clip_grad_norm, no_grad
from .controller import StrategyController
from .space import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec
from .supernet import DerivedModel, S2PGNNSupernet
from ..finetune.base import finetune, supervised_loss

__all__ = ["SearchConfig", "SearchResult", "S2PGNNSearcher", "random_search"]


@dataclass
class SearchConfig:
    """Hyper-parameters of the bi-level search."""

    epochs: int = 10
    batch_size: int = 32
    eval_batch_size: int = 64
    #: Collate each split's batches once and reshuffle only the batch order
    #: per epoch (vs re-partitioning graphs every epoch).  Membership is
    #: drawn from one random permutation; empirically search quality is at
    #: parity with per-epoch re-partitioning at a fraction of the collation
    #: cost.  Set False for strictly paper-faithful per-epoch reshuffling,
    #: or if you mutate the graph lists between evaluate_spec calls.
    cache_batches: bool = True
    #: Raise the supernet's branch-skip threshold as tau anneals (see
    #: :meth:`S2PGNNSupernet.update_mix_threshold`).  Epoch 0 of a
    #: multi-epoch search runs at the fixed base threshold, so early
    #: exploration is unaffected; a single-epoch search starts (and ends)
    #: at ``tau_end`` and therefore uses ``mix_threshold_final`` throughout.
    adaptive_mix_threshold: bool = True
    #: Skip threshold reached once tau hits ``tau_end``.
    mix_threshold_final: float = 1e-5
    theta_lr: float = 1e-3
    alpha_lr: float = 3e-3
    tau_start: float = 1.0
    tau_end: float = 0.1
    mc_samples: int = 1
    grad_clip: float = 5.0
    weight_sharing: bool = True
    alpha_batches_per_epoch: int = 4
    derive_candidates: int = 4
    seed: int = 0

    def temperature(self, epoch: int) -> float:
        """Geometric annealing schedule tau(epoch)."""
        if self.epochs <= 1:
            return self.tau_end
        ratio = self.tau_end / self.tau_start
        return self.tau_start * ratio ** (epoch / (self.epochs - 1))


@dataclass
class SearchResult:
    """Outcome of a strategy search."""

    spec: FineTuneStrategySpec
    controller: StrategyController
    supernet: S2PGNNSupernet
    history: list[dict] = field(default_factory=list)
    seconds: float = 0.0


class S2PGNNSearcher:
    """Runs the bi-level optimization and derives the best strategy."""

    def __init__(
        self,
        encoder: GNNEncoder,
        dataset: MolecularDataset,
        space: FineTuneSpace = DEFAULT_SPACE,
        config: SearchConfig | None = None,
        batch_cache=None,
    ):
        self.config = config or SearchConfig()
        self.space = space
        self.dataset = dataset
        self.supernet = S2PGNNSupernet(
            encoder, space, num_tasks=dataset.num_tasks, seed=self.config.seed
        )
        self.controller = StrategyController(space, encoder.num_layers)
        # Shared evaluation-batch cache (see repro.serve.cache).  Passing a
        # run-wide registry lets the derivation phase, evolutionary fitness
        # and the fine-tune/serving phases collate each split exactly once.
        if batch_cache is None:
            from ..serve.cache import BatchCacheRegistry

            batch_cache = BatchCacheRegistry(capacity=self._EVAL_LOADER_CACHE_SIZE)
        self.batch_cache = batch_cache

    def search(self) -> SearchResult:
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, 9))
        train_graphs, valid_graphs, _ = self.dataset.split()
        info = self.dataset.info

        theta_opt = Adam(self.supernet.theta_parameters(), lr=cfg.theta_lr)
        alpha_opt = Adam(self.controller.parameters(), lr=cfg.alpha_lr)
        # cache_batches collates each split once and reshuffles the batch
        # *order* per epoch — the search sweeps the same splits every epoch,
        # so re-collating identical data was pure overhead.
        train_loader = DataLoader(
            train_graphs, batch_size=cfg.batch_size, shuffle=True,
            rng=np.random.default_rng((cfg.seed, 10)), cache=cfg.cache_batches,
        )
        valid_loader = DataLoader(
            valid_graphs, batch_size=cfg.batch_size, shuffle=True,
            rng=np.random.default_rng((cfg.seed, 11)), cache=cfg.cache_batches,
        )

        history: list[dict] = []
        start = time.perf_counter()  # repro: disable=REP002 (result timing metadata)
        for epoch in range(cfg.epochs):
            tau = cfg.temperature(epoch)
            if cfg.adaptive_mix_threshold:
                self.supernet.update_mix_threshold(
                    tau, cfg.tau_start, cfg.tau_end, cfg.mix_threshold_final)

            # --- theta step over the training split (Eq. 16) -------------
            train_loss, train_batches = 0.0, 0
            for batch in train_loader:
                strategy = self.controller.sample(tau, rng)
                if not cfg.weight_sharing:
                    # Ablation: re-initialize theta per sampled strategy —
                    # approximates training each strategy from scratch and
                    # shows why weight sharing is needed.
                    self._reinitialize_theta(cfg.seed + epoch)
                outputs = self.supernet.forward_full(batch, strategy)
                loss = supervised_loss(outputs["logits"], batch, info.task_type)
                theta_opt.zero_grad()
                self.controller.zero_grad()
                loss.backward()
                clip_grad_norm(self.supernet.theta_parameters(), cfg.grad_clip)
                theta_opt.step()
                train_loss += loss.item()
                train_batches += 1

            # --- alpha step over the validation split (Eq. 15, 18) -------
            alpha_loss, alpha_batches = 0.0, 0
            for batch in valid_loader:
                if alpha_batches >= cfg.alpha_batches_per_epoch:
                    break
                loss = None
                for _ in range(cfg.mc_samples):
                    strategy = self.controller.sample(tau, rng)
                    outputs = self.supernet.forward_full(batch, strategy)
                    sample_loss = supervised_loss(outputs["logits"], batch, info.task_type)
                    loss = sample_loss if loss is None else loss + sample_loss
                loss = loss * (1.0 / cfg.mc_samples)
                alpha_opt.zero_grad()
                self.supernet.zero_grad()
                loss.backward()
                clip_grad_norm(self.controller.parameters(), cfg.grad_clip)
                alpha_opt.step()
                alpha_loss += loss.item()
                alpha_batches += 1

            history.append({
                "epoch": epoch,
                "tau": tau,
                "mix_threshold": self.supernet.mix_threshold,
                "train_loss": train_loss / max(train_batches, 1),
                "alpha_loss": alpha_loss / max(alpha_batches, 1),
                "derived": self.controller.derive().describe(),
            })

        spec = self._derive_by_validation(valid_graphs, rng)
        return SearchResult(
            spec=spec,
            controller=self.controller,
            supernet=self.supernet,
            history=history,
            seconds=time.perf_counter() - start,  # repro: disable=REP002 (result timing metadata)
        )

    def _derive_by_validation(self, valid_graphs, rng) -> FineTuneStrategySpec:
        """Pick the final strategy by validation under shared weights.

        The argmax of alpha plus ``derive_candidates`` hard samples from
        ``p_alpha`` are scored with the (already trained) supernet weights —
        no retraining — and the best validation performer wins.  This is the
        weight-sharing evaluation the paper's Sec. III-C2 enables: candidate
        strategies are compared without training each to convergence.
        """
        cfg = self.config
        candidates = {self.controller.derive()}
        # The vanilla strategy is a member of the search space (Tab. III:
        # zero_aug / last / mean); seeding it guarantees the search degrades
        # gracefully to vanilla when nothing better is found.
        k = self.supernet.encoder.num_layers
        if ("zero_aug" in self.space.identity and "last" in self.space.fusion
                and "mean" in self.space.readout):
            candidates.add(FineTuneStrategySpec(
                identity=("zero_aug",) * k, fusion="last", readout="mean"))
        for _ in range(max(cfg.derive_candidates, 0)):
            sampled = self.controller.sample(cfg.tau_end, rng, hard=True)
            candidates.add(_onehots_to_spec(sampled, self.space))
        better = higher_is_better(self.dataset.info.metric)
        best_spec, best_score = None, -np.inf if better else np.inf
        # One cached loader scores every candidate: the validation split is
        # collated once, not once per spec.
        eval_loader = self._eval_loader(valid_graphs)
        for spec in sorted(candidates, key=lambda s: s.describe()):
            try:
                score = self.evaluate_spec(spec, valid_graphs, loader=eval_loader)
            except ValueError:  # degenerate split: keep controller argmax
                continue
            improved = score > best_score if better else score < best_score
            if improved:
                best_spec, best_score = spec, score
        return best_spec or self.controller.derive()

    def _reinitialize_theta(self, seed: int) -> None:
        """Re-initialize non-pretrained supernet weights (no-weight-sharing
        ablation): draw *fresh values from the layer initializers* — not a
        small perturbation — so each sampled strategy really starts its
        candidate operators from scratch.  Fresh draws are cached per seed
        (the ablation calls this once per batch with a per-epoch seed), so
        the candidate-bank construction cost is paid once per epoch.
        """
        cache = getattr(self, "_fresh_theta_cache", None)
        if cache is None:
            cache = self._fresh_theta_cache = {}
        if seed not in cache:
            fresh = S2PGNNSupernet(self.supernet.encoder, self.space,
                                   self.supernet.num_tasks, seed=seed)
            cache.clear()  # past epochs' seeds are never looked up again
            cache[seed] = {
                name: p.data.copy() for name, p in fresh.named_parameters()
                if not name.startswith("encoder.")
            }
        fresh_values = cache[seed]
        for name, param in self.supernet.named_parameters():
            if not name.startswith("encoder."):
                param.data = fresh_values[name].copy()

    # Default capacity of an internally created batch-cache registry:
    # distinct graph sets whose collated batches are kept alive at once,
    # evicted LRU so scoring many transient lists cannot grow memory
    # unboundedly.
    _EVAL_LOADER_CACHE_SIZE = 4

    def _eval_loader(self, graphs) -> DataLoader:
        """Shared cached evaluation loader for a graph list.

        Delegates to the run-wide :class:`~repro.serve.cache.BatchCacheRegistry`
        (content-keyed, so fresh list objects over the same graphs — what
        ``dataset.split()`` returns on every call — still hit).  Repeated
        ``evaluate_spec`` calls on the same split (candidate derivation,
        evolutionary fitness, serving) collate its batches exactly once.
        With ``cache_batches=False`` a fresh loader is returned every call
        — the escape hatch for callers that mutate graphs between scores.
        """
        config = self.config
        batch_size = config.eval_batch_size
        if not config.cache_batches:
            return DataLoader(graphs, batch_size=batch_size)
        return self.batch_cache.loader(graphs, batch_size)

    def evaluate_spec(self, spec: FineTuneStrategySpec, graphs,
                      loader: DataLoader | None = None) -> float:
        """Score a discrete spec using shared supernet weights (no retraining).

        One-hot mixing weights make every supernet dimension take the
        branch-skipping fast path, so this costs one DerivedModel-shaped
        forward per batch — not one forward per candidate operator.
        """
        one_hots = _spec_to_onehots(spec, self.space, self.supernet.encoder.num_layers)
        loader = loader if loader is not None else self._eval_loader(graphs)
        preds, trues = [], []
        was_training = self.supernet.training
        self.supernet.eval()
        with no_grad():
            for batch in loader:
                outputs = self.supernet.forward_full(batch, one_hots)
                preds.append(outputs["logits"].data.copy())
                trues.append(batch.y.copy())
        self.supernet.train(was_training)
        return multitask_score_or_fallback(
            np.concatenate(trues), np.concatenate(preds), self.dataset.info.metric
        )


def _onehots_to_spec(sampled, space: FineTuneSpace) -> FineTuneStrategySpec:
    """Hard SampledStrategy -> discrete spec (argmax per dimension)."""
    ids = tuple(
        space.identity[int(np.argmax(w.data))] for w in sampled.identity
    )
    fuse = space.fusion[int(np.argmax(sampled.fusion.data))]
    read = space.readout[int(np.argmax(sampled.readout.data))]
    return FineTuneStrategySpec(identity=ids, fusion=fuse, readout=read)


def _spec_to_onehots(spec: FineTuneStrategySpec, space: FineTuneSpace, num_layers: int):
    """Discrete spec -> one-hot SampledStrategy for supernet evaluation."""
    from ..nn import Tensor
    from .controller import SampledStrategy

    def onehot(options, choice):
        vec = np.zeros(len(options))
        vec[list(options).index(choice)] = 1.0
        return Tensor(vec)

    return SampledStrategy(
        identity=[onehot(space.identity, spec.identity[k]) for k in range(num_layers)],
        fusion=onehot(space.fusion, spec.fusion),
        readout=onehot(space.readout, spec.readout),
    )


def random_search(
    encoder_factory,
    dataset: MolecularDataset,
    space: FineTuneSpace = DEFAULT_SPACE,
    num_candidates: int = 5,
    finetune_epochs: int = 5,
    seed: int = 0,
) -> tuple[FineTuneStrategySpec, float, list]:
    """Brute-force baseline: train ``num_candidates`` random strategies to
    convergence and keep the best validation performer.

    This is the approach the paper argues is infeasible at scale (Remark 3:
    10,206 candidates x full training each); benchmarks use it to quantify
    the search-cost gap against the differentiable algorithm.
    """
    rng = np.random.default_rng((seed, 12))
    results = []
    better = higher_is_better(dataset.info.metric)
    best_spec, best_score = None, -np.inf if better else np.inf
    for i in range(num_candidates):
        spec = space.random_spec(encoder_factory().num_layers, rng)
        model = DerivedModel(encoder_factory(), spec, dataset.num_tasks, seed=seed + i)
        res = finetune(model, dataset, epochs=finetune_epochs, patience=finetune_epochs,
                       seed=seed + i)
        results.append((spec, res.valid_score))
        improved = res.valid_score > best_score if better else res.valid_score < best_score
        if improved:
            best_spec, best_score = spec, res.valid_score
    return best_spec, best_score, results
