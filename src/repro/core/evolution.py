"""Evolutionary strategy search — an alternative discrete search algorithm.

The paper chooses differentiable search (Gumbel-softmax + weight sharing)
over black-box alternatives for efficiency.  This module implements the
standard regularized-evolution baseline *on top of the same weight-sharing
supernet*, so the two algorithms are directly comparable at equal cost:
both first train the shared weights, then differ only in how they explore
the discrete space (gradient on alpha vs mutation + tournament selection).

Used by the search-algorithm ablation benchmarks and available to users who
prefer a gradient-free search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.datasets import MolecularDataset
from ..graph.loader import DataLoader
from ..metrics import higher_is_better
from ..nn import Adam, clip_grad_norm
from ..finetune.base import supervised_loss
from .search import SearchConfig, _spec_to_onehots
from .space import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec
from .supernet import S2PGNNSupernet

__all__ = ["EvolutionConfig", "EvolutionResult", "EvolutionarySearcher"]


@dataclass
class EvolutionConfig:
    """Hyper-parameters of regularized evolution over the supernet."""

    warmup_epochs: int = 4  # shared-weight training before evolution
    population_size: int = 8
    generations: int = 5
    tournament_size: int = 3
    mutation_rate: float = 0.3
    batch_size: int = 32
    theta_lr: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class EvolutionResult:
    """Outcome of a run.  ``spec``/``score`` are the **best ever
    evaluated** (warm-up population included) — regularized evolution ages
    individuals out of the population, so the best spec found is not
    necessarily a survivor of the final generation."""

    spec: FineTuneStrategySpec
    score: float
    history: list[dict] = field(default_factory=list)
    seconds: float = 0.0


class EvolutionarySearcher:
    """Regularized evolution with weight-sharing fitness evaluation."""

    def __init__(
        self,
        encoder,
        dataset: MolecularDataset,
        space: FineTuneSpace = DEFAULT_SPACE,
        config: EvolutionConfig | None = None,
        batch_cache=None,
    ):
        self.config = config or EvolutionConfig()
        self.space = space
        self.dataset = dataset
        self.supernet = S2PGNNSupernet(
            encoder, space, num_tasks=dataset.num_tasks, seed=self.config.seed
        )
        # Shared evaluation-batch cache (repro.serve.cache); passing the
        # run-wide registry shares the validation split's collated batches
        # with the searcher / fine-tune / serving phases of the same run.
        if batch_cache is None:
            from ..serve.cache import BatchCacheRegistry

            batch_cache = BatchCacheRegistry()
        self.batch_cache = batch_cache

    # ------------------------------------------------------------------
    def _train_shared_weights(self, train_graphs, rng) -> None:
        """Warm up theta with uniformly sampled strategies (one-shot NAS)."""
        cfg = self.config
        optimizer = Adam(self.supernet.theta_parameters(), lr=cfg.theta_lr)
        loader = DataLoader(train_graphs, batch_size=cfg.batch_size, shuffle=True,
                            rng=np.random.default_rng((cfg.seed, 21)), cache=True)
        k = self.supernet.encoder.num_layers
        for _ in range(cfg.warmup_epochs):
            for batch in loader:
                spec = self.space.random_spec(k, rng)
                weights = _spec_to_onehots(spec, self.space, k)
                outputs = self.supernet.forward_full(batch, weights)
                loss = supervised_loss(outputs["logits"], batch,
                                       self.dataset.info.task_type)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.supernet.theta_parameters(), cfg.grad_clip)
                optimizer.step()

    def _fitness(self, spec: FineTuneStrategySpec, valid_graphs) -> float:
        """Validation score of a spec under shared weights (no retraining)."""
        from .search import S2PGNNSearcher

        # Reuse the searcher's evaluation path on our supernet.  The shim
        # shares this searcher's batch-cache registry, so the validation
        # split is collated exactly once per search — and not at all when
        # an outer run already cached it.
        shim = getattr(self, "_eval_shim", None)
        if shim is None:
            shim = S2PGNNSearcher.__new__(S2PGNNSearcher)
            shim.supernet = self.supernet
            shim.space = self.space
            shim.dataset = self.dataset
            shim.config = SearchConfig(seed=self.config.seed)
            shim.batch_cache = self.batch_cache
            self._eval_shim = shim
        return S2PGNNSearcher.evaluate_spec(shim, spec, valid_graphs)

    def _mutate(self, spec: FineTuneStrategySpec, rng) -> FineTuneStrategySpec:
        """Mutate each dimension independently with ``mutation_rate``."""
        cfg = self.config
        identity = list(spec.identity)
        for k in range(len(identity)):
            if rng.random() < cfg.mutation_rate:
                identity[k] = self.space.identity[rng.integers(0, len(self.space.identity))]
        fusion = spec.fusion
        if rng.random() < cfg.mutation_rate:
            fusion = self.space.fusion[rng.integers(0, len(self.space.fusion))]
        readout = spec.readout
        if rng.random() < cfg.mutation_rate:
            readout = self.space.readout[rng.integers(0, len(self.space.readout))]
        return FineTuneStrategySpec(identity=tuple(identity), fusion=fusion,
                                    readout=readout)

    # ------------------------------------------------------------------
    def search(self) -> EvolutionResult:
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, 33))
        train_graphs, valid_graphs, _ = self.dataset.split()
        start = time.perf_counter()  # repro: disable=REP002 (result timing metadata)

        self._train_shared_weights(train_graphs, rng)

        k = self.supernet.encoder.num_layers
        better = higher_is_better(self.dataset.info.metric)
        sign = 1.0 if better else -1.0

        population = [self.space.random_spec(k, rng) for _ in range(cfg.population_size)]
        fitness = [sign * self._fitness(s, valid_graphs) for s in population]
        history: list[dict] = []

        # Best-ever tracking across *all* evaluations.  Regularized
        # evolution kills the oldest individual each generation, so the
        # best spec ever evaluated can age out of the population — an
        # argmax over the survivors at the end would silently lose it.
        best_ever = int(np.argmax(fitness))
        best_spec, best_fit = population[best_ever], fitness[best_ever]

        for generation in range(cfg.generations):
            # Tournament selection of a parent.
            contenders = rng.choice(len(population), size=cfg.tournament_size,
                                    replace=False)
            parent = population[max(contenders, key=lambda i: fitness[i])]
            child = self._mutate(parent, rng)
            child_fit = sign * self._fitness(child, valid_graphs)
            if child_fit > best_fit:
                best_spec, best_fit = child, child_fit
            # Regularized evolution: the oldest individual dies.
            population.pop(0)
            fitness.pop(0)
            population.append(child)
            fitness.append(child_fit)
            best = int(np.argmax(fitness))
            history.append({
                "generation": generation,
                "best_fitness": sign * fitness[best],
                "best": population[best].describe(),
                "best_ever_fitness": sign * best_fit,
                "best_ever": best_spec.describe(),
            })

        return EvolutionResult(
            spec=best_spec,
            score=sign * best_fit,
            history=history,
            seconds=time.perf_counter() - start,  # repro: disable=REP002 (result timing metadata)
        )
