"""High-level S2PGNN API: search a strategy, then fine-tune the derived model.

This is the entry point a downstream user calls (and what every benchmark
drives)::

    from repro import S2PGNNFineTuner
    from repro.graph import load_dataset
    from repro.pretrain import get_pretrained

    dataset = load_dataset("bbbp", size=400)
    tuner = S2PGNNFineTuner(lambda: get_pretrained("contextpred", "gin"))
    result = tuner.fit(dataset)
    print(tuner.best_spec_.describe(), result.test_score)

The two phases mirror the paper: the bi-level search (Sec. III-C) discovers
``Phi_ft*`` on the train/validation splits; the derived discrete model is
then fine-tuned from the *pre-trained* initialization and evaluated on the
held-out test split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..finetune.base import FineTuneResult, FineTuneStrategy, finetune
from ..graph.datasets import MolecularDataset
from .search import S2PGNNSearcher, SearchConfig, SearchResult
from .space import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec
from .supernet import DerivedModel

__all__ = ["S2PGNNFineTuner", "FineTuneConfig"]


@dataclass
class FineTuneConfig:
    """Hyper-parameters for the post-search fine-tuning phase."""

    epochs: int = 30
    batch_size: int = 32
    lr: float = 1e-3
    patience: int = 10


class S2PGNNFineTuner:
    """Search-to-fine-tune driver (scikit-learn-style fit/predict).

    Parameters
    ----------
    encoder_factory:
        Zero-argument callable returning a *fresh pre-trained* encoder; it is
        called once for the search supernet and once for the derived model,
        so both start from the same pre-trained weights.
    space:
        The fine-tuning search space; pass a degraded space for ablations.
    search_config / finetune_config:
        Phase hyper-parameters.
    strategy:
        Optional additional regularized fine-tuning strategy applied during
        the derived-model phase (the paper notes regularizers like GTOT are
        orthogonal and combinable with S2PGNN).
    batch_cache:
        A :class:`~repro.serve.cache.BatchCacheRegistry` shared by every
        phase this tuner runs: search derivation, fine-tune early-stop /
        test evaluation, and :meth:`predict` all draw their evaluation
        batches from it, so each split is collated and segment-planned
        once per run.  A private registry is created when omitted; pass
        one in to share with an :class:`~repro.serve.InferenceService`.
    """

    def __init__(
        self,
        encoder_factory,
        space: FineTuneSpace = DEFAULT_SPACE,
        search_config: SearchConfig | None = None,
        finetune_config: FineTuneConfig | None = None,
        strategy: FineTuneStrategy | None = None,
        seed: int = 0,
        batch_cache=None,
    ):
        self.encoder_factory = encoder_factory
        self.space = space
        self.search_config = search_config or SearchConfig(seed=seed)
        self.finetune_config = finetune_config or FineTuneConfig()
        self.strategy = strategy
        self.seed = seed
        if batch_cache is None:
            from ..serve.cache import BatchCacheRegistry

            batch_cache = BatchCacheRegistry()
        self.batch_cache = batch_cache

        self.best_spec_: FineTuneStrategySpec | None = None
        self.search_result_: SearchResult | None = None
        self.model_: DerivedModel | None = None
        self.result_: FineTuneResult | None = None

    # ------------------------------------------------------------------
    def search(self, dataset: MolecularDataset) -> FineTuneStrategySpec:
        """Phase 1: bi-level strategy search on the dataset's train/val splits."""
        searcher = S2PGNNSearcher(
            self.encoder_factory(), dataset, space=self.space,
            config=self.search_config, batch_cache=self.batch_cache,
        )
        self.search_result_ = searcher.search()
        self.best_spec_ = self.search_result_.spec
        return self.best_spec_

    def fit(self, dataset: MolecularDataset,
            spec: FineTuneStrategySpec | None = None) -> FineTuneResult:
        """Search (unless a spec is given) then fine-tune the derived model."""
        if spec is None:
            spec = self.search(dataset)
        else:
            self.best_spec_ = spec
        cfg = self.finetune_config
        self.model_ = DerivedModel(
            self.encoder_factory(), spec, dataset.num_tasks, seed=self.seed
        )
        if self.search_result_ is not None:
            # Weight sharing (Sec. III-C2): continue from searched weights.
            self.model_.load_from_supernet(self.search_result_.supernet)
        self.result_ = finetune(
            self.model_,
            dataset,
            strategy=self.strategy,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            patience=cfg.patience,
            seed=self.seed,
            batch_cache=self.batch_cache,
        )
        self.result_.strategy = "s2pgnn"
        return self.result_

    def predict(self, graphs, batch_size: int = 64) -> np.ndarray:
        """Predict logits/values for a list of graphs with the fitted model.

        Batches come from the tuner's shared
        :class:`~repro.serve.cache.BatchCacheRegistry`, so repeated
        predictions over the same graphs (a serving loop, or the test
        split the fine-tune phase already collated) never re-collate.
        Cached batches snapshot collation-time values — if you mutate
        graphs between calls, run ``self.batch_cache.invalidate(graphs)``
        first to re-collate.  The model's previous train/eval mode is
        restored afterwards — predicting mid-training no longer silently
        flips an eval-mode model back to training.
        """
        from ..serve.service import _eval_logits

        if self.model_ is None:
            raise RuntimeError("call fit() before predict()")
        return _eval_logits(self.model_,
                            self.batch_cache.loader(graphs, batch_size),
                            self.model_, self.model_.num_tasks)
