"""Weight-sharing supernet and derived model (paper Sec. III-C2, Eq. 12-14).

The supernet holds *every* candidate operator of every dimension.  A sampled
(relaxed) strategy mixes candidate outputs:

``Z_out = sum_i phi[i] * O_i(Z_in)``

so all strategies share one set of GNN weights ``theta`` — evaluating a new
strategy never retrains from scratch (the paper's answer to the
10,206-strategy search cost).

:class:`DerivedModel` instantiates one discrete strategy (post-search) with
the same candidate implementations, for final fine-tuning and inference.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..gnn.fusion import make_fusion
from ..gnn.identity import make_identity_aug
from ..gnn.readout import make_readout
from ..graph.graph import Batch
from ..nn import Linear, Module, ModuleList, Tensor
from .controller import SampledStrategy
from .space import FineTuneSpace, FineTuneStrategySpec

__all__ = ["S2PGNNSupernet", "DerivedModel", "MIX_SKIP_THRESHOLD",
           "MIX_SKIP_THRESHOLD_FINAL"]

#: Mixing weights at or below this magnitude are treated as zero: their
#: candidate operator is never invoked.  At 1e-8 the dropped term is far
#: below float64 round-off of the surviving terms, so fast-path outputs
#: match the full mixture to well under 1e-9.
MIX_SKIP_THRESHOLD = 1e-8

#: End point of the temperature-aware threshold schedule
#: (:meth:`S2PGNNSupernet.update_mix_threshold`).  Near the annealed
#: temperature the Gumbel-softmax samples are close to one-hot, so losing
#: branches carry weights far below this and skipping them changes mixed
#: outputs only at the 1e-5-relative level while saving their full forward
#: cost.
MIX_SKIP_THRESHOLD_FINAL = 1e-5


class S2PGNNSupernet(Module):
    """All-candidates model with mixed-operator forward (Eq. 12-14).

    Parameters
    ----------
    encoder:
        The pre-trained backbone (its structure and weights are the
        ``pre_trained`` conv candidate and are fine-tuned jointly).
    space:
        Candidate sets; degraded spaces (ablations) shrink the banks.
    num_tasks:
        Downstream prediction width.
    """

    def __init__(self, encoder: GNNEncoder, space: FineTuneSpace, num_tasks: int,
                 seed: int = 0, mix_threshold: float | None = MIX_SKIP_THRESHOLD):
        super().__init__()
        rng = np.random.default_rng((seed, 3))
        self.encoder = encoder
        self.space = space
        self.num_tasks = num_tasks
        # ``None`` disables branch skipping (every candidate always runs);
        # benchmarks use that to time the pre-fast-path mixed forward.
        self.mix_threshold = mix_threshold
        # Base of the temperature-aware schedule; ``update_mix_threshold``
        # interpolates from here, so direct assignments to ``mix_threshold``
        # (benchmarks, tests) never leak into the schedule.
        self._mix_threshold_base = mix_threshold
        k, d = encoder.num_layers, encoder.emb_dim

        self.identity_banks = ModuleList([
            ModuleList([make_identity_aug(name, d, rng) for name in space.identity])
            for _ in range(k)
        ])
        self.fusion_bank = ModuleList(
            [make_fusion(name, k, d, rng) for name in space.fusion]
        )
        self.readout_bank = ModuleList(
            [make_readout(name, d, rng) for name in space.readout]
        )
        self.head = Linear(d, num_tasks, rng)

    # ------------------------------------------------------------------
    def update_mix_threshold(self, tau: float, tau_start: float = 1.0,
                             tau_end: float = 0.1,
                             final: float | None = MIX_SKIP_THRESHOLD_FINAL) -> float | None:
        """Temperature-aware skip-threshold schedule (set-and-return).

        Interpolates geometrically from the construction-time base
        threshold (at ``tau >= tau_start``) to ``final`` (at
        ``tau <= tau_end``), tracking the annealing in log-temperature.
        Early epochs therefore mix exactly as with the fixed base threshold
        (exploration is unbiased), while late near-one-hot epochs skip
        losing branches more aggressively — their weights decay like
        ``exp(-Delta/tau)``, far below ``final`` by the time it is reached.

        No-ops (returns the current threshold) when skipping is disabled —
        ``mix_threshold=None`` at construction *or* assigned at runtime
        (the documented full-mixture escape hatch) — or ``final`` is None.
        """
        base = self._mix_threshold_base
        if base is None or final is None or self.mix_threshold is None:
            return self.mix_threshold
        if tau >= tau_start or tau_start <= tau_end:
            progress = 0.0
        elif tau <= tau_end:
            progress = 1.0
        else:
            progress = np.log(tau_start / tau) / np.log(tau_start / tau_end)
        self.mix_threshold = float(base * (final / base) ** progress)
        return self.mix_threshold

    @staticmethod
    def _mix(weights: Tensor, outputs: list, threshold: float | None = MIX_SKIP_THRESHOLD) -> Tensor:
        """``sum_i w[i] * O_i`` with real branch skipping.

        ``outputs`` entries are either Tensors or zero-argument callables
        (lazy branches).  A branch whose mixing weight has magnitude at or
        below ``threshold`` is *never invoked* — in the low-temperature
        regime (near one-hot sample) or under an exactly one-hot
        ``evaluate_spec`` call, each dimension therefore does O(1) operator
        work instead of O(|candidates|).  Pass ``threshold=None`` to force
        the full mixture (every branch computed).

        Skipping a sub-threshold branch also drops its (negligible)
        contribution to the controller gradient; at the default threshold
        the dropped terms are below float64 round-off of the kept ones.
        """
        w = weights.data
        if threshold is None:
            active = range(len(outputs))
        else:
            active = np.flatnonzero(np.abs(w) > threshold)
            if len(active) == 0:  # degenerate all-zero sample: keep old path
                active = range(len(outputs))
        mixed = None
        for i in active:
            out = outputs[i]
            if callable(out):
                out = out()
            if out is None:
                continue
            term = out * weights[i]
            mixed = term if mixed is None else mixed + term
        return mixed

    def forward_full(self, batch: Batch, strategy: SampledStrategy) -> dict:
        """Mixed-operator forward pass under a relaxed strategy sample.

        Candidates are handed to :meth:`_mix` as thunks so skipped branches
        pay zero compute, not just zero weight.
        """
        threshold = self.mix_threshold
        h = self.encoder.embed_nodes(batch)
        layers: list[Tensor] = []
        for k in range(self.encoder.num_layers):
            z = self.encoder.layer_step(h, batch, k)
            candidates = [
                (lambda aug=aug, h=h, z=z: aug(h, z))
                for aug in self.identity_banks[k]
            ]
            h = self._mix(strategy.identity[k], candidates, threshold)
            layers.append(h)

        fused = self._mix(
            strategy.fusion,
            [(lambda fusion=fusion: fusion(layers)) for fusion in self.fusion_bank],
            threshold,
        )
        node_plan = batch.node_plan()
        graph_repr = self._mix(
            strategy.readout,
            [
                (lambda readout=readout: readout(fused, node_plan, batch.num_graphs))
                for readout in self.readout_bank
            ],
            threshold,
        )
        logits = self.head(graph_repr)
        return {"layers": layers, "node": fused, "graph": graph_repr, "logits": logits}

    def forward(self, batch: Batch, strategy: SampledStrategy) -> Tensor:
        return self.forward_full(batch, strategy)["logits"]

    def theta_parameters(self) -> list:
        """Shared model weights theta (everything in the supernet; the
        controller's alpha lives outside this module)."""
        return [p for p in self.parameters() if p.requires_grad]


class DerivedModel(Module):
    """A discrete strategy instantiated as a standalone model.

    Mirrors :class:`~repro.gnn.prediction.GraphPredictionModel` (same
    ``forward_full`` contract) so every fine-tuning strategy and evaluator
    works on it unchanged.
    """

    def __init__(self, encoder: GNNEncoder, spec: FineTuneStrategySpec,
                 num_tasks: int, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng((seed, 4))
        k, d = encoder.num_layers, encoder.emb_dim
        if len(spec.identity) != k:
            raise ValueError(
                f"spec has {len(spec.identity)} identity choices for {k} layers"
            )
        self.encoder = encoder
        self.spec = spec
        self.num_tasks = num_tasks
        self.identity_augs = ModuleList(
            [make_identity_aug(name, d, rng) for name in spec.identity]
        )
        self.fusion = make_fusion(spec.fusion, k, d, rng)
        self.readout = make_readout(spec.readout, d, rng)
        self.head = Linear(d, num_tasks, rng)

    def forward_full(self, batch: Batch) -> dict:
        h = self.encoder.embed_nodes(batch)
        layers: list[Tensor] = []
        for k in range(self.encoder.num_layers):
            z = self.encoder.layer_step(h, batch, k)
            h = self.identity_augs[k](h, z)
            layers.append(h)
        fused = self.fusion(layers)
        graph_repr = self.readout(fused, batch.node_plan(), batch.num_graphs)
        logits = self.head(graph_repr)
        return {"layers": layers, "node": fused, "graph": graph_repr, "logits": logits}

    def forward(self, batch: Batch) -> Tensor:
        return self.forward_full(batch)["logits"]

    def load_from_supernet(self, supernet: "S2PGNNSupernet") -> "DerivedModel":
        """Warm-start from searched supernet weights (paper Sec. III-C2).

        Weight sharing means the search phase already trained (a) the
        backbone and (b) every candidate operator.  The derived model copies
        the encoder plus exactly the candidate modules its spec selected, so
        post-search fine-tuning continues from the searched weights instead
        of re-adapting from the raw pre-trained checkpoint — this also keeps
        the validation-based spec selection (made with shared weights)
        consistent with the model that is finally trained.
        """
        space = supernet.space
        self.encoder.load_state_dict(supernet.encoder.state_dict())
        for k, name in enumerate(self.spec.identity):
            source = supernet.identity_banks[k][space.identity.index(name)]
            self.identity_augs[k].load_state_dict(source.state_dict())
        self.fusion.load_state_dict(
            supernet.fusion_bank[space.fusion.index(self.spec.fusion)].state_dict()
        )
        self.readout.load_state_dict(
            supernet.readout_bank[space.readout.index(self.spec.readout)].state_dict()
        )
        if supernet.num_tasks == self.num_tasks:
            self.head.load_state_dict(supernet.head.state_dict())
        return self
