"""The GNN fine-tuning search space (paper Sec. III-B, Table III).

Four design dimensions form a strategy ``Phi_ft``:

* ``conv`` — backbone convolution, candidate set ``{pre_trained}``: the
  pre-trained structure/parameters are transferred as-is (1 choice, but kept
  explicit so the space complexity formula matches Remark 3).
* ``identity`` — per-layer identity augmentation, 3 candidates.
* ``fusion`` — multi-scale fusion across the K layers, 7 candidates.
* ``readout`` — graph-level readout, 6 candidates.

Total space size: ``|O_conv|^K * |O_id|^K * |O_fuse| * |O_read|`` — for the
paper's 5-layer GIN, ``1^5 * 3^5 * 7 * 6 = 10,206`` strategies (Remark 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from ..gnn.fusion import FUSION_CANDIDATES
from ..gnn.identity import IDENTITY_CANDIDATES
from ..gnn.readout import READOUT_CANDIDATES

__all__ = ["FineTuneSpace", "FineTuneStrategySpec", "DEFAULT_SPACE"]

CONV_CANDIDATES = ["pre_trained"]


@dataclass(frozen=True)
class FineTuneStrategySpec:
    """One concrete fine-tuning strategy sampled/derived from the space."""

    identity: tuple  # one candidate name per layer, length K
    fusion: str
    readout: str
    conv: str = "pre_trained"

    def describe(self) -> str:
        ids = ",".join(self.identity)
        return f"conv={self.conv} id=[{ids}] fuse={self.fusion} read={self.readout}"


@dataclass(frozen=True)
class FineTuneSpace:
    """Candidate sets per design dimension (paper Table III)."""

    conv: tuple = tuple(CONV_CANDIDATES)
    identity: tuple = tuple(IDENTITY_CANDIDATES)
    fusion: tuple = tuple(FUSION_CANDIDATES)
    readout: tuple = tuple(READOUT_CANDIDATES)

    def __post_init__(self):
        for name, candidates in [
            ("conv", self.conv), ("identity", self.identity),
            ("fusion", self.fusion), ("readout", self.readout),
        ]:
            if not candidates:
                raise ValueError(f"dimension {name!r} must have at least one candidate")

    def size(self, num_layers: int) -> int:
        """Space cardinality for a K-layer backbone (paper Remark 3)."""
        return (
            len(self.conv) ** num_layers
            * len(self.identity) ** num_layers
            * len(self.fusion)
            * len(self.readout)
        )

    def enumerate(self, num_layers: int):
        """Yield every strategy in the space (feasible only for tiny K)."""
        for ids in product(self.identity, repeat=num_layers):
            for fuse in self.fusion:
                for read in self.readout:
                    yield FineTuneStrategySpec(identity=ids, fusion=fuse, readout=read)

    def random_spec(self, num_layers: int, rng) -> FineTuneStrategySpec:
        """Uniformly sample one strategy (used by the random-search baseline)."""
        ids = tuple(self.identity[rng.integers(0, len(self.identity))]
                    for _ in range(num_layers))
        fuse = self.fusion[rng.integers(0, len(self.fusion))]
        read = self.readout[rng.integers(0, len(self.readout))]
        return FineTuneStrategySpec(identity=ids, fusion=fuse, readout=read)

    # ------------------------------------------------------------------
    # degraded spaces for the paper's ablation (Table IX)
    # ------------------------------------------------------------------
    def without_identity(self) -> "FineTuneSpace":
        """S2PGNN-\\id: disable identity augmentation (zero_aug only)."""
        return FineTuneSpace(self.conv, ("zero_aug",), self.fusion, self.readout)

    def without_fusion(self) -> "FineTuneSpace":
        """S2PGNN-\\fuse: last-layer representation only."""
        return FineTuneSpace(self.conv, self.identity, ("last",), self.readout)

    def without_readout(self) -> "FineTuneSpace":
        """S2PGNN-\\read: fixed mean pooling (Hu et al.'s default)."""
        return FineTuneSpace(self.conv, self.identity, self.fusion, ("mean",))


DEFAULT_SPACE = FineTuneSpace()
