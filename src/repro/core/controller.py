"""Fine-tuning strategy controller ``p_alpha(phi)`` (paper Sec. III-C1).

Dimension-specific controllers ``alpha = {alpha_id, alpha_fuse, alpha_read}``
parameterize categorical distributions over candidate operators.  Sampling
is made differentiable with the Gumbel-softmax re-parameterization (Eq. 17):

``g_alpha(U)[i] = softmax((log alpha[i] - log(-log U[i])) / tau)``

so the controller gradient (Eq. 18) is a plain backprop through the relaxed
sample.  As the temperature ``tau -> 0`` the relaxed sample approaches the
discrete one-hot, making the relaxation asymptotically unbiased.

The identity dimension is per-layer (K independent controllers); the conv
dimension has a single candidate (``pre_trained``) so it needs no controller.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Parameter, Tensor
from ..nn.functional import gumbel_softmax, softmax_np
from .space import FineTuneSpace, FineTuneStrategySpec

__all__ = ["StrategyController", "SampledStrategy"]


class SampledStrategy:
    """A relaxed strategy sample: per-dimension mixing-weight tensors."""

    def __init__(self, identity: list[Tensor], fusion: Tensor, readout: Tensor):
        self.identity = identity  # K tensors, each (|O_id|,)
        self.fusion = fusion  # (|O_fuse|,)
        self.readout = readout  # (|O_read|,)


class StrategyController(Module):
    """Learnable ``alpha`` with Gumbel-softmax sampling and argmax derivation."""

    def __init__(self, space: FineTuneSpace, num_layers: int):
        super().__init__()
        self.space = space
        self.num_layers = num_layers
        # log-alpha initialized to zero => uniform prior over candidates.
        self.alpha_identity = Parameter(np.zeros((num_layers, len(space.identity))))
        self.alpha_fusion = Parameter(np.zeros(len(space.fusion)))
        self.alpha_readout = Parameter(np.zeros(len(space.readout)))

    def sample(self, tau: float, rng: np.random.Generator,
               hard: bool = False) -> SampledStrategy:
        """Draw a relaxed strategy ``phi ~ p_alpha(phi)`` at temperature tau."""
        identity = [
            gumbel_softmax(self.alpha_identity[k], tau, rng, hard=hard)
            for k in range(self.num_layers)
        ]
        fusion = gumbel_softmax(self.alpha_fusion, tau, rng, hard=hard)
        readout = gumbel_softmax(self.alpha_readout, tau, rng, hard=hard)
        return SampledStrategy(identity, fusion, readout)

    def expectation(self) -> SampledStrategy:
        """Noise-free softmax weights (for deterministic evaluation)."""
        ident = [
            Tensor(softmax_np(self.alpha_identity.data[k]))
            for k in range(self.num_layers)
        ]
        return SampledStrategy(
            ident,
            Tensor(softmax_np(self.alpha_fusion.data)),
            Tensor(softmax_np(self.alpha_readout.data)),
        )

    def derive(self) -> FineTuneStrategySpec:
        """Most likely strategy ``phi* = argmax p_alpha`` per dimension."""
        ids = tuple(
            self.space.identity[int(np.argmax(self.alpha_identity.data[k]))]
            for k in range(self.num_layers)
        )
        fuse = self.space.fusion[int(np.argmax(self.alpha_fusion.data))]
        read = self.space.readout[int(np.argmax(self.alpha_readout.data))]
        return FineTuneStrategySpec(identity=ids, fusion=fuse, readout=read)

    def probabilities(self) -> dict:
        """Current candidate probabilities per dimension (for analysis)."""
        return {
            "identity": softmax_np(self.alpha_identity.data, axis=-1),
            "fusion": softmax_np(self.alpha_fusion.data),
            "readout": softmax_np(self.alpha_readout.data),
        }
