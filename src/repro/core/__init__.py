"""``repro.core`` — S2PGNN: the paper's search-to-fine-tune framework."""

from .api import FineTuneConfig, S2PGNNFineTuner
from .controller import SampledStrategy, StrategyController
from .evolution import EvolutionConfig, EvolutionResult, EvolutionarySearcher
from .search import S2PGNNSearcher, SearchConfig, SearchResult, random_search
from .space import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec
from .supernet import DerivedModel, S2PGNNSupernet

__all__ = [
    "S2PGNNFineTuner",
    "FineTuneConfig",
    "StrategyController",
    "SampledStrategy",
    "S2PGNNSearcher",
    "SearchConfig",
    "EvolutionarySearcher",
    "EvolutionConfig",
    "EvolutionResult",
    "SearchResult",
    "random_search",
    "FineTuneSpace",
    "FineTuneStrategySpec",
    "DEFAULT_SPACE",
    "S2PGNNSupernet",
    "DerivedModel",
]
