"""GraphLoG pre-training (Xu et al., 2021; paper Tab. V "CL").

Local-and-global structure learning: an instance-level contrastive term
(correlated views, as GraphCL) plus a *global semantic* term that clusters
graph representations around learnable hierarchical prototypes.

Substitution note: the original learns prototypes with an online EM
procedure; we use the standard self-labeling approximation — assign each
graph to its nearest prototype (detached argmax) and minimize cross-entropy
of the softmax similarity against that assignment, which pulls
representations toward prototype centroids the same way the M-step does.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Graph
from ..nn import MLP, Parameter, Tensor, init
from ..nn.functional import log_softmax
from .base import PretrainTask, mean_pool_graphs, normalize_rows, nt_xent_loss

__all__ = ["GraphLoGTask"]


class GraphLoGTask(PretrainTask):
    """Instance contrast + prototype (global semantic) clustering."""

    name = "graphlog"
    category = "CL"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, num_prototypes: int = 8,
                 temperature: float = 0.5, proto_weight: float = 0.5):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 41))
        d = encoder.emb_dim
        self.temperature = temperature
        self.proto_weight = proto_weight
        self.projection = MLP([d, d, d], rng)
        self.prototypes = Parameter(init.xavier_uniform((num_prototypes, d), rng))

    def _embed(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        from ..graph.transforms import random_augment
        from ..graph.graph import Batch

        augmented = [random_augment(g, rng) for g in graphs]
        batch = Batch(augmented)
        node_repr = self.encoder(batch)[-1]
        return self.projection(mean_pool_graphs(node_repr, batch))

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        z1 = self._embed(graphs, rng)
        z2 = self._embed(graphs, rng)
        instance = nt_xent_loss(z1, z2, self.temperature)

        # Global term: self-labeled prototype assignment.
        z = normalize_rows(z1)
        protos = normalize_rows(self.prototypes)
        sim = (z @ protos.T) * (1.0 / self.temperature)
        assignment = np.argmax(sim.data, axis=-1)
        logp = log_softmax(sim, axis=-1)
        proto_loss = -logp[(np.arange(z.shape[0]), assignment)].mean()
        return instance + proto_loss * self.proto_weight
