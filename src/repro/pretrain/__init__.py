"""``repro.pretrain`` — the 10 SSL pre-training methods of paper Tab. V."""

from .attrmasking import AttrMaskingTask, mask_batch_atoms
from .base import PretrainTask, mean_pool_graphs, normalize_rows, nt_xent_loss, pretrain
from .contextpred import ContextPredTask
from .edgepred import EdgePredTask
from .graphcl import GraphCLTask
from .graphlog import GraphLoGTask
from .graphmae import GraphMAETask
from .infomax import InfomaxTask
from .mgssl import MGSSLTask
from .molebert import MoleBERTTask
from .simgrace import SimGRACETask
from .zoo import PRETRAIN_CATEGORIES, PRETRAIN_METHODS, default_zoo_dir, get_pretrained

__all__ = [
    "PretrainTask",
    "pretrain",
    "nt_xent_loss",
    "normalize_rows",
    "mean_pool_graphs",
    "mask_batch_atoms",
    "InfomaxTask",
    "EdgePredTask",
    "ContextPredTask",
    "AttrMaskingTask",
    "GraphCLTask",
    "GraphLoGTask",
    "MGSSLTask",
    "SimGRACETask",
    "GraphMAETask",
    "MoleBERTTask",
    "PRETRAIN_METHODS",
    "PRETRAIN_CATEGORIES",
    "get_pretrained",
    "default_zoo_dir",
]
