"""Pre-training task protocol and the SSL trainer loop (paper Eq. 6).

A :class:`PretrainTask` owns a :class:`~repro.gnn.encoder.GNNEncoder` plus
any auxiliary heads its SSL objective needs, and exposes
``loss(graphs, rng) -> Tensor``.  :func:`pretrain` optimizes the task over
an unlabeled corpus and returns the encoder (auxiliary heads are dropped at
transfer time, as in all the cited pre-training papers).
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import Adam, Module, Tensor, clip_grad_norm
from ..nn.functional import l2_norm_squared

__all__ = ["PretrainTask", "pretrain", "nt_xent_loss", "normalize_rows", "mean_pool_graphs"]


class PretrainTask(Module):
    """Base class for SSL pre-training objectives.

    Subclasses set ``name`` and ``category`` (the SSL-strategy label used in
    paper Tab. V: AE / AM / MCM / CP / CL) and implement :meth:`loss`.
    """

    name: str = "base"
    category: str = "?"

    def __init__(self, encoder: GNNEncoder):
        super().__init__()
        self.encoder = encoder

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        raise NotImplementedError

    def encode_graphs(self, graphs: list[Graph]) -> tuple[Tensor, Batch]:
        """Convenience: final-layer node representations of a fresh batch."""
        batch = Batch(graphs)
        return self.encoder(batch)[-1], batch


def pretrain(
    task: PretrainTask,
    corpus: list[Graph],
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
    grad_clip: float = 5.0,
    verbose: bool = False,
) -> list[float]:
    """Optimize an SSL task over an unlabeled corpus; returns epoch losses."""
    rng = np.random.default_rng((seed, 77))
    optimizer = Adam(task.parameters(), lr=lr)
    history: list[float] = []
    order = np.arange(len(corpus))
    task.train()
    for epoch in range(epochs):
        rng.shuffle(order)
        total, batches = 0.0, 0
        for start in range(0, len(order), batch_size):
            graphs = [corpus[i] for i in order[start:start + batch_size]]
            if len(graphs) < 2:
                continue  # contrastive objectives need >= 2 graphs
            loss = task.loss(graphs, rng)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(task.parameters(), grad_clip)
            optimizer.step()
            total += loss.item()
            batches += 1
        epoch_loss = total / max(batches, 1)
        history.append(epoch_loss)
        if verbose:
            print(f"[{task.name}] epoch {epoch + 1}/{epochs} loss={epoch_loss:.4f}")
    return history


# ----------------------------------------------------------------------
# shared SSL building blocks
# ----------------------------------------------------------------------
def normalize_rows(z: Tensor, eps: float = 1e-9) -> Tensor:
    """L2-normalize each row (for cosine-similarity contrastive losses)."""
    norm = ((z * z).sum(axis=-1, keepdims=True) + eps).sqrt()
    return z / norm


def nt_xent_loss(z1: Tensor, z2: Tensor, temperature: float = 0.5) -> Tensor:
    """Normalized-temperature cross entropy (SimCLR / GraphCL objective).

    Positives are aligned rows of ``z1`` / ``z2``; all other rows in the
    2B-sample batch act as negatives.  Symmetrized over the two views.
    """
    from ..nn import concatenate
    from ..nn.functional import log_softmax

    b = z1.shape[0]
    z = normalize_rows(concatenate([z1, z2], axis=0))  # (2B, d)
    sim = (z @ z.T) * (1.0 / temperature)
    # Mask self-similarity with a large negative constant.
    mask = np.eye(2 * b) * -1e9
    sim = sim + Tensor(mask)
    logp = log_softmax(sim, axis=-1)
    targets = np.concatenate([np.arange(b, 2 * b), np.arange(0, b)])
    picked = logp[(np.arange(2 * b), targets)]
    return -picked.mean()


def mean_pool_graphs(node_repr: Tensor, batch: Batch) -> Tensor:
    """Mean-pool node representations per graph (via the cached node plan)."""
    from ..nn import segment_mean

    return segment_mean(node_repr, batch.node_plan(), batch.num_graphs)
