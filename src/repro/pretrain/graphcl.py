"""GraphCL pre-training (You et al., 2020; paper Tab. V "CL").

Same-scale contrastive learning with data augmentation: two stochastic
augmentations of each graph form a positive pair; graph representations go
through a projection head and are contrasted with NT-Xent against all other
graphs in the batch.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..graph.transforms import random_augment
from ..nn import MLP, Tensor
from .base import PretrainTask, mean_pool_graphs, nt_xent_loss

__all__ = ["GraphCLTask"]


class GraphCLTask(PretrainTask):
    """Augmentation-based same-scale graph contrastive learning."""

    name = "graphcl"
    category = "CL"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, temperature: float = 0.5):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 31))
        d = encoder.emb_dim
        self.temperature = temperature
        self.projection = MLP([d, d, d], rng)

    def _view(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        augmented = [random_augment(g, rng) for g in graphs]
        batch = Batch(augmented)
        node_repr = self.encoder(batch)[-1]
        return self.projection(mean_pool_graphs(node_repr, batch))

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        z1 = self._view(graphs, rng)
        z2 = self._view(graphs, rng)
        return nt_xent_loss(z1, z2, self.temperature)
