"""MGSSL pre-training (Zhang et al., 2021; paper Tab. V "AM").

Motif-based autoregressive modeling: the original fragments molecules into
motifs (via BRICS) and generates the motif tree autoregressively.

Substitution note: without RDKit/BRICS, we keep the *autoregressive
component prediction* structure on atoms — nodes are ordered by BFS from a
random root, and each node's atom type is predicted from the mean
representation of nodes earlier in the ordering (its generated prefix).
This preserves the AM objective family (paper Sec. IV-B:
``L = -sum_i log p(C_i | C_<i)``) with atoms as components; ring/motif
structure still shapes the prefix representations through message passing.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..graph.molecule import NUM_ATOM_TYPES
from ..nn import Linear, Tensor, concatenate, gather, segment_mean
from ..nn.functional import cross_entropy
from .base import PretrainTask

__all__ = ["MGSSLTask"]


class MGSSLTask(PretrainTask):
    """Autoregressive atom-type prediction along a BFS generation order."""

    name = "mgssl"
    category = "AM"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, max_prefix_targets: int = 8):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 51))
        self.max_prefix_targets = max_prefix_targets
        self.decoder = Linear(encoder.emb_dim, NUM_ATOM_TYPES, rng)

    @staticmethod
    def _bfs_order(graph: Graph, root: int) -> list[int]:
        from collections import deque

        adj: list[list[int]] = [[] for _ in range(graph.num_nodes)]
        for u, v in graph.edge_index.T:
            adj[u].append(int(v))
        seen = {root}
        order = [root]
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for m in adj[node]:
                if m not in seen:
                    seen.add(m)
                    order.append(m)
                    queue.append(m)
        # Disconnected leftovers (shouldn't occur for our molecules) appended.
        for node in range(graph.num_nodes):
            if node not in seen:
                order.append(node)
        return order

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        node_repr = self.encoder(batch)[-1]

        prefix_nodes: list[int] = []
        prefix_owner: list[int] = []
        target_atoms: list[int] = []
        sample = 0
        for gi, graph in enumerate(graphs):
            offset = batch.node_offsets[gi]
            order = self._bfs_order(graph, int(rng.integers(0, graph.num_nodes)))
            positions = range(1, len(order))
            if len(order) - 1 > self.max_prefix_targets:
                positions = sorted(
                    rng.choice(
                        np.arange(1, len(order)), size=self.max_prefix_targets, replace=False
                    ).tolist()
                )
            for pos in positions:
                for j in order[:pos]:
                    prefix_nodes.append(offset + j)
                    prefix_owner.append(sample)
                target_atoms.append(int(graph.x[order[pos], 0]))
                sample += 1
        if sample == 0:
            return Tensor(0.0)
        prefix_repr = segment_mean(
            gather(node_repr, np.array(prefix_nodes)), np.array(prefix_owner), sample
        )
        logits = self.decoder(prefix_repr)
        return cross_entropy(logits, np.array(target_atoms))
