"""Pre-trained model zoo: build-on-demand, cached-on-disk checkpoints.

The paper fine-tunes *officially released* pre-trained models (Sec. IV-A4).
Offline, we instead pre-train each method on the synthetic ZINC-like corpus
and cache the encoder weights, content-addressed by the full configuration,
so every experiment that asks for ``(method, backbone, layers, dim)`` gets
the identical checkpoint — mirroring how released checkpoints behave.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.datasets import zinc_corpus
from ..nn.serialization import load_checkpoint, save_checkpoint
from .attrmasking import AttrMaskingTask
from .base import PretrainTask, pretrain
from .contextpred import ContextPredTask
from .edgepred import EdgePredTask
from .graphcl import GraphCLTask
from .graphlog import GraphLoGTask
from .graphmae import GraphMAETask
from .infomax import InfomaxTask
from .mgssl import MGSSLTask
from .molebert import MoleBERTTask
from .simgrace import SimGRACETask

__all__ = ["PRETRAIN_METHODS", "PRETRAIN_CATEGORIES", "get_pretrained", "default_zoo_dir"]

PRETRAIN_METHODS: dict[str, type[PretrainTask]] = {
    "infomax": InfomaxTask,
    "edgepred": EdgePredTask,
    "contextpred": ContextPredTask,
    "attrmasking": AttrMaskingTask,
    "graphcl": GraphCLTask,
    "graphlog": GraphLoGTask,
    "mgssl": MGSSLTask,
    "simgrace": SimGRACETask,
    "graphmae": GraphMAETask,
    "molebert": MoleBERTTask,
}

PRETRAIN_CATEGORIES = {name: cls.category for name, cls in PRETRAIN_METHODS.items()}


def default_zoo_dir() -> str:
    """Checkpoint cache directory (override with REPRO_ZOO_DIR)."""
    return os.environ.get(
        "REPRO_ZOO_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro_zoo")
    )


def _config_key(config: dict) -> str:
    blob = json.dumps(config, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def get_pretrained(
    method: str,
    backbone: str = "gin",
    num_layers: int = 5,
    emb_dim: int = 64,
    corpus_size: int = 300,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
    cache_dir: str | None = None,
    verbose: bool = False,
) -> GNNEncoder:
    """Return a pre-trained encoder for ``method`` (cached on disk).

    The MGSSL corpus is smaller than the others' (the paper uses ZINC15-250K
    for MGSSL vs. 2M otherwise); we scale the same way (half the corpus).
    """
    method = method.lower()
    if method not in PRETRAIN_METHODS:
        raise KeyError(f"unknown pre-training method {method!r}; known: {list(PRETRAIN_METHODS)}")

    effective_corpus = corpus_size // 2 if method == "mgssl" else corpus_size
    config = {
        "method": method,
        "backbone": backbone,
        "num_layers": num_layers,
        "emb_dim": emb_dim,
        "corpus_size": effective_corpus,
        "epochs": epochs,
        "batch_size": batch_size,
        "lr": lr,
        "seed": seed,
    }
    cache_dir = cache_dir or default_zoo_dir()
    path = os.path.join(cache_dir, f"{method}_{backbone}_{_config_key(config)}.npz")

    encoder = GNNEncoder(
        conv_type=backbone, num_layers=num_layers, emb_dim=emb_dim, seed=seed
    )
    if os.path.exists(path):
        state, _ = load_checkpoint(path)
        encoder.load_state_dict(state)
        return encoder

    corpus = zinc_corpus(size=effective_corpus, seed=101 + seed)
    task = PRETRAIN_METHODS[method](encoder, seed=seed)
    history = pretrain(
        task, corpus, epochs=epochs, batch_size=batch_size, lr=lr, seed=seed,
        verbose=verbose,
    )
    save_checkpoint(encoder.state_dict(), {**config, "loss_history": history}, path)
    return encoder
