"""Attribute Masking pre-training (Hu et al., 2019; paper Tab. V "MCM").

Masked component modeling on node attributes: replace 15% of atom types
with a mask token, encode the corrupted graph, and predict the original
atom type of each masked node from its final representation with a linear
decoder and cross-entropy loss.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..graph.molecule import MASK_ATOM_ID, NUM_ATOM_TYPES
from ..nn import Linear, Tensor, gather
from ..nn.functional import cross_entropy
from .base import PretrainTask

__all__ = ["AttrMaskingTask", "mask_batch_atoms"]


def mask_batch_atoms(
    batch: Batch, rng: np.random.Generator, mask_rate: float = 0.15
) -> np.ndarray:
    """Mask atom types in-place on a Batch copy; returns masked node indices.

    Always masks at least one node so the loss is defined on tiny graphs.
    """
    n = batch.num_nodes
    count = max(1, int(round(n * mask_rate)))
    masked = rng.choice(n, size=min(count, n), replace=False)
    batch.x = batch.x.copy()
    batch.x[masked, 0] = MASK_ATOM_ID
    return masked


class AttrMaskingTask(PretrainTask):
    """Masked atom-type prediction."""

    name = "attrmasking"
    category = "MCM"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, mask_rate: float = 0.15):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 21))
        self.mask_rate = mask_rate
        self.decoder = Linear(encoder.emb_dim, NUM_ATOM_TYPES, rng)

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        targets = batch.x[:, 0].copy()
        masked = mask_batch_atoms(batch, rng, self.mask_rate)
        node_repr = self.encoder(batch)[-1]
        logits = self.decoder(gather(node_repr, masked))
        return cross_entropy(logits, targets[masked])
