"""Edge-prediction pre-training (Hamilton et al., 2017; paper Tab. V "AE").

Autoencoding of graph structure: predict whether a node pair is connected
from the dot product of its node representations, with uniform negative
sampling of non-edges (one negative per positive edge).
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import Tensor, gather
from ..nn.functional import binary_cross_entropy_with_logits
from .base import PretrainTask

__all__ = ["EdgePredTask"]


class EdgePredTask(PretrainTask):
    """Link reconstruction with negative sampling."""

    name = "edgepred"
    category = "AE"

    def __init__(self, encoder: GNNEncoder, seed: int = 0):
        super().__init__(encoder)

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        node_repr = self.encoder(batch)[-1]

        # Positives: one direction of each stored bond.
        fwd = batch.edge_index[:, batch.edge_index[0] < batch.edge_index[1]]
        if fwd.shape[1] == 0:
            fwd = batch.edge_index
        pos_src, pos_dst = fwd[0], fwd[1]

        # Negatives: random pairs *within the same graph* (so the task cannot
        # be solved by recognizing cross-graph pairs), rejection-free: we
        # accept a tiny false-negative rate as the original does.
        neg_src = pos_src.copy()
        offsets = batch.node_offsets
        graph_of = batch.batch[pos_src]
        sizes = np.diff(offsets)
        neg_dst = offsets[graph_of] + rng.integers(0, sizes[graph_of])

        src = np.concatenate([pos_src, neg_src])
        dst = np.concatenate([pos_dst, neg_dst])
        labels = np.concatenate([np.ones(len(pos_src)), np.zeros(len(neg_src))])

        logits = (gather(node_repr, src) * gather(node_repr, dst)).sum(axis=-1)
        return binary_cross_entropy_with_logits(logits, labels)
