"""SimGRACE pre-training (Xia et al., 2022; paper Tab. V "CL").

Contrastive learning *without data augmentation*: the second view comes from
a weight-perturbed copy of the encoder.  Each parameter is perturbed with
Gaussian noise scaled by its own standard deviation (the original's
"perturbation magnitude" eta), and the two views of the same batch are
contrasted with NT-Xent.  Gradients flow through the clean branch; the
perturbed branch acts as a stochastic target network.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import MLP, Tensor, no_grad
from .base import PretrainTask, mean_pool_graphs, nt_xent_loss

__all__ = ["SimGRACETask"]


class SimGRACETask(PretrainTask):
    """Weight-perturbation contrastive pre-training."""

    name = "simgrace"
    category = "CL"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, eta: float = 0.1,
                 temperature: float = 0.5):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 61))
        d = encoder.emb_dim
        self.eta = eta
        self.temperature = temperature
        self.projection = MLP([d, d, d], rng)

    def _perturbed_view(self, batch: Batch, rng: np.random.Generator) -> Tensor:
        """Encode with temporarily noise-perturbed encoder weights."""
        params = self.encoder.parameters()
        saved = [p.data.copy() for p in params]
        try:
            for p in params:
                std = float(p.data.std())
                if std > 0:
                    p.data = p.data + rng.normal(0.0, self.eta * std, size=p.data.shape)
            with no_grad():
                node_repr = self.encoder(batch)[-1]
                return self.projection(mean_pool_graphs(node_repr, batch)).detach()
        finally:
            for p, orig in zip(params, saved):
                p.data = orig

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        node_repr = self.encoder(batch)[-1]
        z1 = self.projection(mean_pool_graphs(node_repr, batch))
        z2 = self._perturbed_view(batch, rng)
        return nt_xent_loss(z1, z2, self.temperature)
