"""Deep Graph Infomax pre-training (Velickovic et al., 2019; paper Tab. V).

Cross-scale contrastive learning: maximize mutual information between node
(local) representations and a graph (global) summary through a bilinear
discriminator.  Negatives come from *corrupted* graphs obtained by shuffling
node features across the batch, as in the original DGI.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import Parameter, Tensor, gather, gather_segments, init
from ..nn.functional import binary_cross_entropy_with_logits
from .base import PretrainTask, mean_pool_graphs

__all__ = ["InfomaxTask"]


class InfomaxTask(PretrainTask):
    """DGI-style local-global contrastive pre-training."""

    name = "infomax"
    category = "CL"

    def __init__(self, encoder: GNNEncoder, seed: int = 0):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 11))
        d = encoder.emb_dim
        self.discriminator = Parameter(init.xavier_uniform((d, d), rng))

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        node_repr = self.encoder(batch)[-1]
        summary = mean_pool_graphs(node_repr, batch).sigmoid()  # (B, d)

        # Corruption: permute node rows, breaking node-graph correspondence.
        perm = rng.permutation(batch.num_nodes)
        corrupted = gather(node_repr, perm)

        node_summary = gather_segments(summary, batch.node_plan())  # (N, d)
        pos_logits = (node_repr @ self.discriminator * node_summary).sum(axis=-1)
        neg_logits = (corrupted @ self.discriminator * node_summary).sum(axis=-1)

        pos_loss = binary_cross_entropy_with_logits(pos_logits, np.ones(batch.num_nodes))
        neg_loss = binary_cross_entropy_with_logits(neg_logits, np.zeros(batch.num_nodes))
        return pos_loss + neg_loss
