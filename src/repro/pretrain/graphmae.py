"""GraphMAE pre-training (Hou et al., 2022; paper Tab. V "AE").

Masked graph autoencoding: mask node attributes, encode, *re-mask* the
masked positions in the latent space, and decode with a GNN decoder.  The
original regresses continuous features with a scaled cosine error (SCE);
our node features are categorical atom types, so the decoder predicts the
one-hot atom vector and the SCE loss is applied against the one-hot target
(gamma = 2), which keeps GraphMAE's distinctive loss geometry while fitting
discrete attributes.
"""

from __future__ import annotations

import numpy as np

from ..gnn.conv import make_conv
from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..graph.molecule import NUM_ATOM_TYPES
from ..nn import Linear, Parameter, Tensor, gather
from ..nn.functional import one_hot
from .attrmasking import mask_batch_atoms
from .base import PretrainTask, normalize_rows

__all__ = ["GraphMAETask"]


class GraphMAETask(PretrainTask):
    """Masked autoencoder with latent re-masking and SCE loss."""

    name = "graphmae"
    category = "AE"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, mask_rate: float = 0.25,
                 gamma: float = 2.0):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 71))
        d = encoder.emb_dim
        self.mask_rate = mask_rate
        self.gamma = gamma
        # Learnable [DMASK] token for latent re-masking.
        self.remask_token = Parameter(np.zeros(d))
        self.decoder_conv = make_conv(encoder.conv_type, d, rng)
        self.decoder_head = Linear(d, NUM_ATOM_TYPES, rng)

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        targets = batch.x[:, 0].copy()
        masked = mask_batch_atoms(batch, rng, self.mask_rate)
        node_repr = self.encoder(batch)[-1]

        # Latent re-masking: replace masked positions with the [DMASK] token.
        keep = np.ones((batch.num_nodes, 1))
        keep[masked] = 0.0
        latent = node_repr * Tensor(keep) + self.remask_token * Tensor(1.0 - keep)

        decoded = self.decoder_conv(latent, batch.edge_index, batch.edge_attr)
        logits = self.decoder_head(gather(decoded, masked))

        # Scaled cosine error against one-hot targets: (1 - cos(x, y))^gamma.
        target_vec = Tensor(one_hot(targets[masked], NUM_ATOM_TYPES))
        cos = (normalize_rows(logits) * target_vec).sum(axis=-1)
        return ((1.0 - cos) ** self.gamma).mean()
