"""Context Prediction pre-training (Hu et al., 2019; paper Tab. V "CP").

Predict whether a center-node representation and a *context* representation
belong to the same node.  The original uses a K-hop neighborhood subgraph
vs. a context ring between radii r1 < r2 encoded by an auxiliary GNN; we
keep exactly that structure with r1 = 1, r2 = 2: the main encoder embeds the
center node, an auxiliary (smaller) context encoder embeds the graph, and
the context representation is the mean over nodes at hop distance in
(1, 2] from the center.  Negatives pair centers with contexts of other
sampled centers in the batch.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import Tensor, concatenate, gather, segment_mean
from ..nn.functional import binary_cross_entropy_with_logits
from .base import PretrainTask

__all__ = ["ContextPredTask"]


class ContextPredTask(PretrainTask):
    """Subgraph-vs-context binary discrimination."""

    name = "contextpred"
    category = "CP"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, context_layers: int = 2):
        super().__init__(encoder)
        self.context_encoder = GNNEncoder(
            conv_type=encoder.conv_type,
            num_layers=context_layers,
            emb_dim=encoder.emb_dim,
            dropout=0.0,
            seed=(seed + 1) * 1000 + 13,
        )

    @staticmethod
    def _context_ring(batch: Batch, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nodes at hop distance exactly 2 from each center (its context ring).

        Returns flat (node_ids, ring_owner) arrays, where ring_owner indexes
        into ``centers``.
        """
        n = batch.num_nodes
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in batch.edge_index.T:
            adj[u].append(int(v))
        node_ids: list[int] = []
        owners: list[int] = []
        for i, center in enumerate(centers):
            one_hop = set(adj[center])
            two_hop = set()
            for m in one_hop:
                two_hop.update(adj[m])
            ring = two_hop - one_hop - {int(center)}
            members = ring if ring else (one_hop or {int(center)})
            for m in members:
                node_ids.append(int(m))
                owners.append(i)
        return np.array(node_ids, dtype=np.int64), np.array(owners, dtype=np.int64)

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        node_repr = self.encoder(batch)[-1]
        context_repr = self.context_encoder(batch)[-1]

        # One random center per graph.
        offsets = batch.node_offsets
        sizes = np.diff(offsets)
        centers = offsets[:-1] + rng.integers(0, sizes)

        ring_nodes, ring_owner = self._context_ring(batch, centers)
        ctx = segment_mean(gather(context_repr, ring_nodes), ring_owner, len(centers))
        center_emb = gather(node_repr, centers)

        # Positive pairs: aligned (center, own context); negative: roll by 1.
        shift = np.roll(np.arange(len(centers)), 1)
        pos_logits = (center_emb * ctx).sum(axis=-1)
        neg_logits = (center_emb * gather(ctx, shift)).sum(axis=-1)
        logits = concatenate([pos_logits, neg_logits], axis=0)
        labels = np.concatenate([np.ones(len(centers)), np.zeros(len(centers))])
        return binary_cross_entropy_with_logits(logits, labels)
