"""Mole-BERT pre-training (Xia et al., 2023; paper Tab. V "MCM").

Masked *Atom* Modeling with a context-aware tokenizer: plain attribute
masking suffers from the tiny atom vocabulary (mostly carbon); Mole-BERT
first tokenizes atoms into a larger codebook of context-dependent codes
with a VQ-VAE-style tokenizer, then pre-trains by predicting the *code* of
masked atoms.

Substitution note: the original trains the VQ tokenizer end-to-end; we use
a frozen randomly-initialized GNN tokenizer whose outputs are quantized
against a fixed random codebook (random-projection hashing).  This yields
stable, context-dependent discrete targets with the same cardinality-
expansion effect; only the tokenizer-learning refinement is omitted and the
triplet contrastive term is dropped (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch, Graph
from ..nn import Linear, Tensor, gather, no_grad
from ..nn.functional import cross_entropy
from .attrmasking import mask_batch_atoms
from .base import PretrainTask

__all__ = ["MoleBERTTask"]


class MoleBERTTask(PretrainTask):
    """Masked atom modeling over context-aware discrete codes."""

    name = "molebert"
    category = "MCM"

    def __init__(self, encoder: GNNEncoder, seed: int = 0, mask_rate: float = 0.15,
                 codebook_size: int = 32, tokenizer_layers: int = 2):
        super().__init__(encoder)
        rng = np.random.default_rng((seed, 81))
        d = encoder.emb_dim
        self.mask_rate = mask_rate
        self.codebook_size = codebook_size
        self.tokenizer = GNNEncoder(
            conv_type=encoder.conv_type,
            num_layers=tokenizer_layers,
            emb_dim=d,
            dropout=0.0,
            seed=(seed + 1) * 2000 + 3,
        )
        self.tokenizer.freeze()
        tok_rng = np.random.default_rng((seed, 82))
        self._codebook = tok_rng.normal(size=(codebook_size, d))
        self.decoder = Linear(d, codebook_size, rng)

    def _tokenize(self, batch: Batch) -> np.ndarray:
        """Context-aware code id per node (frozen tokenizer + nearest code)."""
        with no_grad():
            reps = self.tokenizer(batch)[-1].data
        # Cosine-nearest codebook row.
        reps = reps / (np.linalg.norm(reps, axis=1, keepdims=True) + 1e-9)
        codes = self._codebook / (
            np.linalg.norm(self._codebook, axis=1, keepdims=True) + 1e-9
        )
        return np.argmax(reps @ codes.T, axis=1)

    def loss(self, graphs: list[Graph], rng: np.random.Generator) -> Tensor:
        batch = Batch(graphs)
        code_targets = self._tokenize(batch)
        masked = mask_batch_atoms(batch, rng, self.mask_rate)
        node_repr = self.encoder(batch)[-1]
        logits = self.decoder(gather(node_repr, masked))
        return cross_entropy(logits, code_targets[masked])
