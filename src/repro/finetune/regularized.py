"""Regularized fine-tuning baselines from outside the GNN area (Tab. VII).

* **L2-SP** (Li et al., 2018): pull fine-tuned weights toward the pre-trained
  starting point ``theta0`` — ``L_reg = a/2 ||theta - theta0||^2 + b/2
  ||theta_head||^2``.
* **DELTA** (Li et al., 2019): behaviour regularization — keep fine-tuned
  *feature maps* close to those of the frozen pre-trained encoder (channel
  attention omitted; the unweighted variant is DELTA's "L2-FE" form).
* **BSS** (Chen et al., 2019): penalize the smallest singular values of the
  batch representation matrix to suppress untransferable spectral components
  (``L_reg = eta * sum_{i<=k} sigma_{-i}^2``).
* **StochNorm** (Kou et al., 2020): architecture-level regularization —
  replace every BatchNorm with stochastic normalization (see
  :class:`repro.nn.layers.StochNorm1d`).
"""

from __future__ import annotations

import copy

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch
from ..nn import Module, StochNorm1d, Tensor, no_grad
from ..nn.functional import l2_norm_squared
from .base import FineTuneStrategy

__all__ = ["L2SPFineTune", "DELTAFineTune", "BSSFineTune", "StochNormFineTune", "bss_penalty"]


class L2SPFineTune(FineTuneStrategy):
    """Weight-anchoring regularizer toward the pre-trained initialization."""

    name = "l2sp"

    def __init__(self, alpha: float = 1e-2, beta: float = 1e-3):
        self.alpha = alpha
        self.beta = beta
        self._anchor: dict[str, np.ndarray] = {}

    def prepare(self, model: Module) -> Module:
        # Snapshot the *pre-trained* part (encoder); the fresh head and any
        # new modules are regularized toward zero with weight beta.
        self._anchor = {
            name: param.data.copy()
            for name, param in model.named_parameters()
            if name.startswith("encoder.")
        }
        return model

    def regularizer(self, model: Module, batch: Batch, outputs: dict) -> Tensor:
        reg = None
        for name, param in model.named_parameters():
            if name in self._anchor:
                term = l2_norm_squared(param - Tensor(self._anchor[name])) * (self.alpha / 2)
            else:
                term = l2_norm_squared(param) * (self.beta / 2)
            reg = term if reg is None else reg + term
        return reg


class DELTAFineTune(FineTuneStrategy):
    """Feature-map alignment with the frozen pre-trained encoder."""

    name = "delta"

    def __init__(self, weight: float = 1e-2):
        self.weight = weight
        self._frozen: GNNEncoder | None = None

    def prepare(self, model: Module) -> Module:
        frozen = copy.deepcopy(model.encoder)
        frozen.freeze()
        frozen.eval()
        self._frozen = frozen
        return model

    def regularizer(self, model: Module, batch: Batch, outputs: dict) -> Tensor:
        with no_grad():
            reference = self._frozen(batch)[-1].detach()
        current = outputs["layers"][-1]
        diff = current - reference
        return (diff * diff).mean() * self.weight


def bss_penalty(representations: Tensor, k: int = 1) -> Tensor:
    """Batch Spectral Shrinkage: sum of the k smallest squared singular values.

    Gradient: d(sigma_i^2)/dX = 2 sigma_i u_i v_i^T, wired as a custom
    autograd node (numpy SVD runs outside the tape).
    """
    data = representations.data
    u, s, vt = np.linalg.svd(data, full_matrices=False)
    k = min(k, len(s))
    idx = np.argsort(s)[:k]
    value = float(np.sum(s[idx] ** 2))

    def backward(g):
        if not representations.requires_grad:
            return
        grad = np.zeros_like(data)
        for i in idx:
            grad += 2.0 * s[i] * np.outer(u[:, i], vt[i])
        representations._accumulate(g * grad)

    return Tensor._result(np.array(value), (representations,), "bss", backward)


class BSSFineTune(FineTuneStrategy):
    """Suppress small singular values of the batch graph-representation matrix."""

    name = "bss"

    def __init__(self, eta: float = 1e-3, k: int = 1):
        self.eta = eta
        self.k = k

    def regularizer(self, model: Module, batch: Batch, outputs: dict) -> Tensor:
        return bss_penalty(outputs["graph"], self.k) * self.eta


class StochNormFineTune(FineTuneStrategy):
    """Swap every BatchNorm in the encoder for StochNorm (same statistics)."""

    name = "stochnorm"

    def __init__(self, p: float = 0.5, seed: int = 0):
        self.p = p
        self.seed = seed

    def prepare(self, model: Module) -> Module:
        encoder = model.encoder
        for i, norm in enumerate(encoder.norms):
            stoch = StochNorm1d(
                norm.dim, p=self.p, momentum=norm.momentum, eps=norm.eps,
                rng=np.random.default_rng((self.seed, i)),
            )
            stoch.gamma.data = norm.gamma.data.copy()
            stoch.beta.data = norm.beta.data.copy()
            stoch.set_buffer("running_mean", norm.running_mean.copy())
            stoch.set_buffer("running_var", norm.running_var.copy())
            # Replace inside the ModuleList (registration by attribute name).
            setattr(encoder.norms, f"m{i}", stoch)
            encoder.norms._items[i] = stoch
        return model
