"""Adapter-Tuning (Houlsby et al., 2019) on GNN encoders (paper Tab. VIII).

Parameter-efficient fine-tuning: the pre-trained encoder is frozen and small
bottleneck adapters (``R^d -> R^m -> R^d``, m in {2, 4, 8}) are inserted
after every message-passing layer with a residual connection.  Only the
adapters and the fresh head train (~1-5% of the original parameters, as in
the paper's empirical setup).

The adapters are injected by wrapping the frozen encoder in
:class:`AdapterEncoder`, which exposes the same interface as
:class:`~repro.gnn.encoder.GNNEncoder` so the prediction model is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch
from ..nn import Bottleneck, Module, ModuleList, Tensor
from .base import FineTuneStrategy

__all__ = ["AdapterEncoder", "AdapterFineTune"]


class AdapterEncoder(Module):
    """A frozen encoder with residual bottleneck adapters after each layer."""

    def __init__(self, base: GNNEncoder, adapter_dim: int, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng((seed, 97))
        self.base = base
        self.adapters = ModuleList(
            [Bottleneck(base.emb_dim, adapter_dim, rng) for _ in range(base.num_layers)]
        )

    # Mirror the GNNEncoder interface used by GraphPredictionModel.
    @property
    def num_layers(self) -> int:
        return self.base.num_layers

    @property
    def emb_dim(self) -> int:
        return self.base.emb_dim

    @property
    def conv_type(self) -> str:
        return self.base.conv_type

    def forward(self, batch: Batch) -> list[Tensor]:
        h = self.base.embed_nodes(batch)
        layers: list[Tensor] = []
        for k in range(self.base.num_layers):
            h = self.base.layer_step(h, batch, k)
            h = h + self.adapters[k](h)  # residual adapter
            layers.append(h)
        return layers


class AdapterFineTune(FineTuneStrategy):
    """Freeze the encoder; insert and train bottleneck adapters."""

    def __init__(self, adapter_dim: int = 4, seed: int = 0):
        if adapter_dim < 1:
            raise ValueError("adapter_dim must be >= 1")
        self.adapter_dim = adapter_dim
        self.seed = seed
        self.name = f"adapter{adapter_dim}"

    def prepare(self, model: Module) -> Module:
        base = model.encoder
        base.freeze()
        model.encoder = AdapterEncoder(base, self.adapter_dim, seed=self.seed)
        return model
