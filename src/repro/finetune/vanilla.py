"""Vanilla fine-tuning (VFT) — the prevalent baseline (paper Sec. II-B).

All parameters of the pre-trained GNN plus the fresh prediction head are
trained with the plain supervised loss: ``L_ft == L_sup`` (paper Eq. 8).
"""

from __future__ import annotations

from .base import FineTuneStrategy

__all__ = ["VanillaFineTune"]


class VanillaFineTune(FineTuneStrategy):
    """Train everything, no regularization."""

    name = "vanilla"
