"""Partial-tuning baselines: Feature Extractor and Last-k Tuning (Tab. VIII).

* **Feature Extractor (FE)** (Razavian et al., 2014): freeze the whole
  pre-trained encoder; only the fresh prediction head (and readout/fusion
  parameters, which are also new) train.  Equivalent to Last-k with k = 0.
* **Last-k Tuning (LKT)** (Long et al., 2015): freeze the atom embeddings
  and the first ``K - k`` message-passing layers; tune only the last ``k``
  layers plus the head.  ``k = K`` recovers vanilla fine-tuning.
"""

from __future__ import annotations

from ..nn import Module
from .base import FineTuneStrategy

__all__ = ["FeatureExtractorFineTune", "LastKFineTune"]


class FeatureExtractorFineTune(FineTuneStrategy):
    """Frozen encoder; the pre-trained model is a pure feature extractor."""

    name = "feature_extractor"

    def prepare(self, model: Module) -> Module:
        model.encoder.freeze()
        return model


class LastKFineTune(FineTuneStrategy):
    """Tune only the last ``k`` encoder layers (earlier layers frozen)."""

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self.name = f"last{k}"

    def prepare(self, model: Module) -> Module:
        encoder = model.encoder
        encoder.atom_embedding.freeze()
        encoder.tag_embedding.freeze()
        cutoff = max(encoder.num_layers - self.k, 0)
        for i in range(encoder.num_layers):
            if i < cutoff:
                encoder.convs[i].freeze()
                encoder.norms[i].freeze()
        return model
