"""Fine-tuning protocol: strategy hooks + the downstream training loop.

Implements paper Eq. (7): ``theta* = argmin Phi_ft[L_ft(f(.); D_ft)]`` where
the strategy ``Phi_ft`` may (a) transform the model before training (freeze
layers, insert adapters, swap normalizers) and (b) add a regularization term
to the supervised loss (paper Eq. 9).

The trainer follows the paper's protocol (Sec. IV-A4): Adam @ 1e-3, batch
size 32, early stopping on the validation split, metric reported on the test
split at the best-validation epoch, averaged over seeds by the caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.datasets import DatasetInfo, MolecularDataset
from ..graph.graph import Batch, Graph
from ..graph.loader import DataLoader
from ..metrics import UndefinedMetricError, higher_is_better, multitask_score
from ..nn import Adam, Module, Tensor, clip_grad_norm, no_grad
from ..nn.functional import binary_cross_entropy_with_logits

__all__ = [
    "FineTuneStrategy",
    "FineTuneResult",
    "supervised_loss",
    "evaluate_model",
    "finetune",
]


class FineTuneStrategy:
    """Base strategy ``Phi_ft``: override :meth:`prepare` and/or :meth:`regularizer`."""

    name = "base"

    def prepare(self, model: Module) -> Module:
        """Transform the model before training (freezing, adapters, ...)."""
        return model

    def regularizer(self, model: Module, batch: Batch, outputs: dict) -> Tensor | None:
        """Extra loss term ``L_reg`` (paper Eq. 9); None means no term."""
        return None

    def trainable_parameters(self, model: Module) -> list:
        """Parameters the optimizer should update (default: all unfrozen)."""
        return [p for p in model.parameters() if p.requires_grad]


@dataclass
class FineTuneResult:
    """Outcome of one fine-tuning run."""

    test_score: float
    valid_score: float
    train_losses: list[float] = field(default_factory=list)
    valid_history: list[float] = field(default_factory=list)
    seconds_per_epoch: float = 0.0
    best_epoch: int = 0
    strategy: str = ""
    metric: str = ""


def supervised_loss(logits: Tensor, batch: Batch, task_type: str) -> Tensor:
    """Masked task loss: BCE for classification, MSE for regression.

    Missing (nan) labels are excluded via the batch's label mask, matching
    multi-task MoleculeNet training.
    """
    mask = batch.label_mask().astype(np.float64)
    labels = batch.labels_filled()
    if task_type == "classification":
        return binary_cross_entropy_with_logits(logits, labels, mask)
    if task_type == "regression":
        diff = logits - Tensor(labels)
        denom = max(float(mask.sum()), 1.0)
        return (diff * diff * Tensor(mask)).sum() * (1.0 / denom)
    raise ValueError(f"unknown task type {task_type!r}")


def evaluate_model(model: Module, graphs: list[Graph], info: DatasetInfo,
                   batch_size: int = 64, allow_fallback: bool = False,
                   batch_cache=None) -> float:
    """Score a model on a graph list with the dataset's metric.

    With ``allow_fallback=True`` (used for per-epoch validation on tiny
    splits), a classification split whose labels are single-class — where
    ROC-AUC is undefined — falls back to a monotone surrogate (mean label
    likelihood in [0, 1]) so early stopping still has a consistent,
    higher-is-better signal.

    ``batch_cache`` (a :class:`~repro.serve.cache.BatchCacheRegistry`)
    serves the graphs from shared pre-collated batches — per-epoch
    validation then collates the split once per run instead of once per
    epoch, and reuses batches the search phase already built.  The
    model's previous train/eval mode is restored on exit.
    """
    was_training = model.training
    model.eval()
    preds, trues = [], []
    if batch_cache is not None:
        loader = batch_cache.loader(graphs, batch_size)
    else:
        loader = DataLoader(graphs, batch_size=batch_size, shuffle=False)
    with no_grad():
        for batch in loader:
            logits = model(batch)
            preds.append(logits.data.copy())
            trues.append(batch.y.copy())
    model.train(was_training)
    y_pred = np.concatenate(preds, axis=0)
    y_true = np.concatenate(trues, axis=0)
    try:
        return multitask_score(y_true, y_pred, info.metric)
    except UndefinedMetricError:
        # Only "metric undefined on this data" falls back; caller errors
        # (unknown metric, shape mismatch) propagate.
        if not allow_fallback:
            raise
        from ..metrics import fallback_score

        return fallback_score(y_true, y_pred, info.metric)


def finetune(
    model: Module,
    dataset: MolecularDataset,
    strategy: FineTuneStrategy | None = None,
    epochs: int = 30,
    batch_size: int = 32,
    lr: float = 1e-3,
    patience: int = 10,
    seed: int = 0,
    grad_clip: float = 5.0,
    batch_cache=None,
) -> FineTuneResult:
    """Fine-tune ``model`` on a dataset's scaffold split under a strategy.

    Early stopping tracks the validation metric; the reported test score is
    taken at the best-validation epoch (weights are snapshotted), matching
    the paper's protocol.

    ``batch_cache`` routes the per-epoch validation and final test
    evaluations through a shared
    :class:`~repro.serve.cache.BatchCacheRegistry`, so those splits are
    collated (and their segment plans built) once per run — shared with
    the search phase that populated the registry.  Training batches keep
    their fresh per-epoch shuffle.
    """
    strategy = strategy or FineTuneStrategy()
    model = strategy.prepare(model)
    train_graphs, valid_graphs, test_graphs = dataset.split()
    info = dataset.info

    params = strategy.trainable_parameters(model)
    optimizer = Adam(params, lr=lr)
    loader = DataLoader(
        train_graphs, batch_size=batch_size, shuffle=True,
        rng=np.random.default_rng((seed, 5)),
    )

    better = higher_is_better(info.metric)
    best_valid = -np.inf if better else np.inf
    best_state = model.state_dict()
    best_epoch = 0
    train_losses: list[float] = []
    valid_history: list[float] = []
    epoch_seconds: list[float] = []
    stale = 0

    for epoch in range(epochs):
        start = time.perf_counter()
        total, batches = 0.0, 0
        for batch in loader:
            outputs = model.forward_full(batch)
            loss = supervised_loss(outputs["logits"], batch, info.task_type)
            reg = strategy.regularizer(model, batch, outputs)
            if reg is not None:
                loss = loss + reg
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(params, grad_clip)
            optimizer.step()
            total += loss.item()
            batches += 1
        epoch_seconds.append(time.perf_counter() - start)
        train_losses.append(total / max(batches, 1))

        valid_score = evaluate_model(model, valid_graphs, info, allow_fallback=True,
                                     batch_cache=batch_cache)
        valid_history.append(valid_score)
        improved = valid_score > best_valid if better else valid_score < best_valid
        if improved:
            best_valid = valid_score
            best_state = model.state_dict()
            best_epoch = epoch
            stale = 0
        else:
            stale += 1
            if stale >= patience:
                break

    model.load_state_dict(best_state)
    # The fallback only triggers on degenerate tiny test splits (undefined
    # ROC-AUC); bench-scale splits always use the primary metric.
    test_score = evaluate_model(model, test_graphs, info, allow_fallback=True,
                                batch_cache=batch_cache)
    return FineTuneResult(
        test_score=test_score,
        valid_score=best_valid,
        train_losses=train_losses,
        valid_history=valid_history,
        seconds_per_epoch=float(np.mean(epoch_seconds)) if epoch_seconds else 0.0,
        best_epoch=best_epoch,
        strategy=strategy.name,
        metric=info.metric,
    )
