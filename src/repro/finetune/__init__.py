"""``repro.finetune`` — fine-tuning strategies Phi_ft (paper Tab. II)."""

from .adapter import AdapterEncoder, AdapterFineTune
from .base import (
    FineTuneResult,
    FineTuneStrategy,
    evaluate_model,
    finetune,
    supervised_loss,
)
from .gtot import GTOTFineTune, sinkhorn_plan
from .partial import FeatureExtractorFineTune, LastKFineTune
from .regularized import (
    BSSFineTune,
    DELTAFineTune,
    L2SPFineTune,
    StochNormFineTune,
    bss_penalty,
)
from .vanilla import VanillaFineTune

STRATEGY_REGISTRY = {
    "vanilla": VanillaFineTune,
    "l2sp": L2SPFineTune,
    "delta": DELTAFineTune,
    "bss": BSSFineTune,
    "stochnorm": StochNormFineTune,
    "gtot": GTOTFineTune,
    "feature_extractor": FeatureExtractorFineTune,
}

__all__ = [
    "FineTuneStrategy",
    "FineTuneResult",
    "finetune",
    "evaluate_model",
    "supervised_loss",
    "VanillaFineTune",
    "L2SPFineTune",
    "DELTAFineTune",
    "BSSFineTune",
    "StochNormFineTune",
    "GTOTFineTune",
    "sinkhorn_plan",
    "bss_penalty",
    "FeatureExtractorFineTune",
    "LastKFineTune",
    "AdapterFineTune",
    "AdapterEncoder",
    "STRATEGY_REGISTRY",
]
