"""GTOT-Tuning (Zhang et al., 2022) — topology-aware OT regularizer.

The strongest GNN-specific baseline in paper Tab. VII.  GTOT aligns the
fine-tuned node representations with the frozen pre-trained ones via a
*masked* optimal-transport distance: transport is only allowed along graph
edges (plus self-loops), so the regularizer respects graph topology instead
of matching nodes independently.

Implementation: per graph, cost ``C_ij = 1 - cos(h_i, h0_j)`` restricted to
the adjacency mask; the transport plan ``T`` is computed by Sinkhorn
iterations on the *detached* cost (envelope theorem: at the optimum,
``d/dH <T, C(H)> = T . dC/dH`` with T constant), and the loss is
``<T, C(H)>`` which is differentiable through ``C``.
"""

from __future__ import annotations

import copy

import numpy as np

from ..gnn.encoder import GNNEncoder
from ..graph.graph import Batch
from ..nn import Module, Tensor, no_grad
from .base import FineTuneStrategy

__all__ = ["GTOTFineTune", "sinkhorn_plan"]


def sinkhorn_plan(
    cost: np.ndarray,
    mask: np.ndarray,
    epsilon: float = 0.1,
    iterations: int = 20,
) -> np.ndarray:
    """Entropic-regularized OT plan between uniform marginals under a mask.

    ``mask[i, j] = 1`` marks admissible transport; inadmissible entries get
    (effectively) infinite cost.  Returns a plan with row/column sums
    approximately uniform.
    """
    n, m = cost.shape
    gibbs = np.exp(-cost / epsilon) * mask
    gibbs = np.maximum(gibbs, 1e-30)
    u = np.ones(n) / n
    v = np.ones(m) / m
    row_marginal = np.ones(n) / n
    col_marginal = np.ones(m) / m
    for _ in range(iterations):
        u = row_marginal / np.maximum(gibbs @ v, 1e-30)
        v = col_marginal / np.maximum(gibbs.T @ u, 1e-30)
    return (u[:, None] * gibbs) * v[None, :]


class GTOTFineTune(FineTuneStrategy):
    """Masked-OT feature alignment with the pre-trained encoder."""

    name = "gtot"

    def __init__(self, weight: float = 1e-1, epsilon: float = 0.1, iterations: int = 20):
        self.weight = weight
        self.epsilon = epsilon
        self.iterations = iterations
        self._frozen: GNNEncoder | None = None

    def prepare(self, model: Module) -> Module:
        frozen = copy.deepcopy(model.encoder)
        frozen.freeze()
        frozen.eval()
        self._frozen = frozen
        return model

    def regularizer(self, model: Module, batch: Batch, outputs: dict) -> Tensor:
        with no_grad():
            reference = self._frozen(batch)[-1].detach()
        current = outputs["layers"][-1]

        # Normalize rows for the cosine cost.
        cur_norm = current / ((current * current).sum(axis=-1, keepdims=True) + 1e-9).sqrt()
        ref_data = reference.data
        ref_data = ref_data / (np.linalg.norm(ref_data, axis=1, keepdims=True) + 1e-9)

        total = None
        count = 0
        offsets = batch.node_offsets
        for g in range(batch.num_graphs):
            lo, hi = offsets[g], offsets[g + 1]
            size = hi - lo
            if size < 2:
                continue
            # Adjacency mask with self-loops (topology-restricted transport).
            mask = np.eye(size)
            edges = batch.edge_index[
                :, (batch.edge_index[0] >= lo) & (batch.edge_index[0] < hi)
            ] - lo
            mask[edges[0], edges[1]] = 1.0

            cur_g = cur_norm[lo:hi]
            cost = 1.0 - cur_g @ Tensor(ref_data[lo:hi].T)  # (size, size)
            plan = sinkhorn_plan(cost.data, mask, self.epsilon, self.iterations)
            term = (cost * Tensor(plan)).sum()
            total = term if total is None else total + term
            count += 1
        if total is None:
            return Tensor(0.0)
        return total * (self.weight / max(count, 1))
