"""Analysis tools for searched fine-tuning strategies.

The paper's qualitative claim is that good fine-tuning is *data-aware*:
different downstream datasets prefer different identity/fusion/readout
choices.  These helpers aggregate searched specs across runs/datasets so
that claim can be inspected quantitatively (candidate frequencies, per-
dimension agreement, and strategy distances).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .core.space import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec

__all__ = [
    "candidate_frequencies",
    "dimension_agreement",
    "spec_distance",
    "summarize_specs",
]


def candidate_frequencies(specs: list[FineTuneStrategySpec]) -> dict:
    """Relative frequency of every candidate per dimension.

    Returns ``{"identity": Counter, "fusion": Counter, "readout": Counter}``
    with frequencies normalized to 1 per dimension (identity pools all
    layers).
    """
    if not specs:
        raise ValueError("need at least one spec")
    identity: Counter = Counter()
    fusion: Counter = Counter()
    readout: Counter = Counter()
    for spec in specs:
        identity.update(spec.identity)
        fusion[spec.fusion] += 1
        readout[spec.readout] += 1
    return {
        "identity": _normalize(identity),
        "fusion": _normalize(fusion),
        "readout": _normalize(readout),
    }


def dimension_agreement(specs: list[FineTuneStrategySpec]) -> dict:
    """Fraction of spec pairs that agree, per dimension.

    1.0 means every run picked the same candidate (not data-aware);
    values near the uniform-chance rate mean strong dataset dependence.
    """
    if len(specs) < 2:
        raise ValueError("need at least two specs to measure agreement")
    pairs = [(a, b) for i, a in enumerate(specs) for b in specs[i + 1:]]
    fusion = np.mean([a.fusion == b.fusion for a, b in pairs])
    readout = np.mean([a.readout == b.readout for a, b in pairs])
    identity = np.mean([
        np.mean([x == y for x, y in zip(a.identity, b.identity)])
        for a, b in pairs
    ])
    return {"identity": float(identity), "fusion": float(fusion),
            "readout": float(readout)}


def spec_distance(a: FineTuneStrategySpec, b: FineTuneStrategySpec) -> float:
    """Normalized Hamming distance between two strategies in [0, 1]."""
    if len(a.identity) != len(b.identity):
        raise ValueError("specs come from different-depth backbones")
    slots = len(a.identity) + 2
    differences = sum(x != y for x, y in zip(a.identity, b.identity))
    differences += int(a.fusion != b.fusion) + int(a.readout != b.readout)
    return differences / slots


def summarize_specs(specs_by_dataset: dict, space: FineTuneSpace = DEFAULT_SPACE) -> str:
    """Human-readable summary of searched strategies per dataset."""
    lines = ["Searched strategies per dataset:"]
    for dataset, specs in specs_by_dataset.items():
        for spec in specs:
            lines.append(f"  {dataset:<10} {spec.describe()}")
    all_specs = [s for specs in specs_by_dataset.values() for s in specs]
    if len(all_specs) >= 2:
        agreement = dimension_agreement(all_specs)
        lines.append(
            "Cross-run agreement: "
            + ", ".join(f"{k}={v:.2f}" for k, v in agreement.items())
        )
        freq = candidate_frequencies(all_specs)
        top_fusion = max(freq["fusion"], key=freq["fusion"].get)
        top_readout = max(freq["readout"], key=freq["readout"].get)
        lines.append(f"Most selected: fusion={top_fusion}, readout={top_readout}")
    return "\n".join(lines)


def _normalize(counter: Counter) -> dict:
    total = sum(counter.values())
    return {key: count / total for key, count in counter.items()}
