"""Experiment runners: one function per paper table.

Every runner returns a plain dict structure (dataset -> numbers) that
:mod:`repro.experiments.tables` formats into the paper's row layout and the
benchmarks assert shape-properties on (who wins, direction of gaps).
"""

from __future__ import annotations

import time

import numpy as np

from ..core import FineTuneSpace, S2PGNNFineTuner, SearchConfig
from ..core.api import FineTuneConfig
from ..finetune import (
    AdapterFineTune,
    FeatureExtractorFineTune,
    LastKFineTune,
    STRATEGY_REGISTRY,
    finetune,
)
from ..gnn import GraphPredictionModel
from ..graph import load_dataset
from ..metrics import higher_is_better
from ..pretrain import get_pretrained
from .configs import BENCH_SCALE, Scale

__all__ = [
    "encoder_factory",
    "run_vanilla",
    "run_strategy",
    "run_s2pgnn",
    "average_gain",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table10",
    "run_table11",
]


def encoder_factory(method: str, backbone: str, scale: Scale, seed: int = 0):
    """Factory of fresh pre-trained encoders under a scale preset."""
    def factory():
        return get_pretrained(
            method,
            backbone=backbone,
            num_layers=scale.num_layers,
            emb_dim=scale.emb_dim,
            corpus_size=scale.corpus_size,
            epochs=scale.pretrain_epochs,
            batch_size=scale.batch_size,
            seed=seed,
        )
    return factory


def _load(dataset_name: str, scale: Scale):
    return load_dataset(dataset_name, **scale.dataset_kwargs(dataset_name))


def run_vanilla(method: str, dataset_name: str, backbone: str = "gin",
                scale: Scale = BENCH_SCALE) -> dict:
    """Vanilla fine-tuning (fusion=last, readout=mean) averaged over seeds."""
    return run_strategy("vanilla", method, dataset_name, backbone, scale)


def _make_strategy(strategy_name: str, seed: int, **kwargs):
    if strategy_name == "last_k":
        return LastKFineTune(kwargs["k"])
    if strategy_name == "adapter":
        return AdapterFineTune(kwargs["adapter_dim"], seed=seed)
    if strategy_name == "stochnorm":
        return STRATEGY_REGISTRY[strategy_name](seed=seed)
    return STRATEGY_REGISTRY[strategy_name]()


def run_strategy(strategy_name: str, method: str, dataset_name: str,
                 backbone: str = "gin", scale: Scale = BENCH_SCALE,
                 **strategy_kwargs) -> dict:
    """Fine-tune the vanilla architecture under a named strategy."""
    dataset = _load(dataset_name, scale)
    scores, secs = [], []
    for seed in scale.seeds:
        encoder = encoder_factory(method, backbone, scale, seed=0)()
        model = GraphPredictionModel(
            encoder, num_tasks=dataset.num_tasks, fusion="last", readout="mean",
            seed=seed,
        )
        strategy = _make_strategy(strategy_name, seed, **strategy_kwargs)
        res = finetune(
            model, dataset, strategy=strategy,
            epochs=scale.finetune_epochs, batch_size=scale.batch_size,
            patience=scale.patience, seed=seed,
        )
        scores.append(res.test_score)
        secs.append(res.seconds_per_epoch)
    return {
        "mean": float(np.mean(scores)),
        "std": float(np.std(scores)),
        "seconds_per_epoch": float(np.mean(secs)),
        "scores": scores,
        "metric": dataset.info.metric,
    }


def run_s2pgnn(method: str, dataset_name: str, backbone: str = "gin",
               scale: Scale = BENCH_SCALE, space: FineTuneSpace | None = None) -> dict:
    """Search + fine-tune with S2PGNN, averaged over seeds."""
    from ..core import DEFAULT_SPACE

    dataset = _load(dataset_name, scale)
    space = space or DEFAULT_SPACE
    scores, secs, specs = [], [], []
    for seed in scale.seeds:
        tuner = S2PGNNFineTuner(
            encoder_factory(method, backbone, scale, seed=0),
            space=space,
            search_config=SearchConfig(
                epochs=scale.search_epochs, batch_size=scale.batch_size, seed=seed
            ),
            finetune_config=FineTuneConfig(
                epochs=scale.finetune_epochs, batch_size=scale.batch_size,
                patience=scale.patience,
            ),
            seed=seed,
        )
        res = tuner.fit(dataset)
        scores.append(res.test_score)
        secs.append(res.seconds_per_epoch)
        specs.append(tuner.best_spec_)
    return {
        "mean": float(np.mean(scores)),
        "std": float(np.std(scores)),
        "seconds_per_epoch": float(np.mean(secs)),
        "scores": scores,
        "specs": [s.describe() for s in specs],
        "metric": dataset.info.metric,
    }


def average_gain(base: dict, improved: dict) -> float:
    """Paper's per-dataset relative gain, sign-adjusted by metric direction.

    For ROC-AUC (higher better): ``(improved - base) / base``.
    For RMSE (lower better): ``(base - improved) / base``.
    """
    if base["metric"] != improved["metric"]:
        raise ValueError("cannot compare runs with different metrics")
    if higher_is_better(base["metric"]):
        return (improved["mean"] - base["mean"]) / max(base["mean"], 1e-9)
    return (base["mean"] - improved["mean"]) / max(base["mean"], 1e-9)


# ----------------------------------------------------------------------
# table drivers
# ----------------------------------------------------------------------
def run_table6(methods: list[str], datasets: list[str],
               scale: Scale = BENCH_SCALE) -> dict:
    """Table VI: vanilla vs S2PGNN per pre-training method per dataset."""
    results: dict = {}
    for method in methods:
        rows = {}
        gains = []
        for name in datasets:
            base = run_vanilla(method, name, scale=scale)
            ours = run_s2pgnn(method, name, scale=scale)
            rows[name] = {"vanilla": base, "s2pgnn": ours}
            gains.append(average_gain(base, ours))
        rows["avg_gain"] = float(np.mean(gains))
        results[method] = rows
    return results


def run_table7(strategies: list[str], datasets: list[str],
               scale: Scale = BENCH_SCALE, method: str = "contextpred") -> dict:
    """Table VII: baseline fine-tuning strategies vs S2PGNN (ContextPred+GIN)."""
    results: dict = {name: {} for name in strategies}
    for name in strategies:
        for dataset_name in datasets:
            results[name][dataset_name] = run_strategy(name, method, dataset_name, scale=scale)
    results["s2pgnn"] = {
        dataset_name: run_s2pgnn(method, dataset_name, scale=scale)
        for dataset_name in datasets
    }
    for name, rows in results.items():
        rows["avg"] = float(np.mean([rows[d]["mean"] for d in datasets]))
    return results


def run_table8(configs: list[tuple], datasets: list[str],
               scale: Scale = BENCH_SCALE, method: str = "contextpred") -> dict:
    """Table VIII: FE / Last-k / Adapter strategies outside the search space."""
    results: dict = {}
    for strategy_name, kwargs in configs:
        label = strategy_name
        if kwargs:
            label += "_" + "_".join(f"{k}{v}" for k, v in kwargs.items())
        results[label] = {
            d: run_strategy(strategy_name, method, d, scale=scale, **kwargs)
            for d in datasets
        }
    results["s2pgnn"] = {
        d: run_s2pgnn(method, d, scale=scale) for d in datasets
    }
    for label, rows in results.items():
        rows["avg"] = float(np.mean([rows[d]["mean"] for d in datasets]))
    return results


def run_table9(datasets: list[str], scale: Scale = BENCH_SCALE,
               method: str = "contextpred") -> dict:
    """Table IX: S2PGNN vs degraded-space variants (-id / -fuse / -read)."""
    from ..core import DEFAULT_SPACE

    spaces = {
        "full": DEFAULT_SPACE,
        "no_id": DEFAULT_SPACE.without_identity(),
        "no_fuse": DEFAULT_SPACE.without_fusion(),
        "no_read": DEFAULT_SPACE.without_readout(),
    }
    results: dict = {}
    for variant, space in spaces.items():
        results[variant] = {
            d: run_s2pgnn(method, d, scale=scale, space=space) for d in datasets
        }
    # Average drop of each degraded variant relative to the full space.
    for variant in ["no_id", "no_fuse", "no_read"]:
        drops = [
            average_gain(results["full"][d], results[variant][d]) for d in datasets
        ]
        results[variant]["avg_drop"] = float(np.mean(drops))
    return results


def run_table10(backbones: list[str], datasets: list[str],
                scale: Scale = BENCH_SCALE, method: str = "contextpred") -> dict:
    """Table X: vanilla vs S2PGNN across GCN / SAGE / GAT backbones."""
    results: dict = {}
    for backbone in backbones:
        rows = {}
        gains = []
        for d in datasets:
            base = run_vanilla(method, d, backbone=backbone, scale=scale)
            ours = run_s2pgnn(method, d, backbone=backbone, scale=scale)
            rows[d] = {"vanilla": base, "s2pgnn": ours}
            gains.append(average_gain(base, ours))
        rows["avg_gain"] = float(np.mean(gains))
        results[backbone] = rows
    return results


def run_table11(strategies: list[str], datasets: list[str],
                scale: Scale = BENCH_SCALE, method: str = "contextpred") -> dict:
    """Table XI: seconds/epoch per strategy per dataset."""
    results: dict = {}
    for name in strategies:
        per_dataset = {}
        for d in datasets:
            if name == "s2pgnn":
                run = run_s2pgnn(method, d, scale=scale)
            else:
                run = run_strategy(name, method, d, scale=scale)
            per_dataset[d] = run["seconds_per_epoch"]
        per_dataset["avg"] = float(np.mean(list(per_dataset.values())))
        results[name] = per_dataset
    return results
