"""Experiment configurations: paper tables at CPU-feasible scale.

The paper runs a V100 with emb_dim 300, 5-layer GNNs, 2M-molecule
pre-training and 100-epoch fine-tuning over 10 seeds.  The configs below
preserve every *structural* choice (5 layers -> the 10,206-strategy space,
scaffold split 80/10/10, Adam @ 1e-3, batch 32) while shrinking sizes so a
full table regenerates in minutes on CPU.  ``Scale`` bundles the knobs; the
benchmarks use :data:`BENCH_SCALE`, tests use :data:`SMOKE_SCALE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Scale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "TABLE6_PRETRAIN_METHODS",
    "TABLE6_DATASETS",
    "TABLE7_STRATEGIES",
    "TABLE8_STRATEGIES",
    "TABLE9_VARIANTS",
    "TABLE10_BACKBONES",
    "TABLE11_STRATEGIES",
    "CLASSIFICATION_DATASETS",
    "REGRESSION_DATASETS",
]


@dataclass(frozen=True)
class Scale:
    """All size/effort knobs for one experiment tier."""

    dataset_size: int = 240
    toxcast_tasks: int = 24  # ToxCast's 617 heads scaled down, stays multi-task
    num_layers: int = 5  # keeps the 10,206-strategy space of Remark 3
    emb_dim: int = 32
    corpus_size: int = 160
    pretrain_epochs: int = 2
    search_epochs: int = 6
    finetune_epochs: int = 15
    patience: int = 15
    batch_size: int = 32
    seeds: tuple = (0, 1)

    def dataset_kwargs(self, name: str) -> dict:
        kwargs = {"size": self.dataset_size}
        if name == "toxcast":
            kwargs["num_tasks"] = self.toxcast_tasks
        return kwargs


SMOKE_SCALE = Scale(
    dataset_size=60,
    toxcast_tasks=6,
    num_layers=3,
    emb_dim=16,
    corpus_size=60,
    pretrain_epochs=1,
    search_epochs=2,
    finetune_epochs=3,
    patience=3,
    seeds=(0,),
)

BENCH_SCALE = Scale()


# ----------------------------------------------------------------------
# per-table workloads (paper Sec. IV)
# ----------------------------------------------------------------------
CLASSIFICATION_DATASETS = ["bbbp", "tox21", "toxcast", "sider", "clintox", "bace"]
REGRESSION_DATASETS = ["esol", "lipo"]

# Table VI: all 10 pre-training methods x all 8 datasets, GIN backbone.
TABLE6_PRETRAIN_METHODS = [
    "infomax", "edgepred", "contextpred", "attrmasking", "graphcl",
    "graphlog", "mgssl", "simgrace", "graphmae", "molebert",
]
TABLE6_DATASETS = CLASSIFICATION_DATASETS + REGRESSION_DATASETS

# Table VII: fine-tuning strategy baselines; ContextPred + GIN, 6 cls datasets.
TABLE7_STRATEGIES = ["vanilla", "l2sp", "delta", "bss", "stochnorm", "gtot"]

# Table VIII: strategies outside the search space.
TABLE8_STRATEGIES = [
    ("vanilla", {}),
    ("feature_extractor", {}),
    ("last_k", {"k": 3}),
    ("last_k", {"k": 2}),
    ("last_k", {"k": 1}),
    ("adapter", {"adapter_dim": 2}),
    ("adapter", {"adapter_dim": 4}),
    ("adapter", {"adapter_dim": 8}),
]

# Table IX: degraded search spaces (ablation).
TABLE9_VARIANTS = ["full", "no_id", "no_fuse", "no_read"]

# Table X: backbone study with ContextPred.
TABLE10_BACKBONES = ["gcn", "sage", "gat"]

# Table XI: per-epoch wall-clock of each strategy.
TABLE11_STRATEGIES = ["vanilla", "l2sp", "delta", "bss", "stochnorm", "gtot", "s2pgnn"]
