"""``repro.experiments`` — scaled-down reproduction harness for every table."""

from . import configs, runner, tables
from .configs import BENCH_SCALE, SMOKE_SCALE, Scale
from .runner import (
    average_gain,
    encoder_factory,
    run_s2pgnn,
    run_strategy,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
    run_table11,
    run_vanilla,
)

__all__ = [
    "configs",
    "runner",
    "tables",
    "Scale",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "encoder_factory",
    "run_vanilla",
    "run_strategy",
    "run_s2pgnn",
    "average_gain",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_table10",
    "run_table11",
]
