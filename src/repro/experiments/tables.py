"""Render experiment results in the paper's table layouts (plain text)."""

from __future__ import annotations

__all__ = [
    "format_table6",
    "format_table7",
    "format_table8",
    "format_table9",
    "format_table10",
    "format_table11",
]


def _fmt_cell(run: dict) -> str:
    scale = 100.0 if run["metric"] == "roc_auc" else 1.0
    return f"{run['mean'] * scale:.1f}±{run['std'] * scale:.1f}"


def _header(datasets: list[str], extra: str) -> str:
    return "  ".join(["{:<24}".format("row")] + [f"{d:>12}" for d in datasets] + [extra])


def format_table6(results: dict, datasets: list[str]) -> str:
    """Table VI: vanilla vs S2PGNN per pre-training method."""
    lines = ["Table VI — S2PGNN vs vanilla fine-tuning (GIN backbone)",
             _header(datasets, "   avg_gain")]
    for method, rows in results.items():
        base = [
            f"{_fmt_cell(rows[d]['vanilla']):>12}" for d in datasets
        ]
        ours = [
            f"{_fmt_cell(rows[d]['s2pgnn']):>12}" for d in datasets
        ]
        lines.append("  ".join([f"{method:<24}"] + base + [""]))
        lines.append("  ".join([f"{method + '+S2PGNN':<24}"] + ours +
                               [f"{rows['avg_gain'] * 100:+.1f}%"]))
    return "\n".join(lines)


def format_table7(results: dict, datasets: list[str]) -> str:
    lines = ["Table VII — fine-tuning strategy comparison (ContextPred + GIN)",
             _header(datasets, "        avg")]
    for name, rows in results.items():
        cells = [f"{_fmt_cell(rows[d]):>12}" for d in datasets]
        lines.append("  ".join([f"{name:<24}"] + cells + [f"{rows['avg'] * 100:.1f}"]))
    return "\n".join(lines)


def format_table8(results: dict, datasets: list[str]) -> str:
    lines = ["Table VIII — strategies outside the search space (ContextPred + GIN)",
             _header(datasets, "        avg")]
    for name, rows in results.items():
        cells = [f"{_fmt_cell(rows[d]):>12}" for d in datasets]
        lines.append("  ".join([f"{name:<24}"] + cells + [f"{rows['avg'] * 100:.1f}"]))
    return "\n".join(lines)


def format_table9(results: dict, datasets: list[str]) -> str:
    lines = ["Table IX — ablation on S2PGNN's design dimensions",
             _header(datasets, "   avg_drop")]
    for variant, rows in results.items():
        cells = [f"{_fmt_cell(rows[d]):>12}" for d in datasets]
        drop = rows.get("avg_drop")
        suffix = f"{drop * 100:+.1f}%" if drop is not None else "-"
        lines.append("  ".join([f"{variant:<24}"] + cells + [suffix]))
    return "\n".join(lines)


def format_table10(results: dict, datasets: list[str]) -> str:
    lines = ["Table X — other backbone architectures (ContextPred)",
             _header(datasets, "   avg_gain")]
    for backbone, rows in results.items():
        base = [f"{_fmt_cell(rows[d]['vanilla']):>12}" for d in datasets]
        ours = [f"{_fmt_cell(rows[d]['s2pgnn']):>12}" for d in datasets]
        label = f"contextpred({backbone})"[:24].ljust(24)
        lines.append("  ".join([label] + base + [""]))
        lines.append("  ".join([f"{backbone + '+S2PGNN':<24}"] + ours +
                               [f"{rows['avg_gain'] * 100:+.1f}%"]))
    return "\n".join(lines)


def format_table11(results: dict, datasets: list[str]) -> str:
    lines = ["Table XI — running time (seconds per epoch)",
             _header(datasets, "        avg")]
    for name, rows in results.items():
        cells = [f"{rows[d]:>12.3f}" for d in datasets]
        lines.append("  ".join([f"{name:<24}"] + cells + [f"{rows['avg']:.3f}"]))
    return "\n".join(lines)
