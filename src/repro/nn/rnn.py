"""Recurrent cells used by the ``lstm`` fusion candidate and Set2Set readout.

The paper's multi-scale fusion candidate ``lstm`` follows Jumping Knowledge
(Xu et al., 2018): per node, an LSTM consumes the sequence of K layer-wise
representations and produces attention scores over layers.  Set2Set
(Vinyals et al., 2015) runs an LSTM over processing steps with content-based
attention over nodes.

The step math lives in two places that must stay in lockstep:

* :func:`_lstm_scan_reference` — the tape composition registered as the
  ``lstm_scan`` op's legacy/reference implementation.  Inference-time
  forwards (``no_grad``) route through the ``lstm_scan`` dispatcher, so
  the compiled backend's fused C scan can take over when selected.
* The inline loops below — used whenever gradients are being recorded.
  They build the exact same tape the reference scan would, without the
  ``stack``/``getitem`` hops, so training trajectories are bitwise
  unchanged from before the scan op existed.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, stack


__all__ = ["LSTMCell", "LSTM"]


def _lstm_scan_reference(x, w_x, w_h, bias, h0=None, c0=None,
                         return_state=False):
    """Tape-composition LSTM scan over stacked steps ``x`` of shape
    ``(steps, batch, input_dim)``.

    The ``lstm_scan`` op's reference implementation: per step, exactly
    the :class:`LSTMCell` gate math — ``gates = x[t] @ w_x + h @ w_h +
    bias`` with gates packed ``[i, f, g, o]``, then ``c = f*c + i*g``
    and ``h = o*tanh(c)``.  Gradients flow through every step via the
    tape; the compiled backend's fused kernel must match this
    composition bit for bit (and delegates back here whenever gradients
    are being recorded).

    Returns the stacked per-step hidden states ``(steps, batch,
    hidden)``; with ``return_state=True``, also the final ``h`` and
    ``c``.
    """
    x = as_tensor(x)
    w_x = as_tensor(w_x)
    w_h = as_tensor(w_h)
    bias = as_tensor(bias)
    steps, batch = x.shape[0], x.shape[1]
    hidden = w_h.shape[0]
    h = as_tensor(h0) if h0 is not None else Tensor(np.zeros((batch, hidden)))
    c = as_tensor(c0) if c0 is not None else Tensor(np.zeros((batch, hidden)))
    outputs = []
    for t in range(steps):
        gates = x[t] @ w_x + h @ w_h + bias
        i = gates[:, 0 * hidden:1 * hidden].sigmoid()
        f = gates[:, 1 * hidden:2 * hidden].sigmoid()
        g = gates[:, 2 * hidden:3 * hidden].tanh()
        o = gates[:, 3 * hidden:4 * hidden].sigmoid()
        c = f * c + i * g
        h = o * c.tanh()
        outputs.append(h)
    out = stack(outputs, 0)
    if return_state:
        return out, h, c
    return out


class LSTMCell(Module):
    """A single LSTM step: ``(x, h, c) -> (h', c')``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Gates packed as [i, f, g, o] along the output dimension.
        self.w_x = Parameter(init.xavier_uniform((input_dim, 4 * hidden_dim), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_dim, 4 * hidden_dim), rng))
        self.bias = Parameter(init.zeros((4 * hidden_dim,)))
        # Positive forget-gate bias helps gradient flow at initialization.
        self.bias.data[hidden_dim:2 * hidden_dim] = 1.0

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        if is_grad_enabled():
            gates = x @ self.w_x + h @ self.w_h + self.bias
            hd = self.hidden_dim
            i = gates[:, 0 * hd:1 * hd].sigmoid()
            f = gates[:, 1 * hd:2 * hd].sigmoid()
            g = gates[:, 2 * hd:3 * hd].tanh()
            o = gates[:, 3 * hd:4 * hd].sigmoid()
            c_next = f * c + i * g
            h_next = o * c_next.tanh()
            return h_next, c_next
        # Inference: a one-step scan through the dispatcher, so the
        # compiled backend's fused kernel serves Set2Set's step loop.
        from .ops import lstm_scan

        _, h_next, c_next = lstm_scan(Tensor(x.data[None]), self.w_x,
                                      self.w_h, self.bias, h0=h, c0=c,
                                      return_state=True)
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Unrolled (optionally bidirectional) LSTM over a short sequence.

    Input is a list of ``(batch, input_dim)`` tensors — one per timestep —
    which matches how layer-wise GNN representations arrive in fusion.
    Returns per-step hidden states concatenated over directions.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        bidirectional: bool = False,
    ):
        super().__init__()
        self.bidirectional = bidirectional
        self.hidden_dim = hidden_dim
        self.fwd = LSTMCell(input_dim, hidden_dim, rng)
        if bidirectional:
            self.bwd = LSTMCell(input_dim, hidden_dim, rng)

    @property
    def output_dim(self) -> int:
        return self.hidden_dim * (2 if self.bidirectional else 1)

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        if not steps:
            raise ValueError("LSTM needs at least one timestep")
        if not is_grad_enabled():
            return self._forward_scan(steps)
        batch = steps[0].shape[0]
        h, c = self.fwd.initial_state(batch)
        forward_states = []
        for x in steps:
            h, c = self.fwd(x, h, c)
            forward_states.append(h)
        if not self.bidirectional:
            return forward_states
        h, c = self.bwd.initial_state(batch)
        backward_states = []
        for x in reversed(steps):
            h, c = self.bwd(x, h, c)
            backward_states.append(h)
        backward_states.reverse()
        return [
            concatenate([f, b], axis=-1)
            for f, b in zip(forward_states, backward_states)
        ]

    def _forward_scan(self, steps: list[Tensor]) -> list[Tensor]:
        """Inference forward as whole-sequence ``lstm_scan`` dispatches."""
        from .ops import lstm_scan

        out = lstm_scan(stack(steps, 0), self.fwd.w_x, self.fwd.w_h,
                        self.fwd.bias)
        forward_states = [out[t] for t in range(len(steps))]
        if not self.bidirectional:
            return forward_states
        out = lstm_scan(stack(list(reversed(steps)), 0), self.bwd.w_x,
                        self.bwd.w_h, self.bwd.bias)
        backward_states = [out[t] for t in range(len(steps))]
        backward_states.reverse()
        return [
            concatenate([f, b], axis=-1)
            for f, b in zip(forward_states, backward_states)
        ]
