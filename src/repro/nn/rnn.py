"""Recurrent cells used by the ``lstm`` fusion candidate and Set2Set readout.

The paper's multi-scale fusion candidate ``lstm`` follows Jumping Knowledge
(Xu et al., 2018): per node, an LSTM consumes the sequence of K layer-wise
representations and produces attention scores over layers.  Set2Set
(Vinyals et al., 2015) runs an LSTM over processing steps with content-based
attention over nodes.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step: ``(x, h, c) -> (h', c')``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Gates packed as [i, f, g, o] along the output dimension.
        self.w_x = Parameter(init.xavier_uniform((input_dim, 4 * hidden_dim), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_dim, 4 * hidden_dim), rng))
        self.bias = Parameter(init.zeros((4 * hidden_dim,)))
        # Positive forget-gate bias helps gradient flow at initialization.
        self.bias.data[hidden_dim:2 * hidden_dim] = 1.0

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        gates = x @ self.w_x + h @ self.w_h + self.bias
        hd = self.hidden_dim
        i = gates[:, 0 * hd:1 * hd].sigmoid()
        f = gates[:, 1 * hd:2 * hd].sigmoid()
        g = gates[:, 2 * hd:3 * hd].tanh()
        o = gates[:, 3 * hd:4 * hd].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Unrolled (optionally bidirectional) LSTM over a short sequence.

    Input is a list of ``(batch, input_dim)`` tensors — one per timestep —
    which matches how layer-wise GNN representations arrive in fusion.
    Returns per-step hidden states concatenated over directions.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        bidirectional: bool = False,
    ):
        super().__init__()
        self.bidirectional = bidirectional
        self.hidden_dim = hidden_dim
        self.fwd = LSTMCell(input_dim, hidden_dim, rng)
        if bidirectional:
            self.bwd = LSTMCell(input_dim, hidden_dim, rng)

    @property
    def output_dim(self) -> int:
        return self.hidden_dim * (2 if self.bidirectional else 1)

    def forward(self, steps: list[Tensor]) -> list[Tensor]:
        if not steps:
            raise ValueError("LSTM needs at least one timestep")
        batch = steps[0].shape[0]
        h, c = self.fwd.initial_state(batch)
        forward_states = []
        for x in steps:
            h, c = self.fwd(x, h, c)
            forward_states.append(h)
        if not self.bidirectional:
            return forward_states
        h, c = self.bwd.initial_state(batch)
        backward_states = []
        for x in reversed(steps):
            h, c = self.bwd(x, h, c)
            backward_states.append(h)
        backward_states.reverse()
        return [
            concatenate([f, b], axis=-1)
            for f, b in zip(forward_states, backward_states)
        ]
