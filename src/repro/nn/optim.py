"""Optimizers: SGD and Adam with decoupled weight decay and grad clipping.

The paper fine-tunes with Adam at learning rate 1e-3 (Sec. IV-A4); the
bi-level search additionally keeps a second Adam instance for the controller
parameters ``alpha`` (Sec. III-C).
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None or not p.requires_grad:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and decoupled weight decay."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None or not p.requires_grad:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


def clip_grad_norm(params, max_norm: float) -> float:
    """Clip the global L2 norm of gradients in-place; returns the pre-clip norm."""
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm
