"""Standard layers: Linear, Embedding, MLP, normalization, adapters.

``StochNorm1d`` implements Stochastic Normalization (Kou et al., NeurIPS'20),
one of the regularized fine-tuning baselines the paper compares against
(Table VII): at train time each feature channel randomly mixes batch
statistics with running (pre-trained) statistics, acting as an architecture-
level regularizer against catastrophic forgetting.

``Bottleneck`` is the parameter-efficient ``R^d -> R^m -> R^d`` transform
(m << d) used both by Adapter-Tuning (Houlsby et al.) and by the paper's
``trans_aug`` identity-augmentation candidate.
"""

from __future__ import annotations

import numpy as np

from . import init
from .functional import dropout as dropout_fn
from .module import Module, Parameter
from .tensor import Tensor, gather

__all__ = [
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "BatchNorm1d",
    "StochNorm1d",
    "Bottleneck",
    "Identity",
]


class Identity(Module):
    """No-op module; stands in for disabled augmentations."""

    def forward(self, x):
        return x


class Linear(Module):
    """Affine map ``y = x W + b`` with weight of shape (in_dim, out_dim)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng))
        self.bias = Parameter(init.zeros((out_dim,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.xavier_uniform((num_embeddings, dim), rng))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return gather(self.weight, ids)


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers."""

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        activate_last: bool = False,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.dims = list(dims)
        self.activate_last = activate_last
        self.layers = _module_list([Linear(a, b, rng) for a, b in zip(dims[:-1], dims[1:])])

    def forward(self, x: Tensor) -> Tensor:
        n = len(self.layers)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < n - 1 or self.activate_last:
                x = x.relu()
        return x


class Dropout(Module):
    """Inverted dropout module with its own RNG stream."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self.rng, training=self.training)


class BatchNorm1d(Module):
    """Batch normalization over the leading (row) dimension."""

    def __init__(self, dim: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))
        self.register_buffer("running_mean", np.zeros(dim))
        self.register_buffer("running_var", np.ones(dim))

    def _normalize(self, x: Tensor, mean: np.ndarray, var: np.ndarray) -> Tensor:
        inv_std = Tensor(1.0 / np.sqrt(var + self.eps))
        return (x - Tensor(mean)) * inv_std * self.gamma + self.beta

    def forward(self, x: Tensor) -> Tensor:
        if self.training and x.shape[0] > 1:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean,
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * batch_var,
            )
            # Centering uses batch stats as constants: this matches the usual
            # "evaluation-style" BN gradient approximation and keeps the tape
            # small; at our scale the ranking behaviour is unaffected.
            centered = x - Tensor(batch_mean)
            inv_std = Tensor(1.0 / np.sqrt(batch_var + self.eps))
            return centered * inv_std * self.gamma + self.beta
        return self._normalize(x, self.running_mean, self.running_var)


class StochNorm1d(BatchNorm1d):
    """Stochastic Normalization (Kou et al., 2020).

    With probability ``p`` per channel, normalize by running (pre-trained)
    statistics instead of batch statistics, interpolating between BN and a
    frozen normalizer.  Regularizes fine-tuning against forgetting.
    """

    def __init__(self, dim: int, p: float = 0.5, momentum: float = 0.1, eps: float = 1e-5,
                 rng: np.random.Generator | None = None):
        super().__init__(dim, momentum=momentum, eps=eps)
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or x.shape[0] <= 1:
            return self._normalize(x, self.running_mean, self.running_var)
        batch_mean = x.data.mean(axis=0)
        batch_var = x.data.var(axis=0)
        select = self.rng.random(self.dim) < self.p
        mean = np.where(select, self.running_mean, batch_mean)
        var = np.where(select, self.running_var, batch_var)
        self.set_buffer(
            "running_mean",
            (1 - self.momentum) * self.running_mean + self.momentum * batch_mean,
        )
        self.set_buffer(
            "running_var",
            (1 - self.momentum) * self.running_var + self.momentum * batch_var,
        )
        return self._normalize(x, mean, var)


class Bottleneck(Module):
    """Parameter-efficient down-project / nonlinearity / up-project block.

    ``R^d -> R^m -> R^d`` with ``m << d`` and a residual-free output; callers
    add residuals as needed.  The up-projection is zero-initialized so a fresh
    bottleneck starts as the zero function and does not perturb pre-trained
    representations at step 0 (Houlsby et al.'s near-identity initialization).
    """

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        if hidden >= dim:
            raise ValueError("bottleneck hidden width must be < dim")
        self.dim = dim
        self.hidden = hidden
        self.down = Linear(dim, hidden, rng)
        self.up = Linear(hidden, dim, rng)
        self.up.weight.data[:] = 0.0

    def forward(self, x: Tensor) -> Tensor:
        return self.up(self.down(x).relu())


def _module_list(modules):
    from .module import ModuleList

    return ModuleList(modules)
