"""Module system: parameter containers with named traversal and state dicts.

Mirrors the small subset of ``torch.nn.Module`` the reproduction needs:
registration by attribute assignment, recursive parameter iteration,
train/eval mode, freezing (for Feature-Extractor / Last-k strategies), and
state-dict save/load (for the pre-trained model zoo).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "ModuleDict"]


def _as_float_state(value) -> np.ndarray:
    """Coerce loaded/registered state to a float ndarray, preserving dtype.

    Floating payloads keep their dtype — a float32-cast serving checkpoint
    round-trips without a silent re-upcast to float64 (and without the
    copy that a forced ``dtype=np.float64`` conversion made even for
    already-float64 input).  Non-float payloads (int counts saved by old
    checkpoints) still promote to float64, the training default.
    """
    arr = np.asarray(value)
    if arr.dtype.kind != "f":
        arr = arr.astype(np.float64)
    return arr


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module tree."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must survive no_grad construction contexts.
        self.requires_grad = True


class Module:
    """Base class for all neural modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = _as_float_state(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = _as_float_state(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def modules(self) -> list["Module"]:
        return [m for _, m in self.named_modules()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (prefix + name, buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count (used by adapter-efficiency checks)."""
        return sum(
            p.size for p in self.parameters() if (p.requires_grad or not trainable_only)
        )

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Disable gradients for every parameter in this subtree."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer:" + name] = buf.copy()
        return state

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = {name: owner for owner, name in self._iter_buffer_owners()}
        missing = []
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                owner = buffers.get(name)
                if owner is None:
                    if strict:
                        missing.append(key)
                    continue
                leaf = name.rsplit(".", 1)[-1]
                owner.set_buffer(leaf, value)
            elif key in params:
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                params[key].data = _as_float_state(value).copy()
            elif strict:
                missing.append(key)
        if strict:
            absent = [k for k in params if k not in state]
            if missing or absent:
                raise KeyError(f"unexpected keys {missing}, missing keys {absent}")

    def _iter_buffer_owners(self):
        for prefix, module in self.named_modules():
            for name in module._buffers:
                full = f"{prefix}.{name}" if prefix else name
                yield module, full

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules; each must be unary."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = []
        for i, module in enumerate(modules):
            setattr(self, f"m{i}", module)
            self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x


class ModuleList(Module):
    """An indexable container of submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"m{len(self._items)}", module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]


class ModuleDict(Module):
    """A string-keyed container of submodules (candidate-operator banks)."""

    def __init__(self, modules: dict | None = None):
        super().__init__()
        self._keys = []
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module):
        setattr(self, key, module)
        if key not in self._keys:
            self._keys.append(key)

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def keys(self):
        return list(self._keys)

    def items(self):
        return [(k, self._modules[k]) for k in self._keys]

    def values(self):
        return [self._modules[k] for k in self._keys]
