"""Weight initializers (Glorot / Kaiming / uniform), seeded explicitly."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "ones", "normal"]


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU fan-in."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    # For 2-D weight (in, out) convention used by our Linear layer.
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    return max(fan_in, 1), max(fan_out, 1)
