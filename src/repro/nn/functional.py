"""Functional neural-network operations built on the autograd engine.

Includes the Gumbel-softmax relaxation (paper Eq. 17) that makes the
discrete fine-tuning-strategy sampling differentiable with respect to the
controller parameters ``alpha``.
"""

from __future__ import annotations

import numpy as np

from .segment import segment_max, segment_mean, segment_softmax, segment_sum
from .tensor import Tensor, as_tensor, concatenate, gather, stack, where

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "l2_norm_squared",
    "gumbel_softmax",
    "softmax_np",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return as_tensor(x).leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales by ``1/(1-p)`` at train time, identity at eval."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return as_tensor(x) * Tensor(mask)


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    mask: np.ndarray | None = None,
) -> Tensor:
    """Mean BCE over (optionally masked) entries.

    The masked variant mirrors MoleculeNet multi-task training, where some
    (molecule, task) labels are missing and excluded from the loss.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    # log(1 + exp(-|z|)) + max(z, 0) - z*y  (stable composition).
    zeros = Tensor(np.zeros_like(logits.data))
    losses = logits.clip(-60.0, 60.0)
    softplus = (1.0 + (-losses.abs()).exp()).log()
    per_entry = softplus + losses.relu() - losses * Tensor(targets)
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        denom = max(float(mask.sum()), 1.0)
        return (per_entry * Tensor(mask)).sum() * (1.0 / denom)
    del zeros
    return per_entry.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy; ``targets`` are integer class ids."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    picked = logp[(rows, targets)]
    return -picked.mean()


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = as_tensor(pred) - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def l2_norm_squared(x: Tensor) -> Tensor:
    x = as_tensor(x)
    return (x * x).sum()


def gumbel_softmax(
    log_alpha: Tensor,
    tau: float,
    rng: np.random.Generator,
    hard: bool = False,
) -> Tensor:
    """Sample a relaxed one-hot strategy vector (paper Eq. 17).

    ``g_alpha(U)[i] = softmax_i((log alpha[i] - log(-log U[i])) / tau)`` with
    ``U ~ Uniform(0,1)``.  As ``tau -> 0`` the sample approaches a discrete
    one-hot vector, making the relaxation asymptotically unbiased.

    Parameters
    ----------
    log_alpha:
        Unnormalized log-probabilities, one entry per candidate operator.
    tau:
        Softmax temperature controlling discreteness.
    hard:
        If True, return a straight-through hard one-hot (forward is discrete,
        backward uses the relaxed gradient).
    """
    if tau <= 0:
        raise ValueError("temperature tau must be positive")
    u = rng.uniform(low=1e-9, high=1.0 - 1e-9, size=log_alpha.shape)
    gumbel_noise = -np.log(-np.log(u))
    logits = (as_tensor(log_alpha) + Tensor(gumbel_noise)) * (1.0 / tau)
    soft = softmax(logits, axis=-1)
    if not hard:
        return soft
    hard_vec = np.zeros_like(soft.data)
    hard_vec[np.argmax(soft.data, axis=-1)] = 1.0
    # Straight-through estimator: forward = hard, backward = soft gradient.
    return soft + Tensor(hard_vec - soft.data)


def softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-numpy softmax for non-differentiable paths (deriving a strategy)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer indices -> float one-hot matrix."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.size, num_classes), dtype=np.float64)
    out[np.arange(indices.size), indices.ravel()] = 1.0
    return out.reshape(indices.shape + (num_classes,))


# Re-export structural ops so users can do ``from repro.nn import functional as F``.
F_EXPORTS = {
    "concatenate": concatenate,
    "stack": stack,
    "where": where,
    "gather": gather,
    "segment_sum": segment_sum,
    "segment_mean": segment_mean,
    "segment_max": segment_max,
    "segment_softmax": segment_softmax,
}
globals().update(F_EXPORTS)
__all__ += list(F_EXPORTS)
