"""Learning-rate schedulers for the optimizers in :mod:`repro.nn.optim`.

The paper fine-tunes at a fixed 1e-3, but longer search schedules benefit
from decay; these schedulers are used by the extended search configurations
and exposed for downstream users.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR"]


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + (self.base_lr - self.eta_min) * 0.5 * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear warmup to the base LR, then delegate to an inner scheduler."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: LRScheduler | None = None):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self) -> float:
        if self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        if self.after is not None:
            self.after.epoch = self.epoch - self.warmup_epochs
            return self.after.get_lr()
        return self.base_lr
