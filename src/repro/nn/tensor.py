"""A small reverse-mode automatic differentiation engine on numpy.

This module is the computational substrate of the whole reproduction: the
paper's search algorithm (Gumbel-softmax relaxation, Eq. 17-18) requires
gradients of the fine-tuning loss with respect to both GNN weights ``theta``
and controller parameters ``alpha``, flowing through mixtures of candidate
operators, LSTM fusion, and attention readouts.  Rather than hand-deriving
those gradients we implement a generic tape-based autodiff over numpy arrays.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (``float64`` under the
  default :class:`~repro.nn.policy.ExecutionPolicy` for numerically robust
  finite-difference checking; float32 under ``serving_policy()``) plus an
  optional gradient.
* Each differentiable operation returns a new tensor holding a ``_backward``
  closure that accumulates into its parents' ``grad`` buffers.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` reduces an
  output gradient back to a parent's shape.
* Integer index arrays (for message passing ``gather`` / ``segment_sum``)
  are plain numpy arrays, never tensors.
"""

from __future__ import annotations

import contextvars

import numpy as np

from .policy import active_dtype, workspace_zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
]


#: Context-local grad-recording flag.  A ``ContextVar`` instead of a
#: process-global stack makes ``no_grad`` compose across threads: every
#: thread (and every ``contextvars`` context) sees its own state, so a
#: serving worker evaluating under ``no_grad`` cannot switch off tape
#: recording for a training loop running concurrently in another thread.
#: Fresh threads start from the default (grad enabled) — they do *not*
#: inherit the spawning thread's ``no_grad`` nesting.
_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True)


class no_grad:
    """Context manager that disables gradient tape recording.

    Used by evaluation loops and by fine-tuning strategies that freeze
    submodules (e.g. Feature Extractor, Last-k) to avoid building graphs
    for frozen computations.

    The flag is context-local (``contextvars``): entering ``no_grad`` in
    one thread leaves every other thread's grad state untouched.  One
    instance may be re-entered / nested (tokens are kept as a stack).
    """

    def __init__(self):
        self._tokens: list[contextvars.Token] = []

    def __enter__(self):
        self._tokens.append(_GRAD_ENABLED.set(False))
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_ENABLED.reset(self._tokens.pop())
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (context-local)."""
    return _GRAD_ENABLED.get()


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to an ndarray in the active
        :class:`~repro.nn.policy.ExecutionPolicy` dtype (``float64``
        by default).  An ndarray already in the policy dtype is wrapped
        without copying — the policy-threaded kernels exploit this to
        hand workspace buffers straight to tensors.
    requires_grad:
        If True, ``backward()`` populates :attr:`grad` for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data, requires_grad: bool = False, _prev=(), _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=active_dtype())
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward = None
        self._prev = tuple(p for p in _prev if isinstance(p, Tensor))
        self._op = _op

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the tape."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, op={self._op or 'leaf'})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # autodiff machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ones (scalar outputs use 1.0).
        """
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack_ = [self]
        # Iterative DFS (deep graphs from K-layer GNNs + LSTMs would
        # overflow Python's recursion limit).
        post: list[tuple[Tensor, bool]] = [(self, False)]
        while post:
            node, processed = post.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            post.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    post.append((parent, False))
        del stack_

        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _result(data, parents, op, backward):
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._result(out_data, (self, other), "add", backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(g):
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._result(-self.data, (self,), "neg", backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return Tensor._result(out_data, (self, other), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data ** 2))

        return Tensor._result(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._result(out_data, (self,), "pow", backward)

    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(g, other.data) if g.ndim else g * other.data)
                else:
                    self._accumulate(g @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, g))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ g)

        return Tensor._result(out_data, (self, other), "matmul", backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._result(out_data, (self,), "exp", backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._result(out_data, (self,), "log", backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._result(out_data, (self,), "sqrt", backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data ** 2))

        return Tensor._result(out_data, (self,), "tanh", backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._result(out_data, (self,), "sigmoid", backward)

    def relu(self):
        mask = self.data > 0

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._result(self.data * mask, (self,), "relu", backward)

    def leaky_relu(self, negative_slope: float = 0.2):
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * scale)

        return Tensor._result(self.data * scale, (self,), "leaky_relu", backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * sign)

        return Tensor._result(np.abs(self.data), (self,), "abs", backward)

    def clip(self, low: float, high: float):
        mask = (self.data > low) & (self.data < high)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._result(np.clip(self.data, low, high), (self,), "clip", backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._result(out_data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / max(count, 1))

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            g = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient evenly between ties for well-defined adjoints.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / np.maximum(denom, 1.0))

        return Tensor._result(out_data, (self,), "max", backward)

    def min(self, axis=None, keepdims: bool = False):
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._result(out_data, (self,), "reshape", backward)

    def flatten(self):
        return self.reshape(-1)

    def transpose(self, axes=None):
        out_data = self.data.transpose(axes)
        if axes is None:
            inv = None
        else:
            inv = tuple(np.argsort(axes))

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.transpose(inv))

        return Tensor._result(out_data, (self,), "transpose", backward)

    @property
    def T(self):
        return self.transpose()

    def expand_dims(self, axis: int):
        out_data = np.expand_dims(self.data, axis)

        def backward(g):
            if self.requires_grad:
                self._accumulate(np.squeeze(g, axis=axis))

        return Tensor._result(out_data, (self,), "expand_dims", backward)

    def squeeze(self, axis=None):
        out_data = np.squeeze(self.data, axis=axis)
        original = self.data.shape

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._result(out_data, (self,), "squeeze", backward)

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(g):
            if self.requires_grad:
                self._accumulate(_scatter_adjoint(self.data, index, g))

        return Tensor._result(out_data, (self,), "getitem", backward)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (Tensor, ndarray, scalar, list) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _scatter_adjoint(target_data: np.ndarray, index, g: np.ndarray) -> np.ndarray:
    """Scatter-add ``g`` back onto a zeroed copy of ``target_data``'s shape.

    The adjoint of ``x[index]`` / :func:`gather`.  For 1-D integer index
    arrays this dispatches through the registered ``scatter_add`` op
    (:mod:`repro.nn.ops`), whose plan backend recognizes *repeated* index
    arrays (embedding-id columns of cached batches, reused top-k
    selections) and serves them through a cached
    :class:`~repro.nn.segment.SegmentPlan` — bit-identical to
    ``np.add.at`` but an order of magnitude faster on the hot paths.
    Everything else (slices, boolean masks, multi-dimensional fancy
    indexing) keeps the plain ``np.add.at`` scatter.  Repetition is
    detected by *storage* identity, so an index array reused across calls
    must not be mutated in place between them (see
    :func:`repro.nn.segment._scatter_add_plan`).
    """
    if (isinstance(index, np.ndarray) and index.ndim == 1
            and index.dtype.kind in "iu"):
        from .ops import scatter_add

        return scatter_add(g, index, target_data.shape[0])
    full = np.zeros_like(target_data)
    np.add.at(full, index, g)
    return full


# ----------------------------------------------------------------------
# multi-input / structural operations
# ----------------------------------------------------------------------
def concatenate(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with exact split adjoints."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis if axis >= 0 else g.ndim + axis] = slice(lo, hi)
                t._accumulate(g[tuple(index)])

    return Tensor._result(out_data, tuple(tensors), "concat", backward)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        slabs = np.split(g, len(tensors), axis=axis)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._result(out_data, tuple(tensors), "stack", backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean ndarray."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(g):
        if a.requires_grad:
            a._accumulate(np.where(condition, g, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(condition, 0.0, g))

    return Tensor._result(out_data, (a, b), "where", backward)


def _gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Row-gather ``x[index]``; the adjoint is a scatter-add.

    This is the core primitive of message passing: source node features are
    gathered along ``edge_index[0]`` before aggregation.  Public name:
    ``repro.nn.gather`` — the registered entry in :mod:`repro.nn.ops`.
    """
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]

    def backward(g):
        if x.requires_grad:
            x._accumulate(_scatter_adjoint(x.data, index, g))

    return Tensor._result(out_data, (x,), "gather", backward)


def _legacy_segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets; adjoint is a gather.

    Used both for neighborhood aggregation (segments = target nodes) and
    graph readout (segments = graph ids in a batch).

    This ``np.add.at`` implementation is the *legacy reference backend*,
    registered in :mod:`repro.nn.ops`; the hot-path ops live in
    :mod:`repro.nn.segment` (plan-backed ``reduceat``) and the public
    ``segment_sum`` dispatches here under ``use_backend("legacy")`` for
    differential testing.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = workspace_zeros((num_segments,) + x.data.shape[1:],
                               x.data.dtype)
    np.add.at(out_data, segment_ids, x.data)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g[segment_ids])

    return Tensor._result(out_data, (x,), "segment_sum", backward)


def _legacy_segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-pool rows of ``x`` per segment (empty segments yield zeros)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    counts = np.maximum(counts, 1.0)
    total = _legacy_segment_sum(x, segment_ids, num_segments)
    return total * Tensor(1.0 / counts).reshape((num_segments,) + (1,) * (x.ndim - 1))


def _legacy_segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Max-pool rows of ``x`` per segment (empty segments yield zeros)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = np.full((num_segments,) + x.data.shape[1:], -np.inf,
                       dtype=x.data.dtype)
    np.maximum.at(out_data, segment_ids, x.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    out_data[empty] = 0.0
    winners = (x.data == out_data[segment_ids])

    def backward(g):
        if not x.requires_grad:
            return
        # Split gradient among ties within each segment.
        tie_counts = np.zeros_like(out_data)
        np.add.at(tie_counts, segment_ids, winners.astype(out_data.dtype))
        tie_counts = np.maximum(tie_counts, 1.0)
        x._accumulate(np.where(winners, g[segment_ids] / tie_counts[segment_ids], 0.0))

    return Tensor._result(out_data, (x,), "segment_max", backward)


def _legacy_scatter_add(g, index: np.ndarray, num_rows: int) -> np.ndarray:
    """Plain ``np.add.at`` scatter: ``out[index[i]] += g[i]`` over zeros.

    The legacy reference entry for the registered ``scatter_add`` op —
    duplicate indices accumulate in appearance order, which the plan
    backend's stable sort reproduces bit-identically.
    """
    g = np.asarray(g)
    if g.dtype.kind != "f":
        g = g.astype(active_dtype())
    index = np.asarray(index, dtype=np.int64)
    out = workspace_zeros((num_rows,) + g.shape[index.ndim:], g.dtype)
    np.add.at(out, index, g)
    return out


#: Registered public ops whose canonical entry points are the registry
#: dispatchers in :mod:`repro.nn.ops` (PEP 562 lazy re-export: importing
#: ``ops`` eagerly here would be circular — ops registers the legacy
#: implementations above).  ``from repro.nn.tensor import segment_sum``
#: therefore returns the *same* function object as ``repro.nn.segment_sum``.
_OPS_FORWARDED = frozenset({
    "segment_sum", "segment_mean", "segment_max", "gather",
})


def __getattr__(name):
    if name in _OPS_FORWARDED:
        from . import ops as _ops

        return getattr(_ops, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
