"""Checkpoint I/O for the pre-trained model zoo (npz on disk)."""

from __future__ import annotations

import json
import os
from collections import OrderedDict

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "save_checkpoint", "load_checkpoint"]


def save_state_dict(state: dict, path: str) -> None:
    """Serialize a module ``state_dict`` to an ``.npz`` file."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state_dict(path: str) -> "OrderedDict[str, np.ndarray]":
    with np.load(path) as payload:
        return OrderedDict((k, payload[k]) for k in payload.files)


def save_checkpoint(state: dict, metadata: dict, path: str) -> None:
    """Save weights plus a JSON metadata sidecar (method, backbone, config)."""
    save_state_dict(state, path)
    with open(path + ".json", "w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)


def load_checkpoint(path: str) -> tuple["OrderedDict[str, np.ndarray]", dict]:
    state = load_state_dict(path)
    meta_path = path + ".json"
    metadata = {}
    if os.path.exists(meta_path):
        with open(meta_path, encoding="utf-8") as handle:
            metadata = json.load(handle)
    return state, metadata
