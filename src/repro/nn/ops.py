"""Unified op registry: one declarative table driving backend dispatch.

Every differentiable kernel op of the nn layer — the segment family
(``segment_sum/mean/max/softmax``, ``gather_segments``), the row ops
(``gather``, ``scatter_add``) and the elementwise reference ops — is
registered here exactly once, with:

* its **per-backend implementations** (``reduceat`` = the plan-backed
  kernels in :mod:`repro.nn.segment`, ``legacy`` = the ``np.add.at``
  reference ops in :mod:`repro.nn.tensor`, and a declared-but-empty
  ``compiled`` slot for the future C kernel backend);
* its **adjoint** (a one-line statement of the backward rule — consumed
  by humans and by the REP008 lint, which refuses registrations without
  one);
* its **parity tolerances** (``tolerance`` for cross-backend forward/grad
  comparison — 0.0 means bit-identical — plus ``gradcheck_tol`` for the
  numeric-vs-analytic sweep and ``float32_tol`` for the serving-dtype
  leg);
* deterministic **sample-input generators** covering the edge layouts the
  kernels must survive: empty index arrays, empty segments interleaved
  with large ones, single-segment batches, 1-D and matrix payloads, and
  every policy dtype (the generators take the dtype as an argument).

The table is the single source of truth for three downstream layers:

* **Dispatch** — the public ops (``repro.nn.segment_sum`` et al.) are
  registry dispatchers: per-call cost is one ContextVar read and one dict
  hit, the ``(op, active backend)`` resolution walks the declared
  fallback chain (``compiled`` -> ``reduceat`` -> ``legacy``) once and is
  cached.  ``BENCH_segment_kernels.json``'s ``dispatch_overhead`` section
  pins the cost against a pinned-implementation loop.
* **Testing** — ``tests/nn/test_ops_gradients.py`` sweeps the whole
  database through gradcheck across every implemented backend and dtype;
  the tier-2 differential suite parametrizes over
  ``OP_REGISTRY.backends()``; the optional torch-parity suite replays the
  same sample inputs through torch.
* **Linting** — REP004/REP005/REP008 statically parse the registrations
  (:mod:`repro.devtools.opregs`) instead of reverse-engineering op
  structure from AST heuristics.  Keep each ``register(...)`` call a
  literal (constant op name, dict-literal backends) so the lints can see
  it.

Registering a new backend is two lines (``register_backend`` + impl
entries on the ops it accelerates); every suite and lint picks it up from
the table with no further wiring.
"""

from __future__ import annotations

import contextvars

import numpy as np

from . import rnn as _rnn
from . import segment as _segment
from . import tensor as _tensor
from .tensor import as_tensor

__all__ = [
    "OpRegistry",
    "OpEntry",
    "SampleInput",
    "OP_REGISTRY",
    "use_backend",
    "active_backend",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "gather_segments",
    "scatter_add",
    "gather",
    "matmul",
    "concat",
    "lstm_scan",
]


class SampleInput:
    """One deterministic op invocation: ``op(data, *args)``.

    ``data`` is the differentiated payload (wrapped in a Tensor by the
    sweeps); ``args`` are the non-differentiable trailing arguments
    (index arrays, segment counts).  ``label`` names the edge layout the
    sample exists to pin (``"interleaved_empty"``, ``"flat"``, ...).
    """

    __slots__ = ("label", "data", "args")

    def __init__(self, label: str, data: np.ndarray, args: tuple = ()):
        self.label = label
        self.data = data
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"SampleInput({self.label!r}, shape={self.data.shape})"


class _BackendSpec:
    __slots__ = ("name", "fallback", "description")

    def __init__(self, name: str, fallback: str | None, description: str):
        self.name = name
        self.fallback = fallback
        self.description = description


class OpEntry:
    """One registered op: implementations, adjoint, tolerances, samples."""

    __slots__ = ("name", "impls", "adjoint", "samples", "tolerance",
                 "gradcheck_tol", "float32_tol", "differentiable", "waiver")

    def __init__(self, name, impls, adjoint, samples, tolerance,
                 gradcheck_tol, float32_tol, differentiable, waiver):
        self.name = name
        self.impls = impls
        self.adjoint = adjoint
        self.samples = samples
        self.tolerance = tolerance
        self.gradcheck_tol = gradcheck_tol
        self.float32_tol = float32_tol
        self.differentiable = differentiable
        self.waiver = waiver

    def __repr__(self) -> str:
        return f"OpEntry({self.name!r}, backends={tuple(self.impls)})"


class OpRegistry:
    """Declarative op table + cached ``(op, backend)`` dispatch.

    Backends form a fallback chain: resolving ``(op, backend)`` walks
    ``backend -> fallback -> ...`` until an implementation is found, so a
    partially-implemented backend (the ``compiled`` slot today) serves
    the ops it has and inherits the rest.  Resolution happens once per
    ``(op, backend)`` pair; dispatchers then run on a plain dict hit.
    """

    def __init__(self):
        self._backends: dict[str, _BackendSpec] = {}
        self._ops: dict[str, OpEntry] = {}
        self._dispatchers: dict = {}
        self._tables: dict[str, dict] = {}

    # -- declaration ---------------------------------------------------
    def register_backend(self, name: str, fallback: str | None = None,
                         description: str = "",
                         impls: dict | None = None) -> None:
        """Declare a backend, or fill a declared one with implementations.

        With ``impls`` (op name -> implementation), a previously declared
        backend may be filled *late* — the compiled backend registers its
        JIT kernels this way once the ops table exists.  Filling
        invalidates the cached dispatch tables: a dispatcher called
        before this point has already resolved ``(op, backend)`` through
        the fallback chain and would otherwise keep serving the stale
        implementation forever.
        """
        spec = self._backends.get(name)
        if spec is None:
            if fallback is not None and fallback not in self._backends:
                raise ValueError(
                    f"backend {name!r} falls back to undeclared {fallback!r}")
            spec = _BackendSpec(name, fallback, description)
            self._backends[name] = spec
        else:
            if impls is None:
                raise ValueError(f"backend {name!r} already registered")
            if fallback is not None and fallback != spec.fallback:
                raise ValueError(
                    f"backend {name!r} declared with fallback "
                    f"{spec.fallback!r}; cannot refill with {fallback!r}")
            if description:
                spec.description = description
        for op_name, impl in (impls or {}).items():
            entry = self._ops.get(op_name)
            if entry is None:
                raise ValueError(
                    f"backend {name!r} provides an impl for unregistered "
                    f"op {op_name!r}")
            if name in entry.impls:
                raise ValueError(
                    f"op {op_name!r} already has a {name!r} implementation")
            entry.impls[name] = impl
        for table in self._tables.values():
            table.clear()

    def register(self, name: str, backends: dict, adjoint: str,
                 samples, tolerance: float = 0.0,
                 gradcheck_tol: float = 1e-5, float32_tol: float = 1e-4,
                 differentiable: bool = True,
                 waiver: str | None = None) -> OpEntry:
        """Register one op.  ``backends`` maps backend name -> impl.

        Every op must declare an adjoint description and a sample-input
        generator ``samples(dtype) -> [SampleInput, ...]``, and either
        two backends or an explicit single-backend ``waiver`` — the
        REP008 lint enforces the same contract statically.
        """
        if name in self._ops:
            raise ValueError(f"op {name!r} already registered")
        if not backends:
            raise ValueError(f"op {name!r} registered with no backends")
        for backend in backends:
            if backend not in self._backends:
                raise ValueError(
                    f"op {name!r} registered for undeclared backend "
                    f"{backend!r}; declared: {self.declared_backends()}")
        if not adjoint:
            raise ValueError(f"op {name!r} registered without an adjoint")
        if not callable(samples):
            raise ValueError(f"op {name!r} needs a samples(dtype) generator")
        if len(backends) < 2 and waiver is None:
            raise ValueError(
                f"op {name!r} has a single backend and no waiver")
        entry = OpEntry(name, dict(backends), adjoint, samples,
                        float(tolerance), float(gradcheck_tol),
                        float(float32_tol), bool(differentiable), waiver)
        self._ops[name] = entry
        for table in self._tables.values():
            table.clear()
        return entry

    # -- introspection -------------------------------------------------
    def ops(self) -> tuple:
        """Registered op names, sorted."""
        return tuple(sorted(self._ops))

    def get(self, name: str) -> OpEntry:
        entry = self._ops.get(name)
        if entry is None:
            raise KeyError(f"unknown op {name!r}; registered: {self.ops()}")
        return entry

    def declared_backends(self) -> tuple:
        """Every declared backend name, in declaration order."""
        return tuple(self._backends)

    def backend_info(self, name: str) -> dict:
        """Declared metadata of backend ``name``: fallback + description."""
        spec = self._backends.get(name)
        if spec is None:
            raise ValueError(
                f"unknown backend {name!r}; known: "
                f"{self.declared_backends()}")
        return {"fallback": spec.fallback, "description": spec.description}

    def backends(self) -> tuple:
        """Backends with at least one direct implementation (declaration
        order) — what the parity/gradcheck suites iterate over.  Declared
        empty slots (``compiled``) are excluded: they dispatch through
        their fallback and would only duplicate its coverage."""
        implemented = set()
        for entry in self._ops.values():
            implemented.update(entry.impls)
        return tuple(b for b in self._backends if b in implemented)

    # -- dispatch ------------------------------------------------------
    def resolve(self, name: str, backend: str):
        """The implementation serving ``(op, backend)`` via the fallback
        chain.  Raises for unknown ops/backends and unreachable impls."""
        entry = self.get(name)
        if backend not in self._backends:
            raise ValueError(
                f"unknown backend {backend!r}; known: "
                f"{self.declared_backends()}")
        current: str | None = backend
        while current is not None:
            impl = entry.impls.get(current)
            if impl is not None:
                return impl
            current = self._backends[current].fallback
        raise LookupError(
            f"op {name!r} has no implementation reachable from backend "
            f"{backend!r}")

    def dispatcher(self, name: str):
        """The cached public entry point for ``name``: resolves the
        active backend once per ``(op, backend)`` pair, then dispatches
        on a dict hit (zero resolution work on the hot path)."""
        dispatch = self._dispatchers.get(name)
        if dispatch is not None:
            return dispatch
        entry = self.get(name)
        table = self._tables.setdefault(name, {})

        def dispatch(*args, **kwargs):
            backend = _ACTIVE_BACKEND.get()
            impl = table.get(backend)
            if impl is None:
                impl = self.resolve(name, backend)
                table[backend] = impl
            return impl(*args, **kwargs)

        primary = entry.impls.get("reduceat") or next(iter(entry.impls.values()))
        dispatch.__name__ = name
        dispatch.__qualname__ = name
        dispatch.__doc__ = primary.__doc__
        dispatch.__wrapped__ = primary
        self._dispatchers[name] = dispatch
        return dispatch


#: The process-wide registry.  Populated below at import time (under the
#: interpreter's module import lock); everything afterwards only reads.
OP_REGISTRY = OpRegistry()

OP_REGISTRY.register_backend(
    "legacy",
    description="np.add.at reference ops (repro.nn.tensor)")
OP_REGISTRY.register_backend(
    "reduceat", fallback="legacy",
    description="SegmentPlan kernels: CSR matvec / reduceat / vertical max")
OP_REGISTRY.register_backend(
    "compiled", fallback="reduceat",
    description="JIT-built ctypes C kernels (repro.nn.compiled); filled "
                "at import when a C compiler is discovered, else every "
                "op falls back to reduceat")


#: Context-local backend selection.  A ``ContextVar`` instead of a
#: process-global stack makes ``use_backend`` compose across threads: a
#: differential test pinning the legacy backend in one thread cannot
#: reroute forwards running concurrently on serving workers.  Fresh
#: threads start from the default ("reduceat") backend.
_ACTIVE_BACKEND: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_segment_backend", default="reduceat")


def active_backend() -> str:
    """Name of the backend ops currently dispatch to (context-local)."""
    return _ACTIVE_BACKEND.get()


class use_backend:
    """Context manager selecting the kernel-op backend.

    ``"reduceat"`` (default) is the plan-backed fast path; ``"legacy"``
    routes through the ``np.add.at`` reference implementations in
    :mod:`repro.nn.tensor` for differential testing; ``"compiled"`` is a
    declared slot that falls back to ``reduceat`` until the C backend
    lands.  Any name must be declared in :data:`OP_REGISTRY`.

    The selection is context-local (``contextvars``), so it only affects
    the entering thread; one instance may be re-entered / nested.
    """

    def __init__(self, name: str):
        if name not in OP_REGISTRY.declared_backends():
            raise ValueError(
                f"unknown backend {name!r}; known: "
                f"{OP_REGISTRY.declared_backends()}")
        self.name = name
        self._tokens: list[contextvars.Token] = []

    def __enter__(self):
        self._tokens.append(_ACTIVE_BACKEND.set(self.name))
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_BACKEND.reset(self._tokens.pop())
        return False


# ----------------------------------------------------------------------
# Sample-input generators (deterministic; dtype is the caller's policy)
# ----------------------------------------------------------------------
def _segment_layouts():
    """Named ``(segment_ids, num_segments)`` edge layouts every segment
    kernel must survive: dense, empty-segments-interleaved-with-large,
    single-segment, and the zero-length index array."""
    rng = np.random.default_rng(20260808)
    dense = rng.integers(0, 5, size=18).astype(np.int64)
    interleaved = np.repeat(np.arange(6), [4, 0, 7, 0, 1, 3]).astype(np.int64)
    rng.shuffle(interleaved)
    return [
        ("dense", dense, 5),
        ("interleaved_empty", interleaved, 6),
        ("single_segment", np.zeros(7, dtype=np.int64), 1),
        ("empty", np.zeros(0, dtype=np.int64), 3),
    ]


def _segment_row_samples(dtype):
    """Row payloads for the per-item segment reductions (sum/mean/max)."""
    rng = np.random.default_rng(7)
    out = []
    for label, ids, n in _segment_layouts():
        data = rng.normal(size=(ids.size, 3)).astype(dtype)
        out.append(SampleInput(label, data, (ids, n)))
    flat_ids = np.array([1, 0, 1, 2, 0], dtype=np.int64)
    out.append(SampleInput("flat", rng.normal(size=5).astype(dtype),
                           (flat_ids, 3)))
    return out


def _segment_score_samples(dtype):
    """1-D score payloads for ``segment_softmax`` (empty layout excluded:
    a softmax over zero rows is vacuous and fuzz-covered elsewhere)."""
    rng = np.random.default_rng(11)
    out = []
    for label, ids, n in _segment_layouts():
        if ids.size == 0:
            continue
        out.append(SampleInput(label, rng.normal(size=ids.size).astype(dtype),
                               (ids, n)))
    return out


def _gather_segment_samples(dtype):
    """Per-segment payloads broadcast to items (``gather_segments``)."""
    rng = np.random.default_rng(13)
    out = []
    for label, ids, n in _segment_layouts():
        data = rng.normal(size=(n, 3)).astype(dtype)
        out.append(SampleInput(label, data, (ids, n)))
    return out


def _gather_samples(dtype):
    """Row payloads + repeating index arrays for the plain row gather."""
    rng = np.random.default_rng(17)
    out = []
    for label, ids, n in _segment_layouts():
        data = rng.normal(size=(n, 3)).astype(dtype)
        out.append(SampleInput(label, data, (ids,)))
    return out


def _scatter_add_samples(dtype):
    """Gradient payloads scattered into rows (the gather adjoint)."""
    rng = np.random.default_rng(19)
    out = []
    for label, ids, n in _segment_layouts():
        data = rng.normal(size=(ids.size, 3)).astype(dtype)
        out.append(SampleInput(label, data, (ids, n)))
    return out


def _matmul_samples(dtype):
    """Differentiated left operands with fixed right operands (via args):
    matrix@matrix, matrix@vector and vector@matrix layouts."""
    rng = np.random.default_rng(53)
    mat = rng.normal(size=(4, 3)).astype(dtype)
    return [
        SampleInput("mat_mat", mat, (rng.normal(size=(3, 2)).astype(dtype),)),
        SampleInput("mat_vec", mat, (rng.normal(size=3).astype(dtype),)),
        SampleInput("vec_mat", rng.normal(size=4).astype(dtype),
                    (rng.normal(size=(4, 2)).astype(dtype),)),
    ]


def _concat_samples(dtype):
    """Differentiated left halves with fixed right halves (via args),
    joined along the trailing and the leading axis, plus 1-D payloads."""
    rng = np.random.default_rng(59)
    return [
        SampleInput("last_axis", rng.normal(size=(3, 4)).astype(dtype),
                    (rng.normal(size=(3, 2)).astype(dtype), -1)),
        SampleInput("leading_axis", rng.normal(size=(2, 3)).astype(dtype),
                    (rng.normal(size=(4, 3)).astype(dtype), 0)),
        SampleInput("vector", rng.normal(size=5).astype(dtype),
                    (rng.normal(size=3).astype(dtype), 0)),
    ]


def _lstm_scan_samples(dtype):
    """Short scans differentiated w.r.t. the stacked ``(T, B, I)`` step
    inputs; the packed ``[i, f, g, o]`` gate weights ride along as fixed
    args, scaled to keep the gates in their smooth region."""
    rng = np.random.default_rng(61)
    w_x = (0.4 * rng.normal(size=(3, 8))).astype(dtype)
    w_h = (0.4 * rng.normal(size=(2, 8))).astype(dtype)
    bias = rng.normal(size=8).astype(dtype)
    return [
        SampleInput("scan", rng.normal(size=(3, 4, 3)).astype(dtype),
                    (w_x, w_h, bias)),
        SampleInput("single_step", rng.normal(size=(1, 4, 3)).astype(dtype),
                    (w_x, w_h, bias)),
    ]


def _elementwise_samples(low, high, seed):
    """A ``samples(dtype)`` generator over ``uniform(low, high)`` values
    — the bounds keep each op inside its smooth, finite-difference-safe
    domain (positive for log/sqrt, away from 0 for relu/abs kinks)."""
    def build(dtype):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(low, high, size=(4, 3)).astype(dtype)
        vector = rng.uniform(low, high, size=6).astype(dtype)
        return [SampleInput("matrix", matrix), SampleInput("vector", vector)]
    return build


def _signed_elementwise_samples(seed):
    """Signed values with magnitude >= 0.5: exercises both branches of
    relu/abs while staying clear of the non-differentiable kink at 0."""
    def build(dtype):
        rng = np.random.default_rng(seed)
        magnitude = rng.uniform(0.5, 2.0, size=(4, 3))
        sign = np.where(rng.uniform(size=(4, 3)) < 0.5, -1.0, 1.0)
        return [SampleInput("signed", (magnitude * sign).astype(dtype))]
    return build


# ----------------------------------------------------------------------
# Elementwise reference ops (single canonical implementation each)
# ----------------------------------------------------------------------
def _ew_exp(x):
    """exp(x); adjoint g * exp(x)."""
    return as_tensor(x).exp()


def _ew_log(x):
    """log(x); adjoint g / x."""
    return as_tensor(x).log()


def _ew_sqrt(x):
    """sqrt(x); adjoint g / (2 sqrt(x))."""
    return as_tensor(x).sqrt()


def _ew_tanh(x):
    """tanh(x); adjoint g * (1 - tanh(x)^2)."""
    return as_tensor(x).tanh()


def _ew_sigmoid(x):
    """sigmoid(x); adjoint g * s * (1 - s)."""
    return as_tensor(x).sigmoid()


def _ew_relu(x):
    """relu(x); adjoint g * (x > 0)."""
    return as_tensor(x).relu()


def _ew_abs(x):
    """abs(x); adjoint g * sign(x)."""
    return as_tensor(x).abs()


# ----------------------------------------------------------------------
# Structural reference ops (matmul / concat)
# ----------------------------------------------------------------------
def _matmul_ref(x, other):
    """x @ other; adjoints g @ other^T and x^T @ g (outer products in
    the 1-D cases)."""
    return as_tensor(x) @ as_tensor(other)


def _concat_ref(x, other, axis=-1):
    """concatenate([x, other], axis); the adjoint splits g back at the
    operand boundary."""
    return _tensor.concatenate([as_tensor(x), as_tensor(other)], axis=axis)


# ----------------------------------------------------------------------
# The op database.  One register(...) call per op; keep these literal
# (constant names, dict-literal backends) — REP004/REP005/REP008 parse
# them statically.
# ----------------------------------------------------------------------
OP_REGISTRY.register(
    "segment_sum",
    backends={"reduceat": _segment._segment_sum_plan,
              "legacy": _segment._segment_sum_legacy},
    adjoint="dL/dx = g[segment_ids] — a pure row gather",
    samples=_segment_row_samples,
    tolerance=0.0,
)

OP_REGISTRY.register(
    "segment_mean",
    backends={"reduceat": _segment._segment_mean_plan,
              "legacy": _segment._segment_mean_legacy},
    adjoint="dL/dx = (g / counts)[segment_ids] — gather of the scaled grad",
    samples=_segment_row_samples,
    tolerance=0.0,
)

OP_REGISTRY.register(
    "segment_max",
    backends={"reduceat": _segment._segment_max_plan,
              "legacy": _segment._segment_max_legacy},
    adjoint="dL/dx = g[segment_ids] / ties where x == max(segment), else 0",
    samples=_segment_row_samples,
    tolerance=0.0,
)

OP_REGISTRY.register(
    "segment_softmax",
    backends={"reduceat": _segment._segment_softmax_plan,
              "legacy": _segment._segment_softmax_legacy},
    adjoint="dL/dx = p * (g - sum_segment(g * p)) — composed from "
            "max/gather/exp/sum sub-adjoints",
    samples=_segment_score_samples,
    tolerance=1e-12,
    gradcheck_tol=1e-4,
)

OP_REGISTRY.register(
    "gather_segments",
    backends={"reduceat": _segment._gather_segments_plan,
              "legacy": _segment._gather_segments_legacy},
    adjoint="dL/dx = segment_sum(g) — scatter-add of g onto segments",
    samples=_gather_segment_samples,
    tolerance=0.0,
)

OP_REGISTRY.register(
    "scatter_add",
    backends={"reduceat": _segment._scatter_add_plan,
              "legacy": _tensor._legacy_scatter_add},
    adjoint="linear map: the adjoint of scatter-add is the row gather "
            "(this op IS the gather adjoint; it is not itself taped)",
    samples=_scatter_add_samples,
    tolerance=0.0,
    differentiable=False,
)

OP_REGISTRY.register(
    "gather",
    backends={"legacy": _tensor._gather},
    adjoint="dL/dx = scatter_add(g, index, num_rows) — duplicate indices "
            "accumulate in appearance order",
    samples=_gather_samples,
    tolerance=0.0,
    waiver="backend-independent forward (x.data[index]); the adjoint "
           "dispatches through the registered scatter_add",
)

OP_REGISTRY.register(
    "exp",
    backends={"legacy": _ew_exp},
    adjoint="dL/dx = g * exp(x)",
    samples=_elementwise_samples(-2.0, 2.0, 23),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "log",
    backends={"legacy": _ew_log},
    adjoint="dL/dx = g / x",
    samples=_elementwise_samples(0.5, 3.0, 29),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "sqrt",
    backends={"legacy": _ew_sqrt},
    adjoint="dL/dx = g / (2 sqrt(x)), clamped away from 0",
    samples=_elementwise_samples(0.5, 3.0, 31),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "tanh",
    backends={"legacy": _ew_tanh},
    adjoint="dL/dx = g * (1 - tanh(x)^2)",
    samples=_elementwise_samples(-2.0, 2.0, 37),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "sigmoid",
    backends={"legacy": _ew_sigmoid},
    adjoint="dL/dx = g * sigmoid(x) * (1 - sigmoid(x))",
    samples=_elementwise_samples(-3.0, 3.0, 41),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "relu",
    backends={"legacy": _ew_relu},
    adjoint="dL/dx = g * (x > 0)",
    samples=_signed_elementwise_samples(43),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "abs",
    backends={"legacy": _ew_abs},
    adjoint="dL/dx = g * sign(x)",
    samples=_signed_elementwise_samples(47),
    tolerance=0.0,
    waiver="elementwise reference op; single canonical implementation",
)

OP_REGISTRY.register(
    "matmul",
    backends={"legacy": _matmul_ref},
    adjoint="dL/dx = g @ other^T, dL/dother = x^T @ g (outer products "
            "in the 1-D cases)",
    samples=_matmul_samples,
    tolerance=0.0,
    waiver="backend-independent BLAS matmul (Tensor.__matmul__); single "
           "canonical implementation",
)

OP_REGISTRY.register(
    "concat",
    backends={"legacy": _concat_ref},
    adjoint="dL/dx, dL/dother = exact axis-slices of g, split at the "
            "operand boundary",
    samples=_concat_samples,
    tolerance=0.0,
    waiver="backend-independent np.concatenate forward; single canonical "
           "implementation",
)

OP_REGISTRY.register(
    "lstm_scan",
    backends={"legacy": _rnn._lstm_scan_reference},
    adjoint="reverse scan through the gates: the tape reference composes "
            "per-step sigmoid/tanh/matmul adjoints",
    samples=_lstm_scan_samples,
    tolerance=0.0,
    gradcheck_tol=1e-4,
    float32_tol=5e-4,
    waiver="tape-composition reference; the compiled backend fills its "
           "fused scan kernel at import when a C compiler is available",
)


# ----------------------------------------------------------------------
# Public entry points: one cached registry dispatcher per op.
# ----------------------------------------------------------------------
segment_sum = OP_REGISTRY.dispatcher("segment_sum")
segment_mean = OP_REGISTRY.dispatcher("segment_mean")
segment_max = OP_REGISTRY.dispatcher("segment_max")
segment_softmax = OP_REGISTRY.dispatcher("segment_softmax")
gather_segments = OP_REGISTRY.dispatcher("gather_segments")
scatter_add = OP_REGISTRY.dispatcher("scatter_add")
gather = OP_REGISTRY.dispatcher("gather")
matmul = OP_REGISTRY.dispatcher("matmul")
concat = OP_REGISTRY.dispatcher("concat")
lstm_scan = OP_REGISTRY.dispatcher("lstm_scan")


# ----------------------------------------------------------------------
# Compiled backend: fill the declared slot when a C compiler exists.
# The import is deliberately last — the kernels register against the
# completed table above, and a late fill invalidates the dispatch caches
# (see register_backend).
# ----------------------------------------------------------------------
from . import compiled as _compiled  # noqa: E402

_compiled.register_compiled_backend(OP_REGISTRY)
