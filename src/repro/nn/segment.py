"""Segment-reduction kernel layer: ``SegmentPlan`` + plan-aware autograd ops.

Every hot path of the reproduction — neighborhood aggregation in all conv
candidates, ``segment_softmax`` (GAT, Set2Set), and every graph readout —
bottoms out in segment reductions.  The legacy implementations in
:mod:`repro.nn.tensor` use ``np.add.at`` / ``np.maximum.at``, which are an
order of magnitude slower than ``np.add.reduceat`` / ``np.maximum.reduceat``
over sorted rows.  This module provides the fast backend:

* :class:`SegmentPlan` — a precomputed, reusable reduction plan for one
  index array: stable sort permutation, per-segment counts / start offsets
  / ``indptr``, the non-empty segment list, and the count reciprocals used
  by :func:`segment_mean` (computed once, not per call).
* plan-aware :func:`segment_sum` / :func:`segment_mean` /
  :func:`segment_max` / :func:`segment_softmax` / :func:`gather_segments`
  — autograd ops over the plan's sorted layout whose gradients stay pure
  gathers/scatters through the plan.  Each accepts either a
  :class:`SegmentPlan` or a plain index array (a throwaway plan is built on
  the fly), so standalone callers keep the historical
  ``op(x, segment_ids, num_segments)`` signature.

Kernel execution
----------------
The plan's sorted-run structure (``indptr`` / ``starts``) is exactly the
row-pointer layout of a CSR selection matrix, and modern numpy's
``ufunc.at`` fast paths mean a naive ``np.add.reduceat`` sweep no longer
beats ``np.add.at``.  The sum/mean kernels therefore execute the reduceat
recurrence as a cached CSR matvec (``scipy.sparse``) when scipy is
available — bit-identical to the sequential ``np.add.at`` accumulation,
since the stable sort preserves each segment's appearance order — and fall
back to ``np.add.reduceat`` over sorted rows otherwise.  ``segment_max``
runs a rank-sliced "vertical" max across segments (one vectorized pass per
within-segment rank, indices precomputed in the plan), switching to
``np.maximum.reduceat`` when segments are long and few.

Plan contract
-------------
A plan is a pure function of ``(segment_ids, num_segments)`` and is valid
for any tensor whose leading dimension equals ``plan.num_items``:

* **Reuse** — a plan may be reused across calls, ops, epochs and models, as
  long as the index array it was built from is unchanged.  ``Batch`` caches
  an edge-destination plan and a node->graph plan precisely because its
  arrays are frozen after collation; ``DataLoader(cache=True)`` therefore
  amortizes plan construction across all epochs and across the
  searcher/evolution/finetune phases of a run.
* **Invalidation** — there is none in place: plans hold copies of nothing
  and snapshot views of nothing, but they do capture the *values* of the
  index array at build time.  If you mutate ``segment_ids``,
  ``edge_index`` or the batch vector afterwards, build a new plan (for
  ``Batch``, build a new batch; batches are treated as immutable).
* **Determinism** — the sort is stable, so rows of the same segment are
  reduced in their original relative order; plan-aware and plain-index
  call paths produce bit-identical outputs and gradients.

The legacy ``np.add.at`` ops remain available as a reference backend for
differential testing: ``with use_backend("legacy"): ...`` routes every op
through :mod:`repro.nn.tensor`'s implementations.  Backend selection
lives in :mod:`repro.nn.ops`: this module registers one plan-backed and
one legacy implementation per op in the :data:`~repro.nn.ops.OP_REGISTRY`
table, and the public names (``segment_sum`` et al., ``use_backend``,
``active_backend``) are re-exported registry dispatchers — there is no
inline backend branching here.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np

from . import tensor as _tensor
from .policy import active_dtype, active_workspace, workspace_zeros
from .tensor import Tensor, as_tensor

try:  # scipy ships in the image; the kernels degrade gracefully without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only on scipy-free installs
    _sparse = None

#: scipy's raw CSR mat-multivec kernel (what ``csr @ dense`` calls after
#: allocating its result).  Resolved defensively — it is a private module —
#: so the workspace fast path can accumulate A@X straight into a leased,
#: zeroed buffer; absent, workspace runs still work, they just let scipy
#: allocate the matvec result.
if _sparse is not None:
    try:
        from scipy.sparse import _sparsetools
        _csr_matvecs = getattr(_sparsetools, "csr_matvecs", None)
    except ImportError:  # pragma: no cover - layout varies across scipy
        _csr_matvecs = None
else:  # pragma: no cover - exercised only on scipy-free installs
    _csr_matvecs = None

__all__ = [
    "SegmentPlan",
    "as_plan",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "gather_segments",
    "scatter_add",
    "use_backend",
    "active_backend",
]

#: Above this within-segment rank count the vertical max (one pass per
#: rank) degenerates; long, few segments are ``reduceat``'s good regime.
_VERTICAL_MAX_RANK_LIMIT = 64


class SegmentPlan:
    """Precomputed reduction plan for one ``(segment_ids, num_segments)``.

    Attributes
    ----------
    segment_ids:
        The original ``(num_items,)`` int64 index array.
    order:
        Stable argsort of ``segment_ids`` — rows of the same segment keep
        their original relative order, so ``reduceat`` reduces them in the
        same sequence ``np.add.at`` would.
    counts / offsets / indptr:
        Per-segment row count, start offset in the sorted layout
        (``offsets[s] = sum(counts[:s])``, defined for empty segments too),
        and the CSR row-pointer ``indptr = [0, cumsum(counts)]``.
    segments / starts:
        Non-empty segment ids and their row starts — the ``indices``
        argument handed to ``np.*.reduceat`` (strictly increasing).
    inv_counts:
        ``1 / max(counts, 1)`` — the :func:`segment_mean` reciprocals,
        computed once here instead of per call (float64;
        :meth:`inv_counts_for` serves other policy dtypes).
    full:
        True when every segment is non-empty (the common case for
        node->graph plans), enabling a copy-free ``reduceat`` result.

    The CSR selection matrix and the vertical-max rank slices are built
    lazily on first use and cached for the plan's lifetime; the CSR matrix
    and mean reciprocals are cached *per execution dtype*, so a plan shared
    between a float64 eval path and a float32 serving path serves both
    without per-call casts.
    """

    __slots__ = ("segment_ids", "num_segments", "num_items", "order",
                 "counts", "offsets", "indptr", "segments", "starts",
                 "inv_counts", "full", "_csr_by_dtype", "_inv_by_dtype",
                 "_rank_slices")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
        num_segments = int(num_segments)
        if num_segments < 0:
            raise ValueError("num_segments must be non-negative")
        if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
            raise ValueError(
                f"segment ids out of range [0, {num_segments}): "
                f"({ids.min()}, {ids.max()})"
            )
        self.segment_ids = ids
        self.num_segments = num_segments
        self.num_items = int(ids.size)
        self.order = np.argsort(ids, kind="stable")
        counts = np.bincount(ids, minlength=num_segments)
        self.counts = counts
        cumulative = np.cumsum(counts)
        self.offsets = cumulative - counts
        self.indptr = np.concatenate([[0], cumulative])
        self.segments = np.flatnonzero(counts)
        self.starts = self.offsets[self.segments]
        self.inv_counts = 1.0 / np.maximum(counts, 1.0)
        self.full = self.segments.size == num_segments
        self._csr_by_dtype: dict = {}
        self._inv_by_dtype: dict = {}
        self._rank_slices = None

    def csr(self, dtype=np.float64):
        """Cached ``(num_segments, num_items)`` CSR selection matrix.

        Row ``s`` selects the rows of segment ``s`` in their original
        appearance order, so ``csr @ x`` accumulates exactly like
        ``np.add.at``.  One matrix is cached per execution dtype (its
        ``data`` array of ones must match the operand dtype or scipy
        upcasts the whole matvec).  Returns None when scipy is
        unavailable.
        """
        if _sparse is None:
            return None
        key = np.dtype(dtype).str
        csr = self._csr_by_dtype.get(key)
        if csr is None:
            # Benign race under concurrent first use: both threads build
            # the same matrix; last write wins, both results are valid.
            csr = _sparse.csr_matrix(
                (np.ones(self.num_items, dtype=dtype), self.order,
                 self.indptr),
                shape=(self.num_segments, self.num_items),
            )
            self._csr_by_dtype[key] = csr
        return csr

    def inv_counts_for(self, dtype) -> np.ndarray:
        """:attr:`inv_counts` in the requested execution dtype (cached)."""
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self.inv_counts
        cached = self._inv_by_dtype.get(dtype.str)
        if cached is None:
            cached = self.inv_counts.astype(dtype)
            self._inv_by_dtype[dtype.str] = cached
        return cached

    def rank_slices(self) -> list:
        """Cached vertical-max passes: ``(segment ids, sorted-row positions)``
        of every segment's rank-r row, for r = 1 .. max_count-1."""
        if self._rank_slices is None:
            max_count = int(self.counts.max()) if self.counts.size else 0
            slices = []
            for rank in range(1, max_count):
                sel = np.flatnonzero(self.counts > rank)
                slices.append((sel, self.offsets[sel] + rank))
            self._rank_slices = slices
        return self._rank_slices

    def __repr__(self) -> str:
        return (f"SegmentPlan(num_items={self.num_items}, "
                f"num_segments={self.num_segments}, full={self.full})")


def as_plan(index, num_segments: int | None = None) -> SegmentPlan:
    """Coerce ``index`` (plan or index array) to a :class:`SegmentPlan`."""
    if isinstance(index, SegmentPlan):
        if num_segments is not None and int(num_segments) != index.num_segments:
            raise ValueError(
                f"plan covers {index.num_segments} segments, caller asked for {num_segments}"
            )
        return index
    if num_segments is None:
        raise ValueError("num_segments is required when passing a plain index array")
    return SegmentPlan(index, num_segments)


def _ids_of(index, num_segments: int | None) -> tuple[np.ndarray, int]:
    """``(segment_ids, num_segments)`` from a plan or a plain index array."""
    if isinstance(index, SegmentPlan):
        return index.segment_ids, index.num_segments
    if num_segments is None:
        raise ValueError("num_segments is required when passing a plain index array")
    return np.asarray(index, dtype=np.int64), int(num_segments)


def _reduce_sum_data(x_data: np.ndarray, plan: SegmentPlan) -> np.ndarray:
    """Per-segment sum of ``x_data`` rows (CSR matvec, reduceat fallback).

    Both paths accumulate each segment's rows in original appearance
    order, exactly matching the sequential ``np.add.at`` reference.  The
    output dtype follows ``x_data`` (the active policy's dtype on the
    forward path).  When the active policy carries a workspace pool and
    scipy's raw ``csr_matvecs`` kernel is importable, the matvec
    accumulates into a leased, zeroed workspace buffer instead of letting
    scipy allocate — same kernel, same accumulation order, no allocation
    at steady state.
    """
    dtype = x_data.dtype
    tail = x_data.shape[1:]
    if plan.starts.size == 0:
        return workspace_zeros((plan.num_segments,) + tail, dtype)
    csr = plan.csr(dtype)
    if csr is not None:
        pool = active_workspace()
        if pool is not None and _csr_matvecs is not None:
            flat = x_data.reshape(plan.num_items, -1)
            if not flat.flags.c_contiguous:
                flat = np.ascontiguousarray(flat)
            n_vecs = flat.shape[1]
            out = pool.zeros((plan.num_segments, n_vecs), dtype)
            _csr_matvecs(plan.num_segments, plan.num_items, n_vecs,
                         csr.indptr, csr.indices, csr.data,
                         flat.ravel(), out.ravel())
            return out.reshape((plan.num_segments,) + tail)
        if x_data.ndim <= 2:
            return csr @ x_data
        flat = csr @ x_data.reshape(plan.num_items, -1)
        return flat.reshape((plan.num_segments,) + tail)
    sums = np.add.reduceat(x_data[plan.order], plan.starts, axis=0)
    if plan.full:
        return sums
    out = workspace_zeros((plan.num_segments,) + tail, dtype)
    out[plan.segments] = sums
    return out


def _reduce_max_data(x_data: np.ndarray, plan: SegmentPlan) -> np.ndarray:
    """Per-segment max of ``x_data`` rows (empty segments yield zeros).

    Output dtype follows ``x_data``; under a workspace policy both the
    output and the sorted-row staging buffer are leased from the pool.
    """
    dtype = x_data.dtype
    out = workspace_zeros((plan.num_segments,) + x_data.shape[1:], dtype)
    if plan.starts.size == 0:
        return out
    max_count = int(plan.counts.max())
    if max_count <= _VERTICAL_MAX_RANK_LIMIT:
        # Vertical max: seed with each segment's rank-0 row, then fold in
        # one vectorized pass per remaining within-segment rank.
        pool = active_workspace()
        if pool is not None:
            # mode="clip" skips numpy's bounds-check temporary; plan.order
            # is a permutation, so clipping never changes an index.
            xs = np.take(x_data, plan.order, axis=0, mode="clip",
                         out=pool.empty(x_data.shape, dtype))
        else:
            xs = x_data[plan.order]
        out[plan.segments] = xs[plan.starts]
        for sel, pos in plan.rank_slices():
            out[sel] = np.maximum(out[sel], xs[pos])
        return out
    maxs = np.maximum.reduceat(x_data[plan.order], plan.starts, axis=0)
    if plan.full:
        return maxs
    out[plan.segments] = maxs
    return out


def _segment_sum_plan(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Sum rows of ``x`` per segment; ``index`` is a plan or an id array.

    Forward is the plan's cached CSR matvec (sorted-row ``reduceat``
    without scipy); the adjoint is the same pure gather ``g[segment_ids]``
    as the legacy op.
    """
    x = as_tensor(x)
    plan = as_plan(index, num_segments)
    out_data = _reduce_sum_data(x.data, plan)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g[plan.segment_ids])

    return Tensor._result(out_data, (x,), "segment_sum", backward)


def _segment_sum_legacy(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Legacy ``np.add.at`` segment sum (plan-or-ids calling convention)."""
    ids, n = _ids_of(index, num_segments)
    return _tensor._legacy_segment_sum(as_tensor(x), ids, n)


def _segment_mean_plan(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Mean-pool rows per segment (empty segments yield zeros).

    The count reciprocals come precomputed from the plan, so repeated calls
    (every SAGE layer, every mean readout, every epoch) do not rebuild a
    ``bincount`` + reciprocal tensor.
    """
    x = as_tensor(x)
    plan = as_plan(index, num_segments)
    inv = plan.inv_counts_for(x.data.dtype).reshape(
        (plan.num_segments,) + (1,) * (x.ndim - 1))
    sums = _reduce_sum_data(x.data, plan)
    if active_workspace() is not None:
        # The sum buffer is a workspace lease unique to this pass — scale
        # it in place rather than allocating the mean.
        out_data = np.multiply(sums, inv, out=sums)
    else:
        out_data = sums * inv

    def backward(g):
        if x.requires_grad:
            x._accumulate((g * inv)[plan.segment_ids])

    return Tensor._result(out_data, (x,), "segment_mean", backward)


def _segment_mean_legacy(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Legacy segment mean (plan-or-ids calling convention)."""
    ids, n = _ids_of(index, num_segments)
    return _tensor._legacy_segment_mean(as_tensor(x), ids, n)


def _segment_max_plan(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Max-pool rows per segment (empty segments yield zeros).

    Gradient splits evenly between ties inside each segment, exactly like
    the legacy op; the tie counts are themselves one ``reduceat`` sweep.
    """
    x = as_tensor(x)
    plan = as_plan(index, num_segments)
    out_data = _reduce_max_data(x.data, plan)

    def backward(g):
        if not x.requires_grad:
            return
        winners = x.data == out_data[plan.segment_ids]
        tie_counts = np.maximum(
            _reduce_sum_data(winners.astype(x.data.dtype), plan), 1.0)
        x._accumulate(np.where(
            winners, g[plan.segment_ids] / tie_counts[plan.segment_ids], 0.0))

    return Tensor._result(out_data, (x,), "segment_max", backward)


def _segment_max_legacy(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Legacy ``np.maximum.at`` segment max (plan-or-ids calling convention)."""
    ids, n = _ids_of(index, num_segments)
    return _tensor._legacy_segment_max(as_tensor(x), ids, n)


def _gather_segments_plan(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Row-gather ``x[segment_ids]`` with a plan-backed scatter adjoint.

    Forward is identical to the plain row gather; the adjoint — a
    scatter-add of the output gradient back onto the segments — runs
    through the plan's sum kernel instead of ``np.add.at``.  Use it when
    the gather index *is* a plan's segment-id array (broadcasting per-node
    state to edges, per-graph state to nodes).
    """
    x = as_tensor(x)
    plan = as_plan(index, num_segments)
    out_data = x.data[plan.segment_ids]

    def backward(g):
        if x.requires_grad:
            x._accumulate(_reduce_sum_data(
                np.asarray(g, dtype=x.data.dtype), plan))

    return Tensor._result(out_data, (x,), "gather_segments", backward)


def _gather_segments_legacy(x: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Legacy gather_segments: the plain row gather with np.add.at adjoint."""
    ids, _ = _ids_of(index, num_segments)
    return _tensor._gather(as_tensor(x), ids)


# ----------------------------------------------------------------------
# Repeated-index scatter plans (gather / __getitem__ adjoints)
# ----------------------------------------------------------------------
#: Two-touch LRU of scatter plans keyed by index-array *storage*:
#: ``(id(root base), data pointer, strides, shape, dtype, num_segments)``.
#: Keying by storage instead of object identity makes repeated views hit —
#: ``batch.x[:, 0]`` builds a fresh view object per forward, but its base,
#: pointer and strides are stable for a cached batch.  The value holds a
#: weakref to the root base: a dead (or id-recycled) base invalidates the
#: entry.  Entries are created on first sight with no plan (``None``) and
#: only pay plan construction on the *second* touch, so one-shot index
#: arrays (a fresh SortPool ordering) never pay for a plan they would use
#: once; ``False`` marks arrays that cannot be planned (negative indices).
_SCATTER_PLAN_CAPACITY = 256
_scatter_plan_lock = threading.Lock()
_scatter_plans: "OrderedDict[tuple, tuple[weakref.ref, SegmentPlan | None | bool]]" = (
    OrderedDict())


def _scatter_key(ids: np.ndarray, num_segments: int):
    """Storage-identity key for ``ids`` (and its weakref-able root base)."""
    target = ids
    while isinstance(target.base, np.ndarray):
        target = target.base
    if target.base is not None:
        # Rooted in a non-ndarray buffer (mmap, bytes): not weakref-trackable.
        return None, None
    return (id(target), ids.__array_interface__["data"][0], ids.strides,
            ids.shape, ids.dtype.str, int(num_segments)), target


def _repeated_index_plan(ids: np.ndarray, num_segments: int) -> SegmentPlan | None:
    """The cached scatter plan for ``ids``, or None to use ``np.add.at``."""
    key, target = _scatter_key(ids, num_segments)
    if key is None:
        return None
    with _scatter_plan_lock:
        entry = _scatter_plans.get(key)
        if entry is not None:
            ref, plan = entry
            if ref() is target:
                _scatter_plans.move_to_end(key)
                if plan is not None:
                    return plan if plan is not False else None
            else:  # base died; id()s may have been recycled — rebuild
                del _scatter_plans[key]
                entry = None
    if entry is None:
        try:
            ref = weakref.ref(target)
        except TypeError:  # pragma: no cover - ndarrays are weakref-able
            return None
        with _scatter_plan_lock:
            while len(_scatter_plans) >= _SCATTER_PLAN_CAPACITY:
                _scatter_plans.popitem(last=False)
            _scatter_plans.setdefault(key, (ref, None))
        return None
    # Second touch: the array repeats — build (and keep) its plan.
    if ids.size and ids.min() < 0:
        plan = False  # negative indices: numpy-valid, plan-invalid
    else:
        plan = SegmentPlan(ids, num_segments)
        # Warm the kernel cache in the dtype this path will run in: the
        # second touch proved the index repeats.
        plan.csr(active_dtype())
    with _scatter_plan_lock:
        while len(_scatter_plans) >= _SCATTER_PLAN_CAPACITY:
            _scatter_plans.popitem(last=False)
        _scatter_plans[key] = (weakref.ref(target), plan)
    return plan if plan is not False else None


def _scatter_add_plan(g, index: np.ndarray, num_rows: int) -> np.ndarray:
    """Sum rows of ``g`` into ``num_rows`` buckets selected by ``index``.

    The adjoint of a row gather: ``out[index[i]] += g[i]``, duplicate
    indices accumulating in appearance order.  Repeated index arrays
    (embedding-id columns of cached batches, reused top-k selections) are
    recognized by storage identity and served through a cached
    :class:`SegmentPlan` — bit-identical to ``np.add.at`` because the
    plan's stable sort preserves each bucket's appearance order.  First
    sightings and negative indices take the plain ``np.add.at`` scatter.

    The storage key inherits the plan layer's immutability contract:
    *don't mutate a repeated index array in place* (``idx[:] = ...``
    keeps the same base/pointer/strides, so the cached plan would go
    stale and scatter into the old buckets).  Rebind a fresh array
    instead — collated batches and embedding-id columns already satisfy
    this, being frozen after collation.
    """
    # Dtype-preserving: a float operand scatters in its own dtype with no
    # forced-upcast copy; only non-float payloads (int one-hots from
    # integer getitem adjoints) are promoted, to the policy dtype.
    g = np.asarray(g)
    if g.dtype.kind != "f":
        g = g.astype(active_dtype())
    index = np.asarray(index, dtype=np.int64)
    plan = None
    if index.ndim == 1:
        plan = _repeated_index_plan(index, num_rows)
    if plan is not None:
        return _reduce_sum_data(g, plan)
    out = workspace_zeros((num_rows,) + g.shape[index.ndim:], g.dtype)
    np.add.at(out, index, g)
    return out


def _segment_softmax_plan(scores: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Softmax of ``scores`` grouped by segment (per-destination attention).

    Canonical implementation for GAT, Set2Set and any attention fusion: the
    per-segment max is subtracted as a constant for numerical stability;
    gradients flow through the exponential and normalizer exactly.  When a
    plain index array is given, one plan is built here and shared by the
    max / sum / gather sub-ops.
    """
    scores = as_tensor(scores)
    plan = as_plan(index, num_segments)
    seg_max = _segment_max_plan(scores, plan).detach()
    shifted = scores - _gather_segments_plan(seg_max, plan)
    exp = shifted.exp()
    denom = _segment_sum_plan(exp, plan)
    return exp / (_gather_segments_plan(denom, plan) + 1e-16)


def _segment_softmax_legacy(scores: Tensor, index, num_segments: int | None = None) -> Tensor:
    """Legacy segment softmax: the same composition over the legacy sub-ops."""
    scores = as_tensor(scores)
    seg_max = _segment_max_legacy(scores, index, num_segments).detach()
    shifted = scores - _gather_segments_legacy(seg_max, index, num_segments)
    exp = shifted.exp()
    denom = _segment_sum_legacy(exp, index, num_segments)
    return exp / (_gather_segments_legacy(denom, index, num_segments) + 1e-16)


#: Public op surface served by the registry dispatchers in
#: :mod:`repro.nn.ops` (PEP 562 lazy re-export — importing ``ops`` here
#: eagerly would be circular: ops registers the implementations above).
_OPS_FORWARDED = frozenset({
    "segment_sum", "segment_mean", "segment_max", "segment_softmax",
    "gather_segments", "scatter_add", "use_backend", "active_backend",
})


def __getattr__(name):
    if name in _OPS_FORWARDED:
        from . import ops as _ops

        return getattr(_ops, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
