"""``repro.nn`` — numpy autograd + neural-net substrate (PyTorch stand-in)."""

from . import functional, init
from .layers import (
    BatchNorm1d,
    Bottleneck,
    Dropout,
    Embedding,
    Identity,
    Linear,
    MLP,
    StochNorm1d,
)
from .module import Module, ModuleDict, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .rnn import LSTM, LSTMCell
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from .segment import (
    SegmentPlan,
    active_backend,
    as_plan,
    gather_segments,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    use_backend,
)
from .serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    gather,
    no_grad,
    stack,
    where,
)

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "no_grad",
    "concatenate",
    "stack",
    "where",
    "gather",
    "gather_segments",
    "SegmentPlan",
    "as_plan",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "use_backend",
    "active_backend",
    "Module",
    "ModuleDict",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "BatchNorm1d",
    "StochNorm1d",
    "Bottleneck",
    "Identity",
    "LSTM",
    "LSTMCell",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
]
