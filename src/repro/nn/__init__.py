"""``repro.nn`` — numpy autograd + neural-net substrate (PyTorch stand-in)."""

from . import functional, init
from .layers import (
    BatchNorm1d,
    Bottleneck,
    Dropout,
    Embedding,
    Identity,
    Linear,
    MLP,
    StochNorm1d,
)
from .module import Module, ModuleDict, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .rnn import LSTM, LSTMCell
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from .serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    gather,
    no_grad,
    segment_max,
    segment_mean,
    segment_sum,
    stack,
    where,
)

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "no_grad",
    "concatenate",
    "stack",
    "where",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "Module",
    "ModuleDict",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "BatchNorm1d",
    "StochNorm1d",
    "Bottleneck",
    "Identity",
    "LSTM",
    "LSTMCell",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
]
