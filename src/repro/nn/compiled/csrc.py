"""C source templates + ctypes signatures for the compiled kernel backend.

One translation unit holds every kernel in float64 *and* float32
variants (``@T@``/``@S@`` template substitution), so the build manager
compiles exactly one shared object per (source, compiler, flags) key.

Exactness contract — these kernels are *bit-identical* to the reduceat /
legacy reference implementations, not merely close:

* The segment kernels walk the plan's stable ``order``/``indptr`` layout
  and accumulate each segment **sequentially in appearance order** —
  the same association the legacy ``np.add.at`` / ``np.add.reduceat``
  reference uses, so every partial sum rounds identically.
* ``segment_max`` folds with ``(v > acc || isnan(v))`` which reproduces
  ``np.maximum``'s NaN-propagating semantics exactly.
* The LSTM kernels fuse only *pure arithmetic* (the ``1/(1+e)`` sigmoid
  finish and the gate/state combine); transcendentals (``exp``/``tanh``)
  stay in numpy on the Python side so their libm rounding matches the
  tape reference.  All literals are cast to ``@T@`` so the float32
  variant computes in true single precision (no double-rounding drift).
* ``FLAGS`` carries ``-ffp-contract=off``: FMA contraction of
  ``f*c + i*g`` would change the rounding and break bit-parity with the
  reference, which never fuses.
"""

from __future__ import annotations

import ctypes

__all__ = ["FLAGS", "SIGNATURES", "SOURCE"]

#: compile flags — part of the disk-cache key (see build.py).
FLAGS = ("-O3", "-march=native", "-ffp-contract=off", "-shared", "-fPIC")

_PRELUDE = """\
#include <math.h>
#include <stddef.h>
"""

_TEMPLATE = """
/* Per-segment row sums over the plan's stable permutation: segment s owns
   order[indptr[s]:indptr[s+1]], accumulated sequentially in appearance
   order (bit-identical to np.add.reduceat over the sorted copy). */
void segment_sum_@S@(const @T@ *x, const long long *order,
                     const long long *indptr, @T@ *out,
                     ptrdiff_t num_segments, ptrdiff_t d) {
    for (ptrdiff_t s = 0; s < num_segments; s++) {
        @T@ *row = out + s * d;
        for (ptrdiff_t c = 0; c < d; c++) row[c] = (@T@)0.0;
        for (long long j = indptr[s]; j < indptr[s + 1]; j++) {
            const @T@ *src = x + order[j] * d;
            for (ptrdiff_t c = 0; c < d; c++) row[c] += src[c];
        }
    }
}

/* Per-segment row max, seeded with the segment's first row; empty
   segments yield zero rows like the reference.  The (v > acc || isnan(v))
   fold matches np.maximum's NaN propagation. */
void segment_max_@S@(const @T@ *x, const long long *order,
                     const long long *indptr, @T@ *out,
                     ptrdiff_t num_segments, ptrdiff_t d) {
    for (ptrdiff_t s = 0; s < num_segments; s++) {
        @T@ *row = out + s * d;
        long long lo = indptr[s], hi = indptr[s + 1];
        if (lo == hi) {
            for (ptrdiff_t c = 0; c < d; c++) row[c] = (@T@)0.0;
            continue;
        }
        const @T@ *first = x + order[lo] * d;
        for (ptrdiff_t c = 0; c < d; c++) row[c] = first[c];
        for (long long j = lo + 1; j < hi; j++) {
            const @T@ *src = x + order[j] * d;
            for (ptrdiff_t c = 0; c < d; c++) {
                @T@ v = src[c];
                if (v > row[c] || isnan(v)) row[c] = v;
            }
        }
    }
}

/* Row scatter-add in index order — the sequential accumulation
   np.add.at performs, without its per-element dispatch overhead. */
void scatter_add_@S@(const @T@ *g, const long long *index, @T@ *out,
                     ptrdiff_t n, ptrdiff_t num_rows, ptrdiff_t d) {
    for (ptrdiff_t r = 0; r < num_rows * d; r++) out[r] = (@T@)0.0;
    for (ptrdiff_t i = 0; i < n; i++) {
        @T@ *row = out + index[i] * d;
        const @T@ *src = g + i * d;
        for (ptrdiff_t c = 0; c < d; c++) row[c] += src[c];
    }
}

/* LSTM gate assembly: per element, (xw + hw) + bias in the reference
   association, routed by packed slice ([i, f, g, o] along the width)
   into four contiguous per-gate buffers — negated for the sigmoid
   gates, raw for the cell gate.  numpy's exp/tanh run on the buffers
   afterwards: negation of a rounded sum is exact, and numpy's
   transcendentals are elementwise (layout-invariant), so the values
   match the reference's exp-of-negated-slice / tanh-of-slice bitwise. */
void lstm_gates_@S@(const @T@ *xw, const @T@ *hw, const @T@ *bias,
                    @T@ *ni, @T@ *nf, @T@ *g, @T@ *no,
                    ptrdiff_t rows, ptrdiff_t hidden) {
    ptrdiff_t width = 4 * hidden;
    for (ptrdiff_t r = 0; r < rows; r++) {
        const @T@ *xr = xw + r * width;
        const @T@ *hr = hw + r * width;
        @T@ *ir = ni + r * hidden;
        @T@ *fr = nf + r * hidden;
        @T@ *gr = g + r * hidden;
        @T@ *orow = no + r * hidden;
        for (ptrdiff_t j = 0; j < hidden; j++) {
            ir[j] = -((xr[j] + hr[j]) + bias[j]);
            fr[j] = -((xr[hidden + j] + hr[hidden + j]) + bias[hidden + j]);
            gr[j] = (xr[2 * hidden + j] + hr[2 * hidden + j])
                    + bias[2 * hidden + j];
            orow[j] = -((xr[3 * hidden + j] + hr[3 * hidden + j])
                        + bias[3 * hidden + j]);
        }
    }
}

/* LSTM gate/state combine: ei/ef are exp(-pre_i)/exp(-pre_f) computed by
   numpy, g is the numpy tanh slice.  Pure arithmetic only:
   i = 1/(1+ei), f = 1/(1+ef), c_next = f*c_prev + i*g. */
void lstm_combine_@S@(const @T@ *ei, const @T@ *ef, const @T@ *g,
                      const @T@ *c_prev, @T@ *c_next, ptrdiff_t n) {
    for (ptrdiff_t k = 0; k < n; k++) {
        @T@ i = ((@T@)1.0) / (((@T@)1.0) + ei[k]);
        @T@ f = ((@T@)1.0) / (((@T@)1.0) + ef[k]);
        c_next[k] = f * c_prev[k] + i * g[k];
    }
}

/* LSTM output gate: h = (1/(1+eo)) * tanh(c_next), tanh from numpy. */
void lstm_output_@S@(const @T@ *eo, const @T@ *tc, @T@ *h, ptrdiff_t n) {
    for (ptrdiff_t k = 0; k < n; k++)
        h[k] = (((@T@)1.0) / (((@T@)1.0) + eo[k])) * tc[k];
}
"""


def _instantiate(ctype: str, suffix: str) -> str:
    return _TEMPLATE.replace("@T@", ctype).replace("@S@", suffix)


#: the full translation unit handed to the compiler.
SOURCE = (_PRELUDE
          + _instantiate("double", "f64")
          + _instantiate("float", "f32"))

_F64 = ctypes.POINTER(ctypes.c_double)
_F32 = ctypes.POINTER(ctypes.c_float)
_I64 = ctypes.POINTER(ctypes.c_longlong)
_SIZE = ctypes.c_ssize_t


def _signatures_for(ptr, suffix):
    return {
        f"segment_sum_{suffix}": (ptr, _I64, _I64, ptr, _SIZE, _SIZE),
        f"segment_max_{suffix}": (ptr, _I64, _I64, ptr, _SIZE, _SIZE),
        f"scatter_add_{suffix}": (ptr, _I64, ptr, _SIZE, _SIZE, _SIZE),
        f"lstm_gates_{suffix}": (ptr, ptr, ptr, ptr, ptr, ptr, ptr,
                                 _SIZE, _SIZE),
        f"lstm_combine_{suffix}": (ptr, ptr, ptr, ptr, ptr, _SIZE),
        f"lstm_output_{suffix}": (ptr, ptr, ptr, _SIZE),
    }


#: exported symbol -> ctypes argtypes; restype is always None.
SIGNATURES = {**_signatures_for(_F64, "f64"), **_signatures_for(_F32, "f32")}
