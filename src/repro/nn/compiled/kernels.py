"""ctypes wrappers: compiled forward kernels behind the registry seam.

Each public ``_*_compiled`` function is the ``compiled``-backend
implementation registered for one op.  The contract mirrors the
plan-backed (reduceat) implementations exactly:

* **Bit-identical values.**  The C kernels accumulate in the reference
  order (see :mod:`.csrc`), so outputs — and through them the adjoints —
  match the reduceat backend bit for bit.  The registered tolerances
  stay ``0.0``.
* **Silent per-call fallback.**  When the kernel library is unavailable
  (no compiler, failed build, unsupported dtype/layout) every wrapper
  delegates to the plan implementation for that call, so a process that
  registered the backend optimistically still serves correct results.
* **Same autograd shape.**  Backward closures reproduce the plan
  implementations' adjoints, reducing gradients through the compiled
  kernels where profitable (the fused gather+reduce).
"""

from __future__ import annotations

import ctypes

import numpy as np

from . import build
from .. import rnn as _rnn
from .. import segment as _segment
from ..policy import active_dtype, active_workspace
from ..tensor import Tensor, as_tensor, is_grad_enabled

_SUFFIXES = {np.dtype(np.float64): "f64", np.dtype(np.float32): "f32"}
_POINTERS = {np.dtype(np.float64): ctypes.POINTER(ctypes.c_double),
             np.dtype(np.float32): ctypes.POINTER(ctypes.c_float)}
_I64_P = ctypes.POINTER(ctypes.c_longlong)


def _kernel(name, dtype):
    """The loaded C symbol ``{name}_{f64|f32}``, or None (-> fallback)."""
    suffix = _SUFFIXES.get(np.dtype(dtype))
    if suffix is None:
        return None
    lib = build.load()
    if lib is None:
        return None
    return getattr(lib, f"{name}_{suffix}")


def _fp(array):
    return array.ctypes.data_as(_POINTERS[array.dtype])


def _ip(array):
    return array.ctypes.data_as(_I64_P)


def _plan_index(plan):
    """The plan's (order, indptr) as contiguous int64 for the C side."""
    order, indptr = plan.order, plan.indptr
    if order.dtype != np.int64 or not order.flags.c_contiguous:
        order = np.ascontiguousarray(order, dtype=np.int64)
    if indptr.dtype != np.int64 or not indptr.flags.c_contiguous:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    return order, indptr


def _flatten_rows(data, num_rows):
    """C-contiguous ``(num_rows, d)`` view/copy of ``data`` and ``d``."""
    d = 1
    for dim in data.shape[1:]:
        d *= int(dim)
    flat = data.reshape(num_rows, d)
    if not flat.flags.c_contiguous:
        flat = np.ascontiguousarray(flat)
    return flat, d


def _alloc_rows(rows, cols, dtype):
    """Output buffer, leased from the live workspace pool when one is
    active (the kernels overwrite every element, so ``empty`` is safe)."""
    pool = active_workspace()
    if pool is not None:
        return pool.empty((rows, cols), dtype)
    return np.empty((rows, cols), dtype=dtype)


def _segment_reduce_data(name, data, plan, fallback):
    """Run a ``(x, order, indptr, out, S, d)`` C kernel over the plan."""
    kernel = _kernel(name, data.dtype)
    if kernel is None or data.shape[0] != plan.num_items:
        return fallback(data, plan)
    flat, d = _flatten_rows(data, plan.num_items)
    order, indptr = _plan_index(plan)
    out = _alloc_rows(plan.num_segments, d, data.dtype)
    kernel(_fp(flat), _ip(order), _ip(indptr), _fp(out),
           plan.num_segments, d)
    return out.reshape((plan.num_segments,) + data.shape[1:])


def _segment_sum_data(data, plan):
    return _segment_reduce_data("segment_sum", data, plan,
                                _segment._reduce_sum_data)


def _segment_max_data(data, plan):
    return _segment_reduce_data("segment_max", data, plan,
                                _segment._reduce_max_data)


def _segment_sum_compiled(x, index, num_segments=None):
    """Compiled per-segment sum (CSR-style walk of the plan's
    order/indptr); adjoint gathers the segment gradient per item."""
    x = as_tensor(x)
    plan = _segment.as_plan(index, num_segments)
    out_data = _segment_sum_data(x.data, plan)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g[plan.segment_ids])

    return Tensor._result(out_data, (x,), "segment_sum", backward)


def _segment_mean_compiled(x, index, num_segments=None):
    """Compiled segment mean: the compiled sum scaled by the plan's
    cached inverse counts — the same multiply as the plan impl."""
    x = as_tensor(x)
    plan = _segment.as_plan(index, num_segments)
    inv = plan.inv_counts_for(x.data.dtype).reshape(
        (plan.num_segments,) + (1,) * (x.data.ndim - 1))
    sums = _segment_sum_data(x.data, plan)
    if active_workspace() is not None:
        out_data = np.multiply(sums, inv, out=sums)
    else:
        out_data = sums * inv

    def backward(g):
        if x.requires_grad:
            x._accumulate((g * inv)[plan.segment_ids])

    return Tensor._result(out_data, (x,), "segment_mean", backward)


def _segment_max_compiled(x, index, num_segments=None):
    """Compiled per-segment max; the adjoint splits gradient across
    ties exactly like the plan implementation (tie counts reduced
    through the compiled sum kernel)."""
    x = as_tensor(x)
    plan = _segment.as_plan(index, num_segments)
    out_data = _segment_max_data(x.data, plan)

    def backward(g):
        if not x.requires_grad:
            return
        winners = x.data == out_data[plan.segment_ids]
        tie_counts = np.maximum(
            _segment_sum_data(winners.astype(x.data.dtype), plan), 1.0)
        x._accumulate(np.where(
            winners, g[plan.segment_ids] / tie_counts[plan.segment_ids], 0.0))

    return Tensor._result(out_data, (x,), "segment_max", backward)


def _gather_segments_compiled(x, index, num_segments=None):
    """Fused gather+reduce: the forward is the plain row gather (numpy
    fancy indexing is already a single C pass); the *adjoint* is where
    the fusion pays — the incoming gradient reduces straight back
    per segment through the compiled sum kernel."""
    x = as_tensor(x)
    plan = _segment.as_plan(index, num_segments)
    out_data = x.data[plan.segment_ids]

    def backward(g):
        if x.requires_grad:
            x._accumulate(_segment_sum_data(
                np.asarray(g, dtype=x.data.dtype), plan))

    return Tensor._result(out_data, (x,), "gather_segments", backward)


def _segment_softmax_compiled(scores, index, num_segments=None):
    """Numerically-stable segment softmax composed from the compiled
    sub-kernels — the identical composition (and therefore identical
    bits) as the plan implementation."""
    scores = as_tensor(scores)
    plan = _segment.as_plan(index, num_segments)
    seg_max = _segment_max_compiled(scores, plan).detach()
    shifted = scores - _gather_segments_compiled(seg_max, plan)
    exp = shifted.exp()
    denom = _segment_sum_compiled(exp, plan)
    return exp / (_gather_segments_compiled(denom, plan) + 1e-16)


def _scatter_add_compiled(g, index, num_rows):
    """Compiled row scatter-add (plain ndarray in/out, like the other
    backends).  Falls back for layouts the C kernel does not cover:
    non-1-D indices, broadcasting payloads, or out-of-range/negative
    indices (which ``np.add.at`` wraps/raises but raw C would corrupt
    memory on)."""
    g = np.asarray(g)
    if g.dtype.kind != "f":
        g = g.astype(active_dtype())
    index = np.asarray(index)
    num_rows = int(num_rows)
    kernel = _kernel("scatter_add", g.dtype)
    if (kernel is None or index.ndim != 1 or g.ndim < 1
            or g.shape[0] != index.shape[0]
            or (index.shape[0] > 0
                and (int(index.min()) < 0 or int(index.max()) >= num_rows))):
        return _segment._scatter_add_plan(g, index, num_rows)
    if index.dtype != np.int64 or not index.flags.c_contiguous:
        index = np.ascontiguousarray(index, dtype=np.int64)
    flat, d = _flatten_rows(g, index.shape[0])
    out = _alloc_rows(num_rows, d, g.dtype)
    kernel(_fp(flat), _ip(index), _fp(out), index.shape[0], num_rows, d)
    return out.reshape((num_rows,) + g.shape[1:])


def _state_data(state, batch, hidden, dtype):
    """Initial h/c as a contiguous ndarray in the scan dtype."""
    if state is None:
        return np.zeros((batch, hidden), dtype=dtype)
    data = state.data if isinstance(state, Tensor) else np.asarray(state)
    return np.ascontiguousarray(data, dtype=dtype)


def _lstm_scan_compiled(x, w_x, w_h, bias, h0=None, c0=None,
                        return_state=False):
    """Fused LSTM-step scan: per-step GEMMs and numpy transcendentals
    mirror the tape reference exactly (same association, same
    stridedness), with the pure-arithmetic gate finish and state update
    fused into C — compiled with ``-ffp-contract=off`` so no FMA can
    change the reference's rounding.  Grad-tracked inputs delegate to
    the tape reference: the fused scan is an inference-path kernel."""
    x = as_tensor(x)
    w_x = as_tensor(w_x)
    w_h = as_tensor(w_h)
    bias = as_tensor(bias)
    operands = (x, w_x, w_h, bias) + tuple(
        t for t in (h0, c0) if isinstance(t, Tensor))
    xd, wxd, whd, bd = x.data, w_x.data, w_h.data, bias.data
    combine = _kernel("lstm_combine", xd.dtype)
    if ((is_grad_enabled() and any(t.requires_grad for t in operands))
            or combine is None or xd.ndim != 3 or wxd.ndim != 2
            or whd.ndim != 2 or bd.ndim != 1 or xd.shape[0] == 0
            or not (xd.dtype == wxd.dtype == whd.dtype == bd.dtype)):
        return _rnn._lstm_scan_reference(x, w_x, w_h, bias, h0=h0, c0=c0,
                                         return_state=return_state)
    output = _kernel("lstm_output", xd.dtype)
    gates_kernel = _kernel("lstm_gates", xd.dtype)
    steps, batch = xd.shape[0], xd.shape[1]
    hidden = whd.shape[0]
    dtype = xd.dtype
    if not xd.flags.c_contiguous:
        xd = np.ascontiguousarray(xd)
    if not bd.flags.c_contiguous:
        bd = np.ascontiguousarray(bd)
    h = _state_data(h0, batch, hidden, dtype)
    # c is mutated in place through the buffer swap — never alias c0.
    c = np.array(_state_data(c0, batch, hidden, dtype))
    # The input projection has no step-to-step dependency: one stacked
    # GEMM over all steps (bitwise identical to the per-step products —
    # the contraction axis and its accumulation order are unchanged).
    xw = np.matmul(xd, wxd)
    out = np.empty((steps, batch, hidden), dtype=dtype)
    hw = np.empty((batch, 4 * hidden), dtype=dtype)
    ei = np.empty((batch, hidden), dtype=dtype)
    ef = np.empty((batch, hidden), dtype=dtype)
    eo = np.empty((batch, hidden), dtype=dtype)
    gg = np.empty((batch, hidden), dtype=dtype)
    c_next = np.empty((batch, hidden), dtype=dtype)
    tc = np.empty((batch, hidden), dtype=dtype)
    n = batch * hidden
    hw_p, bd_p = _fp(hw), _fp(bd)
    ei_p, ef_p, eo_p, gg_p = _fp(ei), _fp(ef), _fp(eo), _fp(gg)
    tc_p = _fp(tc)
    c_p, c_next_p = _fp(c), _fp(c_next)
    for t in range(steps):
        # One C pass assembles the reference association
        # ((x[t] @ w_x) + (h @ w_h)) + bias per gate slice, pre-negated
        # for the sigmoid gates (mirroring Tensor.sigmoid's
        # np.exp(-view)); numpy's exp/tanh then run on the contiguous
        # buffers — layout-invariant, so bitwise the reference values.
        np.matmul(h, whd, out=hw)
        gates_kernel(_fp(xw[t]), hw_p, bd_p,
                     ei_p, ef_p, gg_p, eo_p, batch, hidden)
        np.exp(ei, out=ei)
        np.exp(ef, out=ef)
        np.exp(eo, out=eo)
        np.tanh(gg, out=gg)
        combine(ei_p, ef_p, gg_p, c_p, c_next_p, n)
        np.tanh(c_next, out=tc)
        output(eo_p, tc_p, _fp(out[t]), n)
        h = out[t]
        c, c_next = c_next, c
        c_p, c_next_p = c_next_p, c_p
    result = Tensor(out)
    if return_state:
        return result, Tensor(h), Tensor(c)
    return result
