"""Compiled C kernel backend: JIT-built ctypes kernels for the op registry.

PR 9 declared a ``compiled`` backend slot in :data:`repro.nn.ops.OP_REGISTRY`
with the fallback chain ``compiled -> reduceat -> legacy``; this package
fills it.  :mod:`.csrc` holds the dtype-templated C source and ctypes
signatures, :mod:`.build` compiles it at first use with the discovered
system compiler and caches the shared object on disk, and
:mod:`.kernels` wraps the symbols as registry-shaped implementations
that are **bit-identical** to the reduceat backend (and silently
delegate to it per call whenever the library is unavailable).

Registration happens once at the end of ``repro.nn.ops``'s import via
:func:`register_compiled_backend`; availability is observable through
:func:`compiled_status` (also surfaced by ``InferenceService.stats()``
and the ``backend-info`` CLI target).
"""

from __future__ import annotations

from . import build
from . import kernels as _kernels

__all__ = ["build", "compiled_status", "register_compiled_backend"]


def compiled_status() -> dict:
    """Availability + build state of the compiled backend.

    ``state`` is ``"disabled"`` (REPRO_COMPILED_DISABLE set),
    ``"unavailable"`` (no compiler discovered, or the build was attempted
    and failed) or ``"available"``; the remaining keys report the
    compiler, cache location and build/cache counters from
    :func:`.build.status`, plus the ops the registry currently holds
    direct compiled implementations for.
    """
    info = build.status()
    # late import: ops imports this package at the end of its own import.
    from ..ops import OP_REGISTRY

    info["ops"] = tuple(sorted(
        name for name in OP_REGISTRY.ops()
        if "compiled" in OP_REGISTRY.get(name).impls))
    return info


def register_compiled_backend(registry) -> None:
    """Fill the declared ``compiled`` backend slot with the JIT kernels.

    Called once at the end of ``repro.nn.ops``'s import.  When no system
    C compiler is discoverable (or ``REPRO_COMPILED_DISABLE`` is set),
    nothing is registered: the declared slot keeps resolving through its
    ``reduceat`` fallback and ``OP_REGISTRY.backends()`` keeps excluding
    ``compiled``, so no suite schedules it.  With a compiler present the
    implementations register eagerly but build lazily — the first kernel
    call compiles the library, and a failed build degrades to the same
    reduceat results per call.
    """
    if build.find_compiler() is None:
        return
    registry.register_backend(
        "compiled", fallback="reduceat",
        impls={
            "segment_sum": _kernels._segment_sum_compiled,
            "segment_mean": _kernels._segment_mean_compiled,
            "segment_max": _kernels._segment_max_compiled,
            "segment_softmax": _kernels._segment_softmax_compiled,
            "gather_segments": _kernels._gather_segments_compiled,
            "scatter_add": _kernels._scatter_add_compiled,
            "lstm_scan": _kernels._lstm_scan_compiled,
        })
