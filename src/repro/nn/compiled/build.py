"""JIT build manager: compile-at-first-use, disk-cached ctypes kernels.

The kernel library is built lazily the first time :func:`load` is called
(i.e. the first time a compiled-backend op actually runs), with the
discovered system compiler, and cached on disk keyed by
``sha256(source, compiler id, flags)`` so later processes just
``dlopen`` the existing shared object.  Every failure mode — no
compiler, compile error, unloadable object — degrades to ``load()``
returning ``None``, which the kernel wrappers treat as "fall back to the
plan/reduceat implementation"; nothing is ever written to the build
cache unless a compiler was actually discovered.

Env knobs (read per call, so tests can monkeypatch the environment
without re-importing):

``REPRO_COMPILED_DISABLE``
    any non-empty value disables compiler discovery entirely.
``REPRO_CC``
    compiler executable (name resolved on PATH, or an absolute path).
``REPRO_COMPILED_CACHE``
    build-cache directory (default ``~/.cache/repro/compiled``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

from . import csrc

__all__ = ["cache_dir", "find_compiler", "load", "reset", "status"]

#: guards every mutation of the build state below (rank 58 in the serve
#: lock hierarchy — a leaf: nothing is acquired while holding it).
_build_lock = threading.Lock()

#: one-shot build state: ``attempted`` (build tried), ``compiler``
#: (discovered executable or None), ``lib`` (loaded CDLL or None),
#: ``build_failed``, ``disk_cache_hit``.
_STATE: dict = {}


def find_compiler():
    """Path of the system C compiler, or None when unavailable/disabled."""
    if os.environ.get("REPRO_COMPILED_DISABLE"):
        return None
    override = os.environ.get("REPRO_CC")
    if override:
        if os.path.sep in override:
            return override if os.path.exists(override) else None
        return shutil.which(override)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> str:
    """Directory holding the compiled shared objects."""
    override = os.environ.get("REPRO_COMPILED_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "compiled")


def _compiler_id(compiler: str) -> str:
    """Version-qualified compiler identity for the cache key."""
    try:
        probe = subprocess.run([compiler, "--version"], capture_output=True,
                               text=True, timeout=60, check=False)
        first = (probe.stdout or probe.stderr or "").splitlines()
        return f"{compiler} {first[0] if first else ''}"
    except (OSError, subprocess.SubprocessError):
        return compiler


def _build(compiler: str):
    """Compile (or reuse from disk) and dlopen the kernel library.

    Returns ``(lib_or_None, disk_cache_hit)``.  Runs under
    ``_build_lock``; touches the cache directory only on a miss.
    """
    key = hashlib.sha256("\x00".join(
        [csrc.SOURCE, _compiler_id(compiler), " ".join(csrc.FLAGS)]
    ).encode()).hexdigest()[:20]
    directory = cache_dir()
    so_path = os.path.join(directory, f"repro_kernels_{key}.so")
    hit = os.path.exists(so_path)
    if not hit:
        os.makedirs(directory, exist_ok=True)
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=directory)
        tmp_so = c_path[:-2] + ".so"
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(csrc.SOURCE)
            result = subprocess.run(
                [compiler, *csrc.FLAGS, c_path, "-o", tmp_so],
                capture_output=True, timeout=600, check=False)
            if result.returncode != 0:
                return None, hit
            # atomic publish: concurrent processes racing on the same key
            # all land on a byte-equivalent object.
            os.replace(tmp_so, so_path)
        finally:
            for leftover in (c_path, tmp_so):
                try:
                    os.remove(leftover)
                except OSError:
                    pass
    lib = ctypes.CDLL(so_path)
    for symbol, argtypes in csrc.SIGNATURES.items():
        kernel = getattr(lib, symbol)
        kernel.restype = None
        kernel.argtypes = list(argtypes)
    return lib, hit


def load():
    """The kernel library, building it on first call; None on any failure.

    Callers fall back to the plan/reduceat implementations when this
    returns None — silently, per call, exactly as the registry's
    fallback chain resolves when the backend never registered.
    """
    if _STATE.get("attempted"):
        return _STATE.get("lib")
    with _build_lock:
        if not _STATE.get("attempted"):
            compiler = find_compiler()
            lib, hit = None, False
            if compiler is not None:
                try:
                    lib, hit = _build(compiler)
                except (OSError, ValueError, subprocess.SubprocessError,
                        AttributeError):
                    lib = None
            _STATE["compiler"] = compiler
            _STATE["lib"] = lib
            _STATE["disk_cache_hit"] = hit
            _STATE["build_failed"] = compiler is not None and lib is None
            _STATE["attempted"] = True
    return _STATE.get("lib")


def status() -> dict:
    """Snapshot of the build-manager state (never triggers a build)."""
    disabled = bool(os.environ.get("REPRO_COMPILED_DISABLE"))
    attempted = bool(_STATE.get("attempted"))
    compiler = _STATE.get("compiler") if attempted else find_compiler()
    lib = _STATE.get("lib")
    if disabled:
        state = "disabled"
    elif compiler is None or (attempted and lib is None):
        state = "unavailable"
    else:
        state = "available"
    return {
        "state": state,
        "compiler": compiler,
        "cache_dir": cache_dir(),
        "flags": " ".join(csrc.FLAGS),
        "attempted": attempted,
        "loaded": lib is not None,
        "build_failed": bool(_STATE.get("build_failed")),
        "disk_cache_hit": bool(_STATE.get("disk_cache_hit")),
    }


def reset() -> None:
    """Forget the loaded library and build outcome (tests/benchmarks)."""
    with _build_lock:
        _STATE.clear()
