"""Inference memory plane: execution dtype policy + preallocated workspaces.

Everything in the stack historically computed in numpy's default
``float64`` — :class:`~repro.nn.tensor.Tensor` hard-coded the dtype, every
segment kernel allocated ``float64`` outputs, and collation inherited it.
That is the right default for *training* (bit-exact differential testing,
robust finite-difference gradcheck), but it doubles the memory bandwidth
of every hot CSR matvec at inference time for no accuracy benefit.  This
module makes the choice explicit:

* :class:`ExecutionPolicy` — the dtype every new tensor / kernel output is
  materialized in, plus an optional :class:`WorkspacePool` of preallocated
  forward buffers.  The active policy lives on a ``ContextVar`` alongside
  the existing ``no_grad`` / ``use_backend`` state, so it is context-local
  and thread-isolated: a serving worker running float32 forwards cannot
  perturb a float64 training loop in another thread.
* :func:`use_dtype` / :func:`serving_policy` — the two entry points.
  ``with use_dtype("float32"): ...`` runs a block in float32;
  ``with serving_policy(): ...`` is the serving preset (float32 +
  workspace reuse).  Policies are re-entrant context managers.
* :class:`WorkspacePool` — keyed ``(shape, dtype)`` arenas of preallocated
  output buffers with hit/miss stats.  Arenas are **per-thread**, so a
  pool shared by a whole worker pool needs no cross-thread coordination on
  the hot path; :meth:`WorkspacePool.begin_pass` rewinds the calling
  thread's cursors at the start of each forward so a steady-state stream
  of identical micro-batches allocates nothing.

Dtype contract per path
-----------------------
* **Train / eval (default policy)** — float64, bit-identical to the
  pre-policy behaviour.  The tier-2 differential suite pins this.
* **Serving (``serving_policy()``)** — float32, toleranced parity against
  the float64 path (see ``tests/serve/test_memory_plane.py`` and the
  committed accuracy delta in ``benchmarks/BENCH_memory_plane.json``).

Workspace buffer lifetime
-------------------------
A leased buffer is valid until the *same thread's* next
:meth:`~WorkspacePool.begin_pass`.  The serve layer begins a pass per
batch forward and copies logits out before the next one, which is exactly
the contract; anything that must outlive the pass must be copied.
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ExecutionPolicy",
    "WorkspacePool",
    "active_policy",
    "active_dtype",
    "active_workspace",
    "use_policy",
    "use_dtype",
    "serving_policy",
    "workspace_zeros",
    "workspace_empty",
    "cast_module",
]

#: dtypes a policy may select; everything else (float16 without kernels,
#: integer compute) would silently break the autograd contract.
_ALLOWED_DTYPES = ("float64", "float32")


class WorkspacePool:
    """Preallocated forward workspaces, keyed by ``(shape, dtype)``.

    Each thread leases from its own arena (created on first use), so
    concurrent serving workers sharing one pool never contend — the only
    lock guards the arena registry used by :meth:`stats`.  Within one
    *pass* (one forward), repeated leases of the same key return
    *distinct* buffers (a per-key cursor advances); across passes the
    cursors rewind and the same buffers are reused, so a steady-state
    stream of identical micro-batches hits 100% after the first pass.
    """

    def __init__(self):
        self._local = threading.local()
        # Arena registry for stats aggregation only — never on the lease
        # path after a thread's first lease.
        self._arenas: list[dict] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _arena(self) -> dict:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = {"buffers": {}, "cursors": {}, "hits": 0, "misses": 0,
                     "passes": 0}
            self._local.arena = arena
            with self._lock:
                self._arenas.append(arena)
        return arena

    def begin_pass(self) -> None:
        """Rewind the calling thread's lease cursors (start of a forward).

        Buffers leased before this call are considered dead: they may be
        handed out again by subsequent leases on this thread.
        """
        arena = self._arena()
        arena["cursors"].clear()
        arena["passes"] += 1

    def _lease(self, shape: tuple, dtype) -> tuple[np.ndarray, bool]:
        arena = self._arena()
        key = (tuple(shape), np.dtype(dtype).str)
        slot = arena["cursors"].get(key, 0)
        arena["cursors"][key] = slot + 1
        stack = arena["buffers"].setdefault(key, [])
        if slot < len(stack):
            arena["hits"] += 1
            return stack[slot], True
        arena["misses"] += 1
        buffer = np.empty(shape, dtype=dtype)
        stack.append(buffer)
        return buffer, False

    def empty(self, shape, dtype) -> np.ndarray:
        """Lease an uninitialized buffer (contents arbitrary on a hit)."""
        return self._lease(shape, dtype)[0]

    def zeros(self, shape, dtype) -> np.ndarray:
        """Lease a zero-filled buffer (hits are re-zeroed in place)."""
        buffer, hit = self._lease(shape, dtype)
        if hit:
            buffer.fill(0)
        else:
            buffer.fill(0)
        return buffer

    def reset(self) -> None:
        """Drop every arena's buffers (all threads) and zero the stats."""
        with self._lock:
            arenas = list(self._arenas)
        for arena in arenas:
            arena["buffers"].clear()
            arena["cursors"].clear()
            arena["hits"] = 0
            arena["misses"] = 0
            arena["passes"] = 0

    def stats(self) -> dict:
        """Aggregated hit/miss/byte counters across every thread's arena."""
        with self._lock:
            arenas = list(self._arenas)
        hits = sum(a["hits"] for a in arenas)
        misses = sum(a["misses"] for a in arenas)
        total = hits + misses
        held = sum(buf.nbytes for a in arenas
                   for stack in a["buffers"].values() for buf in stack)
        return {
            "threads": len(arenas),
            "hits": hits,
            "misses": misses,
            "passes": sum(a["passes"] for a in arenas),
            "hit_rate": (hits / total) if total else 0.0,
            "buffers": sum(len(stack) for a in arenas
                           for stack in a["buffers"].values()),
            "held_bytes": int(held),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"WorkspacePool(buffers={stats['buffers']}, "
                f"hits={stats['hits']}, misses={stats['misses']})")


@dataclass(frozen=True)
class ExecutionPolicy:
    """The dtype/allocation policy a block of work executes under.

    Parameters
    ----------
    dtype:
        ``"float64"`` (training default) or ``"float32"`` (serving).
        Every new :class:`~repro.nn.tensor.Tensor` and every segment-kernel
        output under the policy is materialized in this dtype.
    workspace:
        Optional :class:`WorkspacePool`; when set, forward-path kernels
        lease output buffers from it instead of allocating.

    A policy instance is a re-entrant, context-local context manager —
    ``with policy: ...`` activates it for the current thread/context only.
    One instance may be entered concurrently from many threads (the
    serving worker pool shares a single policy): the nesting token stack
    is thread-local, so each thread pushes and pops only its own tokens.
    """

    dtype: str = "float64"
    workspace: WorkspacePool | None = None

    def __post_init__(self):
        if self.dtype not in _ALLOWED_DTYPES:
            raise ValueError(
                f"unsupported policy dtype {self.dtype!r}; "
                f"known: {_ALLOWED_DTYPES}")
        # Cache the numpy dtype object: Tensor construction consults it on
        # every op, so the string -> np.dtype conversion must not recur.
        object.__setattr__(self, "np_dtype", np.dtype(self.dtype))
        object.__setattr__(self, "_tls", threading.local())

    def __enter__(self) -> "ExecutionPolicy":
        stack = getattr(self._tls, "tokens", None)
        if stack is None:
            stack = self._tls.tokens = []
        stack.append(_ACTIVE_POLICY.set(self))
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_POLICY.reset(self._tls.tokens.pop())
        return False


#: Context-local active policy.  Fresh threads start from the default
#: (float64, no workspace) — they do not inherit the spawning thread's
#: serving policy, mirroring ``no_grad`` / ``use_backend`` semantics.
_DEFAULT_POLICY = ExecutionPolicy()
_ACTIVE_POLICY: contextvars.ContextVar[ExecutionPolicy] = contextvars.ContextVar(
    "repro_execution_policy", default=_DEFAULT_POLICY)


def active_policy() -> ExecutionPolicy:
    """The policy tensor ops currently execute under (context-local)."""
    return _ACTIVE_POLICY.get()


def active_dtype() -> np.dtype:
    """The active policy's numpy dtype (``float64`` unless overridden)."""
    return _ACTIVE_POLICY.get().np_dtype


def active_workspace() -> WorkspacePool | None:
    """The active policy's workspace pool, or None when allocation is live."""
    return _ACTIVE_POLICY.get().workspace


def use_policy(policy: ExecutionPolicy) -> ExecutionPolicy:
    """Activate an existing policy: ``with use_policy(p): ...``.

    Purely a readability alias — the policy object *is* the context
    manager; this returns it unchanged.
    """
    return policy


def use_dtype(dtype: str) -> ExecutionPolicy:
    """A policy selecting only a dtype (no workspace pool).

    ``with use_dtype("float32"): ...`` runs the block's tensor ops and
    kernel allocations in float32.
    """
    return ExecutionPolicy(dtype=str(dtype))


def serving_policy(dtype: str = "float32",
                   workspace: bool = True) -> ExecutionPolicy:
    """The serving preset: float32 compute + preallocated workspaces.

    Each call builds a fresh :class:`WorkspacePool` (arenas are
    per-thread, so one policy may back a whole worker pool).
    """
    return ExecutionPolicy(dtype=str(dtype),
                           workspace=WorkspacePool() if workspace else None)


# ----------------------------------------------------------------------
# allocation helpers: the one place forward kernels get output buffers
# ----------------------------------------------------------------------
def workspace_zeros(shape, dtype) -> np.ndarray:
    """A zeroed output buffer: leased from the active workspace pool when
    one is installed, freshly allocated otherwise."""
    pool = _ACTIVE_POLICY.get().workspace
    if pool is not None:
        return pool.zeros(shape, dtype)
    return np.zeros(shape, dtype=dtype)


def workspace_empty(shape, dtype) -> np.ndarray:
    """An uninitialized output buffer (every element will be written)."""
    pool = _ACTIVE_POLICY.get().workspace
    if pool is not None:
        return pool.empty(shape, dtype)
    return np.empty(shape, dtype=dtype)


def cast_module(module, dtype) -> "module":
    """Cast every parameter and floating buffer of ``module`` in place.

    This is the one-time registration cast the serving
    :class:`~repro.serve.registry.ModelRegistry` applies to frozen models:
    after it, a forward under the matching :func:`use_dtype` policy runs
    entirely in ``dtype`` with no per-op casting copies.  Integer buffers
    (index tables) are left untouched.  Gradients are dropped — a cast
    model is a serving artifact, not a training state.
    """
    np_dtype = np.dtype(dtype)
    if np_dtype.name not in _ALLOWED_DTYPES:
        raise ValueError(f"unsupported cast dtype {dtype!r}")
    for _, param in module.named_parameters():
        if param.data.dtype != np_dtype:
            param.data = param.data.astype(np_dtype)
        param.grad = None
    for owner, full in module._iter_buffer_owners():
        leaf = full.rsplit(".", 1)[-1]
        value = owner._buffers[leaf]
        if value.dtype.kind == "f" and value.dtype != np_dtype:
            owner.set_buffer(leaf, value.astype(np_dtype))
    return module
