"""Message-passing convolutions: GCN, GraphSAGE, GIN, GAT (paper Sec. II-A1).

All four follow the molecular-GNN convention of Hu et al. (2019): bond
(edge) features are embedded per layer and *added* to the source node's
message before aggregation.  Each convolution maps

``(h: (N, d) Tensor, edge_index: (2, E), edge_attr: (E, 2)) -> (N, d) Tensor``

so layers are interchangeable inside the encoder — which is what lets the
paper treat ``phi_conv`` as a transferred black box (Table III: the backbone
convolution candidate set is exactly ``{pre_trained}``).

Every layer aggregates through the plan-backed segment kernels in
:mod:`repro.nn.segment`.  Callers that hold a :class:`~repro.graph.graph.Batch`
pass it as ``ctx`` so the batch's cached edge-destination plan (and GCN's
cached degree norms) are reused across layers, candidates and epochs;
standalone calls build one throwaway plan per forward, shared by every
segment op inside that forward.
"""

from __future__ import annotations

import numpy as np

from ..graph.molecule import MASK_BOND_ID, NUM_BOND_TAGS, NUM_BOND_TYPES
from ..nn import (
    Embedding,
    Linear,
    MLP,
    Module,
    Parameter,
    SegmentPlan,
    Tensor,
    concatenate,
    gather,
    gather_segments,
    segment_mean,
    segment_softmax,
    segment_sum,
)

__all__ = ["BondEncoder", "GINConv", "GCNConv", "SAGEConv", "GATConv", "make_conv",
           "CONV_TYPES", "segment_softmax"]

CONV_TYPES = ["gin", "gcn", "sage", "gat"]


def _edge_plan(ctx, edge_index: np.ndarray, num_nodes: int) -> SegmentPlan:
    """The batch's cached destination plan, or a fresh standalone one."""
    if ctx is not None:
        return ctx.edge_plan()
    return SegmentPlan(edge_index[1], num_nodes)


def _gather_src(h, edge_index: np.ndarray, ctx):
    """Gather source-node features, scatter-adjoint through the batch's
    cached source plan when one is available."""
    if ctx is not None:
        return gather_segments(h, ctx.edge_src_plan())
    return gather(h, edge_index[0])


class BondEncoder(Module):
    """Embed bond type + bond tag into the node feature space (summed)."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        # +1 slot for the mask token used by masked-component pre-training.
        self.type_embedding = Embedding(NUM_BOND_TYPES + 1, dim, rng)
        self.tag_embedding = Embedding(NUM_BOND_TAGS, dim, rng)

    def forward(self, edge_attr: np.ndarray) -> Tensor:
        return self.type_embedding(edge_attr[:, 0]) + self.tag_embedding(edge_attr[:, 1])


class GINConv(Module):
    """Graph Isomorphism Network layer (Xu et al., 2019).

    ``M_v = SUM(h_u + e_uv); h_v = MLP((1 + eps) h_v + M_v)`` with a
    learnable scalar ``eps`` balancing self vs. neighbor messages.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.bond_encoder = BondEncoder(dim, rng)
        self.mlp = MLP([dim, 2 * dim, dim], rng)
        self.eps = Parameter(np.zeros(1))

    def forward(self, h: Tensor, edge_index: np.ndarray, edge_attr: np.ndarray,
                ctx=None) -> Tensor:
        num_nodes = h.shape[0]
        if edge_index.shape[1]:
            messages = _gather_src(h, edge_index, ctx) + self.bond_encoder(edge_attr)
            agg = segment_sum(messages, _edge_plan(ctx, edge_index, num_nodes))
        else:
            agg = Tensor(np.zeros_like(h.data))
        return self.mlp(h * (self.eps + 1.0) + agg)


class GCNConv(Module):
    """GCN layer (Kipf & Welling) with symmetric degree normalization.

    ``h_v = ReLU(W * sum_u 1/sqrt(d_u d_v) (h_u + e_uv))`` with implicit
    self-loops (a degree-normalized self term, no bond embedding).
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.bond_encoder = BondEncoder(dim, rng)
        self.linear = Linear(dim, dim, rng)

    def forward(self, h: Tensor, edge_index: np.ndarray, edge_attr: np.ndarray,
                ctx=None) -> Tensor:
        num_nodes = h.shape[0]
        plan = _edge_plan(ctx, edge_index, num_nodes)
        if ctx is not None:
            inv_sqrt = ctx.gcn_inv_sqrt_deg()
        else:
            inv_sqrt = 1.0 / np.sqrt(plan.counts + 1.0)
        if edge_index.shape[1]:
            norm = inv_sqrt[edge_index[0]] * inv_sqrt[edge_index[1]]
            messages = (_gather_src(h, edge_index, ctx) + self.bond_encoder(edge_attr))
            messages = messages * Tensor(norm[:, None])
            agg = segment_sum(messages, plan)
        else:
            agg = Tensor(np.zeros_like(h.data))
        self_term = h * Tensor(inv_sqrt[:, None] ** 2)
        return self.linear(agg + self_term).relu()


class SAGEConv(Module):
    """GraphSAGE layer: mean-aggregate neighbors, concat with self, project."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.bond_encoder = BondEncoder(dim, rng)
        self.linear = Linear(2 * dim, dim, rng)

    def forward(self, h: Tensor, edge_index: np.ndarray, edge_attr: np.ndarray,
                ctx=None) -> Tensor:
        num_nodes = h.shape[0]
        if edge_index.shape[1]:
            messages = _gather_src(h, edge_index, ctx) + self.bond_encoder(edge_attr)
            agg = segment_mean(messages, _edge_plan(ctx, edge_index, num_nodes))
        else:
            agg = Tensor(np.zeros_like(h.data))
        return self.linear(concatenate([h, agg], axis=-1)).relu()


class GATConv(Module):
    """Graph attention layer (Velickovic et al.) with ``num_heads`` heads.

    Head outputs are averaged (not concatenated) so the layer maps d -> d
    and stays interchangeable with the other convolutions.
    """

    def __init__(self, dim: int, rng: np.random.Generator, num_heads: int = 2,
                 negative_slope: float = 0.2):
        super().__init__()
        self.dim = dim
        self.num_heads = num_heads
        self.negative_slope = negative_slope
        self.bond_encoder = BondEncoder(dim, rng)
        self.proj = Linear(dim, dim * num_heads, rng, bias=False)
        self.att_src = Parameter(np.asarray(
            rng.normal(0.0, 0.1, size=(num_heads, dim))))
        self.att_dst = Parameter(np.asarray(
            rng.normal(0.0, 0.1, size=(num_heads, dim))))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, h: Tensor, edge_index: np.ndarray, edge_attr: np.ndarray,
                ctx=None) -> Tensor:
        num_nodes = h.shape[0]
        heads, dim = self.num_heads, self.dim
        # (N, heads*d) -> (N, H, d); slice k of the flat layout is head k.
        projected = self.proj(h).reshape(num_nodes, heads, dim)
        if not edge_index.shape[1]:
            # No messages to attend over: average all heads' projections
            # (the same head-mean the attention path applies).
            return projected.mean(axis=1) + self.bias
        # One destination plan serves the softmax (max + sum) and the
        # final aggregation — three segment reductions, one sort.
        plan = _edge_plan(ctx, edge_index, num_nodes)
        bond = self.bond_encoder(edge_attr)  # (E, d), shared across heads
        src_feat = _gather_src(projected, edge_index, ctx) + bond.reshape(-1, 1, dim)
        dst_feat = gather_segments(projected, plan)  # both (E, H, d)
        scores = (src_feat * self.att_src).sum(axis=-1) \
            + (dst_feat * self.att_dst).sum(axis=-1)  # (E, H)
        scores = scores.leaky_relu(self.negative_slope)
        attn = segment_softmax(scores, plan)
        weighted = src_feat * attn.reshape(-1, heads, 1)
        agg = segment_sum(weighted, plan)  # (N, H, d)
        return agg.mean(axis=1) + self.bias


def make_conv(conv_type: str, dim: int, rng: np.random.Generator) -> Module:
    """Factory over :data:`CONV_TYPES`."""
    conv_type = conv_type.lower()
    if conv_type == "gin":
        return GINConv(dim, rng)
    if conv_type == "gcn":
        return GCNConv(dim, rng)
    if conv_type == "sage":
        return SAGEConv(dim, rng)
    if conv_type == "gat":
        return GATConv(dim, rng)
    raise ValueError(f"unknown conv type {conv_type!r}; known: {CONV_TYPES}")
