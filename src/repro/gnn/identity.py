"""Identity-augmentation candidates ``phi_id`` (paper Sec. III-B2).

Each candidate combines the incoming representation ``h`` (center node
identity, pre-convolution) with the convolution output ``z``:

* ``zero_aug`` — disabled; keep the pre-trained backbone's flow: ``h <- z``.
* ``identity_aug`` — direct skip connection: ``h <- h + z``.
* ``trans_aug`` — transformed skip: ``h <- g(h) + z`` where ``g`` is a
  parameter-efficient bottleneck (``R^d -> R^m -> R^d``, m << d), initialized
  near-zero so search starts from the pre-trained behaviour.

The paper motivates this dimension by noisy/unreliable neighborhoods and
over-smoothing in some backbones (e.g. GCN): letting some layers re-inject
center-node identity adjusts the message flow per dataset.
"""

from __future__ import annotations

import numpy as np

from ..nn import Bottleneck, Module, Tensor

__all__ = ["ZeroAug", "IdentityAug", "TransAug", "make_identity_aug", "IDENTITY_CANDIDATES"]

IDENTITY_CANDIDATES = ["zero_aug", "identity_aug", "trans_aug"]


class ZeroAug(Module):
    """No augmentation — pass the convolution output through unchanged."""

    def forward(self, h_prev: Tensor, z: Tensor) -> Tensor:
        return z


class IdentityAug(Module):
    """Additive skip connection from the pre-convolution representation."""

    def forward(self, h_prev: Tensor, z: Tensor) -> Tensor:
        return h_prev + z


class TransAug(Module):
    """Bottleneck-transformed skip connection (adapter-style ``g``)."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.transform = Bottleneck(dim, hidden, rng)

    def forward(self, h_prev: Tensor, z: Tensor) -> Tensor:
        return self.transform(h_prev) + z


def make_identity_aug(name: str, dim: int, rng: np.random.Generator,
                      bottleneck: int = 8) -> Module:
    """Factory over :data:`IDENTITY_CANDIDATES`."""
    if name == "zero_aug":
        return ZeroAug()
    if name == "identity_aug":
        return IdentityAug()
    if name == "trans_aug":
        return TransAug(dim, min(bottleneck, max(dim // 2, 1)), rng)
    raise ValueError(f"unknown identity augmentation {name!r}")
