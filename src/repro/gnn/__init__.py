"""``repro.gnn`` — message passing, encoders, fusion, and readout modules."""

from .conv import (
    CONV_TYPES,
    BondEncoder,
    GATConv,
    GCNConv,
    GINConv,
    SAGEConv,
    make_conv,
    segment_softmax,
)
from .encoder import GNNEncoder
from .fusion import FUSION_CANDIDATES, make_fusion
from .identity import IDENTITY_CANDIDATES, IdentityAug, TransAug, ZeroAug, make_identity_aug
from .prediction import GraphPredictionModel
from .readout import READOUT_CANDIDATES, make_readout

__all__ = [
    "CONV_TYPES",
    "BondEncoder",
    "GINConv",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "make_conv",
    "segment_softmax",
    "GNNEncoder",
    "FUSION_CANDIDATES",
    "make_fusion",
    "IDENTITY_CANDIDATES",
    "ZeroAug",
    "IdentityAug",
    "TransAug",
    "make_identity_aug",
    "READOUT_CANDIDATES",
    "make_readout",
    "GraphPredictionModel",
]
