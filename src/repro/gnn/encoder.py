"""K-layer GNN encoder producing per-layer node representations.

Follows the standard molecular pre-training architecture (Hu et al. 2019;
the "classic 5-layer GIN backbone" of paper Fig. 3): atom embeddings,
K message-passing layers each followed by BatchNorm, ReLU between layers
(none after the last), and dropout.  ``forward`` returns *all* layer
representations ``[h^(1), ..., h^(K)]`` because the paper's multi-scale
fusion dimension ``phi_fuse`` consumes the full trajectory (Eq. 13).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Batch
from ..graph.molecule import MASK_ATOM_ID, NUM_ATOM_TAGS
from ..nn import BatchNorm1d, Dropout, Embedding, Module, ModuleList, Tensor
from .conv import make_conv

__all__ = ["GNNEncoder"]


class GNNEncoder(Module):
    """Pre-trainable graph encoder ``f_psi_theta`` (paper Sec. II).

    Parameters
    ----------
    conv_type:
        One of ``gin | gcn | sage | gat`` (paper Sec. IV-A1 backbones).
    num_layers:
        K; paper uses 5.
    emb_dim:
        Hidden width d; paper uses 300, we default smaller for CPU.
    dropout:
        Applied after every layer (paper uses 0.5 during fine-tuning).
    """

    def __init__(
        self,
        conv_type: str = "gin",
        num_layers: int = 5,
        emb_dim: int = 64,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GNN layer")
        rng = np.random.default_rng(seed)
        self.conv_type = conv_type
        self.num_layers = num_layers
        self.emb_dim = emb_dim
        # +1 atom slot for the mask token (AttrMasking / GraphMAE / Mole-BERT).
        self.atom_embedding = Embedding(MASK_ATOM_ID + 1, emb_dim, rng)
        self.tag_embedding = Embedding(NUM_ATOM_TAGS, emb_dim, rng)
        self.convs = ModuleList([make_conv(conv_type, emb_dim, rng) for _ in range(num_layers)])
        self.norms = ModuleList([BatchNorm1d(emb_dim) for _ in range(num_layers)])
        self.dropout = Dropout(dropout, np.random.default_rng((seed, 1)))

    def embed_nodes(self, batch: Batch) -> Tensor:
        """Initial node representation h^(0) from atom attributes."""
        return self.atom_embedding(batch.x[:, 0]) + self.tag_embedding(batch.x[:, 1])

    def forward(self, batch: Batch) -> list[Tensor]:
        """Return per-layer node representations ``[h^(1), ..., h^(K)]``."""
        return self.forward_from(self.embed_nodes(batch), batch)

    def forward_from(self, h0: Tensor, batch: Batch) -> list[Tensor]:
        """Run message passing from a caller-supplied h^(0).

        Split out so the S2PGNN supernet can interleave identity-augmentation
        candidates between transferred convolution layers (Eq. 12) while
        reusing this module's convolutions and norms.
        """
        h = h0
        # Batches carry a cached edge-destination SegmentPlan (and GCN
        # degree norms); duck-typed stand-ins without one fall back to the
        # convs' per-forward plan construction.
        ctx = batch if hasattr(batch, "edge_plan") else None
        layers: list[Tensor] = []
        for k, (conv, norm) in enumerate(zip(self.convs, self.norms)):
            h = conv(h, batch.edge_index, batch.edge_attr, ctx=ctx)
            h = norm(h)
            if k < self.num_layers - 1:
                h = h.relu()
            h = self.dropout(h)
            layers.append(h)
        return layers

    def layer_step(self, h: Tensor, batch: Batch, k: int) -> Tensor:
        """Apply layer ``k``'s conv+norm(+relu)+dropout to ``h`` (supernet hook)."""
        ctx = batch if hasattr(batch, "edge_plan") else None
        h = self.convs[k](h, batch.edge_index, batch.edge_attr, ctx=ctx)
        h = self.norms[k](h)
        if k < self.num_layers - 1:
            h = h.relu()
        return self.dropout(h)

    def node_representation(self, batch: Batch) -> Tensor:
        """Last-layer node representation (the vanilla, no-fusion choice)."""
        return self.forward(batch)[-1]
