"""End-to-end graph prediction model: encoder + fusion + readout + head.

This is the downstream model every fine-tuning strategy trains.  The vanilla
configuration (fusion="last", readout="mean", paper Sec. IV) reproduces the
standard Hu et al. fine-tuning architecture; S2PGNN instead *searches* the
fusion/readout/identity dimensions (see :mod:`repro.core`).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Batch
from ..nn import Linear, Module, Tensor
from .encoder import GNNEncoder
from .fusion import make_fusion
from .readout import make_readout

__all__ = ["GraphPredictionModel"]


class GraphPredictionModel(Module):
    """Graph-level predictor with pluggable fusion and readout.

    Parameters
    ----------
    encoder:
        A (possibly pre-trained) :class:`GNNEncoder`.
    num_tasks:
        Output width — one logit (classification) or value (regression) per
        task; the head is a fresh linear classifier (paper Sec. IV-A4).
    fusion / readout:
        Candidate names from :data:`repro.gnn.fusion.FUSION_CANDIDATES` and
        :data:`repro.gnn.readout.READOUT_CANDIDATES`.
    """

    def __init__(
        self,
        encoder: GNNEncoder,
        num_tasks: int,
        fusion: str = "last",
        readout: str = "mean",
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng((seed, 42))
        self.encoder = encoder
        self.num_tasks = num_tasks
        self.fusion_name = fusion
        self.readout_name = readout
        self.fusion = make_fusion(fusion, encoder.num_layers, encoder.emb_dim, rng)
        self.readout = make_readout(readout, encoder.emb_dim, rng)
        self.head = Linear(encoder.emb_dim, num_tasks, rng)

    def forward(self, batch: Batch) -> Tensor:
        return self.forward_full(batch)["logits"]

    def forward_full(self, batch: Batch) -> dict:
        """Return all intermediates (needed by DELTA / GTOT regularizers)."""
        layers = self.encoder(batch)
        fused = self.fusion(layers)
        graph_repr = self.readout(fused, batch.node_plan(), batch.num_graphs)
        logits = self.head(graph_repr)
        return {
            "layers": layers,
            "node": fused,
            "graph": graph_repr,
            "logits": logits,
        }
