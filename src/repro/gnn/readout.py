"""Graph-level readout candidates ``phi_read`` (paper Sec. III-B4, Tab. III).

Each candidate maps node representations to one vector per graph:

``(h: (N, d), batch: (N,) ids or SegmentPlan, num_graphs) -> (B, d)``

The ``batch`` argument may be the plain node->graph id vector or a
precomputed :class:`~repro.nn.segment.SegmentPlan` over it — model-level
callers pass ``Batch.node_plan()`` so the pooling plan is built once per
collated batch and reused by every candidate, every epoch.

Simple readouts (sum / mean / max pooling) are parameter-free; adaptive
readouts (Set2Set, SortPool, NeuralPool) identify informative nodes or
substructures.  Candidates whose natural output width differs from ``d``
(Set2Set: 2d, SortPool: k*d) include a linear re-projection so every
candidate shares the ``(B, d)`` contract required for supernet mixing.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    LSTMCell,
    Linear,
    MLP,
    Module,
    Tensor,
    as_plan,
    concatenate,
    gather,
    gather_segments,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)

__all__ = [
    "SumReadout",
    "MeanReadout",
    "MaxReadout",
    "Set2SetReadout",
    "SortPoolReadout",
    "NeuralPoolReadout",
    "make_readout",
    "READOUT_CANDIDATES",
]

READOUT_CANDIDATES = ["sum", "mean", "max", "set2set", "sort", "neural"]


class SumReadout(Module):
    """Sum pooling — captures extensive (size-dependent) properties."""

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        return segment_sum(h, batch, num_graphs)


class MeanReadout(Module):
    """Mean pooling — the paper's (and Hu et al.'s) vanilla readout."""

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        return segment_mean(h, batch, num_graphs)


class MaxReadout(Module):
    """Channel-wise max pooling — dominant-feature detector."""

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        return segment_max(h, batch, num_graphs)


class Set2SetReadout(Module):
    """Set2Set (Vinyals et al., 2015): LSTM-driven content attention.

    ``processing_steps`` rounds of: query from an LSTM, attention over each
    graph's nodes, attended readout appended to the query state.  The final
    ``(B, 2d)`` state is projected back to ``(B, d)``.
    """

    def __init__(self, dim: int, rng: np.random.Generator, processing_steps: int = 3):
        super().__init__()
        self.dim = dim
        self.processing_steps = processing_steps
        self.lstm = LSTMCell(2 * dim, dim, rng)
        self.proj = Linear(2 * dim, dim, rng)

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        plan = as_plan(batch, num_graphs)
        q_star = Tensor(np.zeros((num_graphs, 2 * self.dim)))
        state_h, state_c = self.lstm.initial_state(num_graphs)
        for _ in range(self.processing_steps):
            state_h, state_c = self.lstm(q_star, state_h, state_c)
            scores = (h * gather_segments(state_h, plan)).sum(axis=-1)
            attn = segment_softmax(scores, plan)
            readout = segment_sum(h * attn.reshape(-1, 1), plan)
            q_star = concatenate([state_h, readout], axis=-1)
        return self.proj(q_star)


class SortPoolReadout(Module):
    """SortPooling (Zhang et al., 2018): order nodes by the last channel,
    keep the top-k per graph (zero-padded), flatten, and project to d.

    The sort order is computed outside the tape (a discrete decision);
    gradients flow through the selected rows, as in the original.  The
    selection is fully vectorized: one lexsort groups nodes by graph with
    the sort channel descending inside each group, the plan's per-segment
    offsets turn sorted positions into within-graph ranks, and a single
    gather + scatter places the top-k rows into the padded ``(B, k*d)``
    layout — no per-graph Python loop.
    """

    def __init__(self, dim: int, rng: np.random.Generator, k: int = 4):
        super().__init__()
        self.k = k
        self.dim = dim
        self.proj = Linear(k * dim, dim, rng)

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        plan = as_plan(batch, num_graphs)
        ids = plan.segment_ids
        # Group by graph, sort channel descending within each graph.
        order = np.lexsort((-h.data[:, -1], ids))
        seg_of_row = ids[order]
        rank = np.arange(ids.size) - plan.offsets[seg_of_row]
        keep = rank < self.k
        selected = gather(h, order[keep])
        # Scatter row j of graph g into padded slot g*k + j (slots are
        # unique, so segment_sum is a pure scatter; missing slots stay 0).
        slots = seg_of_row[keep] * self.k + rank[keep]
        flat = segment_sum(selected, slots, num_graphs * self.k)
        return self.proj(flat.reshape(num_graphs, self.k * self.dim))


class NeuralPoolReadout(Module):
    """Adaptive neural readout (Buterez et al., 2022): MLP -> sum -> MLP.

    The pre-aggregation MLP lets the model re-weight node channels before
    pooling; the post-aggregation MLP mixes the pooled statistics.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.pre = MLP([dim, dim, dim], rng, activate_last=True)
        self.post = MLP([dim, dim], rng)

    def forward(self, h: Tensor, batch, num_graphs: int) -> Tensor:
        return self.post(segment_sum(self.pre(h), batch, num_graphs))


def make_readout(name: str, dim: int, rng: np.random.Generator) -> Module:
    """Factory over :data:`READOUT_CANDIDATES`."""
    if name == "sum":
        return SumReadout()
    if name == "mean":
        return MeanReadout()
    if name == "max":
        return MaxReadout()
    if name == "set2set":
        return Set2SetReadout(dim, rng)
    if name == "sort":
        return SortPoolReadout(dim, rng)
    if name == "neural":
        return NeuralPoolReadout(dim, rng)
    raise ValueError(f"unknown readout {name!r}; known: {READOUT_CANDIDATES}")
