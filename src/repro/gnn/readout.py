"""Graph-level readout candidates ``phi_read`` (paper Sec. III-B4, Tab. III).

Each candidate maps node representations to one vector per graph:

``(h: (N, d), batch: (N,), num_graphs) -> (B, d)``

Simple readouts (sum / mean / max pooling) are parameter-free; adaptive
readouts (Set2Set, SortPool, NeuralPool) identify informative nodes or
substructures.  Candidates whose natural output width differs from ``d``
(Set2Set: 2d, SortPool: k*d) include a linear re-projection so every
candidate shares the ``(B, d)`` contract required for supernet mixing.
"""

from __future__ import annotations

import numpy as np

from ..nn import LSTMCell, Linear, MLP, Module, Tensor, concatenate, gather, segment_max, segment_mean, segment_sum
from .conv import segment_softmax

__all__ = [
    "SumReadout",
    "MeanReadout",
    "MaxReadout",
    "Set2SetReadout",
    "SortPoolReadout",
    "NeuralPoolReadout",
    "make_readout",
    "READOUT_CANDIDATES",
]

READOUT_CANDIDATES = ["sum", "mean", "max", "set2set", "sort", "neural"]


class SumReadout(Module):
    """Sum pooling — captures extensive (size-dependent) properties."""

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        return segment_sum(h, batch, num_graphs)


class MeanReadout(Module):
    """Mean pooling — the paper's (and Hu et al.'s) vanilla readout."""

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        return segment_mean(h, batch, num_graphs)


class MaxReadout(Module):
    """Channel-wise max pooling — dominant-feature detector."""

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        return segment_max(h, batch, num_graphs)


class Set2SetReadout(Module):
    """Set2Set (Vinyals et al., 2015): LSTM-driven content attention.

    ``processing_steps`` rounds of: query from an LSTM, attention over each
    graph's nodes, attended readout appended to the query state.  The final
    ``(B, 2d)`` state is projected back to ``(B, d)``.
    """

    def __init__(self, dim: int, rng: np.random.Generator, processing_steps: int = 3):
        super().__init__()
        self.dim = dim
        self.processing_steps = processing_steps
        self.lstm = LSTMCell(2 * dim, dim, rng)
        self.proj = Linear(2 * dim, dim, rng)

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        q_star = Tensor(np.zeros((num_graphs, 2 * self.dim)))
        state_h, state_c = self.lstm.initial_state(num_graphs)
        for _ in range(self.processing_steps):
            state_h, state_c = self.lstm(q_star, state_h, state_c)
            scores = (h * gather(state_h, batch)).sum(axis=-1)
            attn = segment_softmax(scores, batch, num_graphs)
            readout = segment_sum(h * attn.reshape(-1, 1), batch, num_graphs)
            q_star = concatenate([state_h, readout], axis=-1)
        return self.proj(q_star)


class SortPoolReadout(Module):
    """SortPooling (Zhang et al., 2018): order nodes by the last channel,
    keep the top-k per graph (zero-padded), flatten, and project to d.

    The sort order is computed outside the tape (a discrete decision);
    gradients flow through the selected rows, as in the original.
    """

    def __init__(self, dim: int, rng: np.random.Generator, k: int = 4):
        super().__init__()
        self.k = k
        self.dim = dim
        self.proj = Linear(k * dim, dim, rng)

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        sort_channel = h.data[:, -1]
        chunks: list[Tensor] = []
        for g in range(num_graphs):
            nodes = np.flatnonzero(batch == g)
            order = nodes[np.argsort(-sort_channel[nodes])][: self.k]
            selected = gather(h, order)  # (<=k, d)
            if len(order) < self.k:
                pad = Tensor(np.zeros((self.k - len(order), self.dim)))
                selected = concatenate([selected, pad], axis=0)
            chunks.append(selected.reshape(1, self.k * self.dim))
        return self.proj(concatenate(chunks, axis=0))


class NeuralPoolReadout(Module):
    """Adaptive neural readout (Buterez et al., 2022): MLP -> sum -> MLP.

    The pre-aggregation MLP lets the model re-weight node channels before
    pooling; the post-aggregation MLP mixes the pooled statistics.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.pre = MLP([dim, dim, dim], rng, activate_last=True)
        self.post = MLP([dim, dim], rng)

    def forward(self, h: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
        return self.post(segment_sum(self.pre(h), batch, num_graphs))


def make_readout(name: str, dim: int, rng: np.random.Generator) -> Module:
    """Factory over :data:`READOUT_CANDIDATES`."""
    if name == "sum":
        return SumReadout()
    if name == "mean":
        return MeanReadout()
    if name == "max":
        return MaxReadout()
    if name == "set2set":
        return Set2SetReadout(dim, rng)
    if name == "sort":
        return SortPoolReadout(dim, rng)
    if name == "neural":
        return NeuralPoolReadout(dim, rng)
    raise ValueError(f"unknown readout {name!r}; known: {READOUT_CANDIDATES}")
