"""Multi-scale fusion candidates ``phi_fuse`` (paper Sec. III-B3, Tab. III).

Each candidate maps the per-layer node representations
``[h^(1), ..., h^(K)]`` (each ``(N, d)``) to a single ``(N, d)`` fused
representation ``H_v = sum_k w_v^(k) h_v^(k)``:

* non-parametric: ``last`` (disable fusion), ``concat`` (+ linear
  re-projection to d), ``max``, ``mean``, ``ppr`` (Personalized-PageRank
  decayed weights);
* attentive: ``lstm`` — Jumping-Knowledge-style bidirectional LSTM over the
  layer sequence producing per-node, per-layer attention in [0,1] summing
  to 1 (Xu et al., 2018);
* gated: ``gpr`` — learnable signed per-layer scalars, initialized to the
  PPR profile but free to move in [-1, 1] and beyond (Chien et al., 2021).

All candidates share the output contract ``(N, d)`` so the supernet can mix
them with relaxed one-hot weights (paper Eq. 17).
"""

from __future__ import annotations

import numpy as np

from ..nn import LSTM, Linear, Module, Parameter, Tensor, concatenate, stack
from ..nn.functional import softmax

__all__ = [
    "LastFusion",
    "ConcatFusion",
    "MaxFusion",
    "MeanFusion",
    "PPRFusion",
    "LSTMFusion",
    "GPRFusion",
    "make_fusion",
    "FUSION_CANDIDATES",
]

FUSION_CANDIDATES = ["last", "concat", "max", "mean", "ppr", "lstm", "gpr"]


class LastFusion(Module):
    """Disable fusion: use the final layer only (the vanilla choice)."""

    def forward(self, layers: list[Tensor]) -> Tensor:
        return layers[-1]


class ConcatFusion(Module):
    """Concatenate all layers, then linearly re-project to width d."""

    def __init__(self, num_layers: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(num_layers * dim, dim, rng)

    def forward(self, layers: list[Tensor]) -> Tensor:
        return self.proj(concatenate(layers, axis=-1))


class MaxFusion(Module):
    """Channel-wise maximum across layers."""

    def forward(self, layers: list[Tensor]) -> Tensor:
        return stack(layers, axis=0).max(axis=0)


class MeanFusion(Module):
    """Equal-weight average of layers."""

    def forward(self, layers: list[Tensor]) -> Tensor:
        return stack(layers, axis=0).sum(axis=0) * (1.0 / len(layers))


class PPRFusion(Module):
    """Personalized-PageRank decayed weights ``w_k ∝ gamma (1-gamma)^k``."""

    def __init__(self, num_layers: int, gamma: float = 0.15):
        super().__init__()
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        weights = gamma * (1.0 - gamma) ** np.arange(num_layers, dtype=np.float64)
        self.weights = weights / weights.sum()

    def forward(self, layers: list[Tensor]) -> Tensor:
        weights = Tensor(self.weights[:, None, None])
        return (stack(layers, axis=0) * weights).sum(axis=0)


class LSTMFusion(Module):
    """Jumping-Knowledge LSTM attention over layers (Xu et al., 2018).

    A bidirectional LSTM reads each node's layer trajectory; a linear scorer
    turns each step's hidden state into a scalar; softmax over layers yields
    per-node attention weights ``w_v^(k) in [0, 1]``, ``sum_k w_v^(k) = 1``.
    """

    def __init__(self, num_layers: int, dim: int, rng: np.random.Generator,
                 lstm_hidden: int | None = None):
        super().__init__()
        hidden = lstm_hidden or max(dim // 2, 4)
        self.lstm = LSTM(dim, hidden, rng, bidirectional=True)
        self.scorer = Linear(2 * hidden, 1, rng)

    def forward(self, layers: list[Tensor]) -> Tensor:
        states = self.lstm(layers)  # K tensors (N, 2*hidden)
        scores = concatenate([self.scorer(s) for s in states], axis=-1)  # (N, K)
        attn = softmax(scores, axis=-1)
        # (K, N, d) * (K, N, 1) -> weighted sum over layers in one pass.
        weights = attn.transpose((1, 0)).expand_dims(2)
        return (stack(layers, axis=0) * weights).sum(axis=0)


class GPRFusion(Module):
    """Generalized-PageRank fusion: learnable signed per-layer scalars.

    Initialized to the PPR profile; training can flip signs to filter
    (high-pass) information at chosen scales, as in GPR-GNN.
    """

    def __init__(self, num_layers: int, gamma: float = 0.15):
        super().__init__()
        init = gamma * (1.0 - gamma) ** np.arange(num_layers, dtype=np.float64)
        self.gamma = Parameter(init / init.sum())

    def forward(self, layers: list[Tensor]) -> Tensor:
        weights = self.gamma.reshape(-1, 1, 1)
        return (stack(layers, axis=0) * weights).sum(axis=0)


def make_fusion(name: str, num_layers: int, dim: int,
                rng: np.random.Generator) -> Module:
    """Factory over :data:`FUSION_CANDIDATES`."""
    if name == "last":
        return LastFusion()
    if name == "concat":
        return ConcatFusion(num_layers, dim, rng)
    if name == "max":
        return MaxFusion()
    if name == "mean":
        return MeanFusion()
    if name == "ppr":
        return PPRFusion(num_layers)
    if name == "lstm":
        return LSTMFusion(num_layers, dim, rng)
    if name == "gpr":
        return GPRFusion(num_layers)
    raise ValueError(f"unknown fusion {name!r}; known: {FUSION_CANDIDATES}")
