"""Shared batch cache: one collated + plan-cached loader per (graph set, batch size).

Before this layer every phase of a run — searcher derivation, evolutionary
fitness, fine-tune early stopping, post-fit prediction — built its *own*
evaluation :class:`~repro.graph.loader.DataLoader`, so the same validation
or test split was re-collated (and its :class:`~repro.nn.segment.SegmentPlan`
caches rebuilt) once per phase.  :class:`BatchCacheRegistry` centralizes
that: it hands out one caching loader per *(graph set, batch size)* and
evicts least-recently-used entries, so a whole run — and a long-lived
:class:`~repro.serve.service.InferenceService` scoring many requests —
collates each split exactly once.

Keying
------
Entries are keyed by the *identity of the member graphs in order* (a tuple
of ``id(graph)``) **plus the active execution-policy dtype** — a float64
evaluation path and a float32 serving path requesting the same split get
separate loaders, because a :class:`~repro.graph.graph.Batch` materializes
its float payloads in the collation-time policy dtype and is immutable
afterwards.  Entries are not keyed by the identity of the containing list.
``MolecularDataset.split`` memoizes split *indices* but builds a fresh list
of the same :class:`~repro.graph.graph.Graph` objects on every call, so an
``id(list)`` key (what the searcher used before this layer) silently missed
across phases.  The registry keeps a reference to each entry's graph list,
so member ids stay valid for the entry's lifetime.

The contract is the segment-plan layer's immutable-after-collation rule:
a cached batch (and its plans) is valid as long as the underlying graphs
are unchanged.  Callers that mutate graphs must :meth:`invalidate
<BatchCacheRegistry.invalidate>` first (or bypass the registry).

Thread safety
-------------
The registry is safe to share across serving workers: one coarse ``RLock``
guards the entry map and counters.  It is a *leaf* lock in the serve
stack's documented lock order (see :mod:`repro.serve.service`) — nothing
is called back out of the registry while it is held except loader
construction, which takes no serve-layer locks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..graph.loader import DataLoader
from ..nn.policy import active_dtype

__all__ = ["BatchCacheRegistry"]


class BatchCacheRegistry:
    """LRU registry of cached evaluation loaders, shared across phases.

    Parameters
    ----------
    capacity:
        Maximum number of distinct ``(graph set, batch size)`` entries kept
        alive at once.  Serving workloads that score many transient graph
        lists evict least-recently-used entries instead of growing without
        bound.

    Only *unshuffled* loaders are registered: a shared cache must yield the
    same batches to every consumer, which is exactly the deterministic
    dataset-order partition.  Shuffled training loaders keep their
    per-phase RNG state and stay outside the registry.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (graphs, loader); graphs kept alive so id()s stay valid.
        self._entries: "OrderedDict[tuple, tuple[list, DataLoader]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Collations done by since-dropped loaders, so stats() stays a
        # monotonic total across evictions and invalidations.
        self._dropped_collations = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @staticmethod
    def _key(graphs, batch_size: int) -> tuple:
        # The policy dtype joins the key: batches snapshot it at collation,
        # so loaders must not be shared across execution dtypes.
        return (batch_size, active_dtype().str,
                tuple(id(g) for g in graphs))

    def loader(self, graphs, batch_size: int) -> DataLoader:
        """The shared caching loader for ``graphs`` at ``batch_size``.

        Two calls with *different list objects holding the same graphs in
        the same order* return the same loader — the cross-phase case this
        registry exists for.
        """
        key = self._key(graphs, batch_size)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1]
            self.misses += 1
            while len(self._entries) >= self.capacity:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._dropped_collations += dropped.num_collations
            loader = DataLoader(graphs, batch_size=batch_size, cache=True)
            # Pin the loader's own member list so the id()s in the key stay
            # valid for exactly the entry's lifetime.
            self._entries[key] = (loader.graphs, loader)
            return loader

    def warm(self, graphs, batch_size: int) -> DataLoader:
        """Pre-pay collation *and* segment-plan construction for a split.

        A serving deployment calls this at startup so the first live
        request hits fully built batches instead of paying the one-time
        plan cost inline.
        """
        loader = self.loader(graphs, batch_size)
        for batch in loader.materialize():
            batch.edge_plan()
            batch.edge_src_plan()
            batch.node_plan()
        return loader

    # ------------------------------------------------------------------
    def invalidate(self, graphs=None) -> None:
        """Drop entries whose graph set contains any graph of ``graphs``
        (all entries when ``graphs`` is None).  Call after mutating graphs
        — cached batches snapshot collation-time values."""
        with self._lock:
            if graphs is None:
                keys = list(self._entries)
            else:
                stale = {id(g) for g in graphs}
                keys = [k for k in self._entries if stale.intersection(k[2])]
            for key in keys:
                self._dropped_collations += self._entries.pop(key)[1].num_collations

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Cache-effectiveness counters (entries, hits/misses, collations).

        ``collations`` is the monotonic total across the registry's
        lifetime, including work done by since-evicted loaders.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "collations": self._dropped_collations + sum(
                    loader.num_collations for _, loader in self._entries.values()
                ),
            }

    def __repr__(self) -> str:
        return (f"BatchCacheRegistry(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
