"""``repro.serve`` — batch-serving layer on top of the fast-path stack.

Four pieces: :class:`BatchCacheRegistry` (one collated + plan-cached
loader per graph set and batch size, shared by every phase of a run),
:class:`ModelRegistry` (persistent derived models keyed by spec, LRU),
:class:`InferenceService` (prediction requests + many-spec scoring
fan-outs over the shared caches), and :class:`BatchingRouter` (dynamic
batching: single-graph requests bucketed by spec into server-side
micro-batches, flushed on size or deadline).
"""

from .cache import BatchCacheRegistry
from .registry import ModelRegistry, spec_key
from .router import BatchingRouter, RoutedRequest
from .service import InferenceService, SpecScore

__all__ = [
    "BatchCacheRegistry",
    "ModelRegistry",
    "spec_key",
    "BatchingRouter",
    "RoutedRequest",
    "InferenceService",
    "SpecScore",
]
