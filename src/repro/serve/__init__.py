"""``repro.serve`` — batch-serving layer on top of the fast-path stack.

Seven pieces: :class:`BatchCacheRegistry` (one collated + plan-cached
loader per graph set and batch size, shared by every phase of a run),
:class:`ModelRegistry` (persistent derived models keyed by spec, LRU),
:class:`InferenceService` (prediction requests + many-spec scoring
fan-outs over the shared caches), :class:`BatchingRouter` (dynamic
batching: single-graph requests bucketed by spec into server-side
micro-batches, flushed on size or deadline), :class:`InferenceServer`
(the concurrent front end: real-clock ticker thread + worker pool
executing flushed micro-batches), the transports
(:class:`InProcessTransport` / :class:`HTTPServingTransport` — one JSON
dict protocol exposing submit/predict/stats in-process or over stdlib
HTTP), and the sharded cluster (:class:`ClusterRouter` dispatching by
deterministic spec affinity over :class:`ShardProcess` shard servers,
with health probes and connection-failure failover).  The whole stack is
thread-safe; :mod:`repro.serve.service` documents the lock order.
"""

from .cache import BatchCacheRegistry
from .cluster import (
    ClusterError,
    ClusterRouter,
    ShardProcess,
    ShardServiceConfig,
    launch_shards,
    spec_affinity,
)
from .registry import ModelRegistry, spec_key
from .router import BatchingRouter, RoutedRequest
from .server import InferenceServer
from .service import InferenceService, SpecScore
from .transport import (
    HTTPServingClient,
    HTTPServingTransport,
    InProcessTransport,
    ServingProtocol,
    TransportConnectionError,
    TransportError,
)

__all__ = [
    "BatchCacheRegistry",
    "ModelRegistry",
    "spec_key",
    "BatchingRouter",
    "RoutedRequest",
    "InferenceService",
    "InferenceServer",
    "SpecScore",
    "ServingProtocol",
    "InProcessTransport",
    "HTTPServingTransport",
    "HTTPServingClient",
    "TransportError",
    "TransportConnectionError",
    "ClusterError",
    "ClusterRouter",
    "ShardProcess",
    "ShardServiceConfig",
    "launch_shards",
    "spec_affinity",
]
