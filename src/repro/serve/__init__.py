"""``repro.serve`` — batch-serving layer on top of the fast-path stack.

Three pieces: :class:`BatchCacheRegistry` (one collated + plan-cached
loader per graph set and batch size, shared by every phase of a run),
:class:`ModelRegistry` (persistent derived models keyed by spec, LRU),
and :class:`InferenceService` (prediction requests + many-spec scoring
fan-outs over the shared caches).
"""

from .cache import BatchCacheRegistry
from .registry import ModelRegistry, spec_key
from .service import InferenceService, SpecScore

__all__ = [
    "BatchCacheRegistry",
    "ModelRegistry",
    "spec_key",
    "InferenceService",
    "SpecScore",
]
