"""Batch-serving entry point: persistent models + shared batch caches.

This is the subsystem the fast-path layer (PR 1) and the segment-plan
cache (PR 2) were built for: a long-lived process that answers

* **prediction requests** — logits for a list of graphs under a given
  fine-tune strategy spec, served from a persistent
  :class:`~repro.core.supernet.DerivedModel` (no per-request model
  construction) over pre-collated, plan-cached batches (no per-request
  collation); and
* **many-spec scoring** — ``score_specs`` fans a list of candidate specs
  out over one cached batch set, running each through the searched
  supernet's one-hot fast path (``evaluate_spec``-style: one
  derived-model-shaped forward per batch, not one per candidate
  operator).  This is the primitive behind candidate ranking, ensembles
  over searched strategies, and A/B scoring of specs on live traffic;
  and
* **single-graph requests** — :meth:`InferenceService.submit` /
  :meth:`InferenceService.predict_one` route one-graph requests through
  a :class:`~repro.serve.router.BatchingRouter` that assembles them into
  server-side micro-batches (dynamic batching) before touching the model.

Both paths restore the model's previous train/eval mode and produce
logits bit-identical to a cold forward (fresh model + fresh uncached
loader) — see ``tests/serve/test_service.py``.

On top of the batch cache sits a **logit cache**: an eval-mode forward is
a pure function of (model, spec, graph set, batch size) — models served
here are frozen and batches are immutable after collation — so repeated
identical requests (the dominant serving pattern: polling dashboards,
re-ranking sweeps over overlapping candidate sets) are answered from a
bounded LRU of previous responses without touching the model.  Callers
that *do* mutate a served model's weights (continued fine-tuning) must
call :meth:`InferenceService.invalidate_logits` afterwards, mirroring the
segment-plan layer's immutable-after-collation contract.

Thread safety and lock order
----------------------------
The whole serve stack may be shared across threads (that is what
:class:`~repro.serve.server.InferenceServer`'s worker pool does).  Every
lock is coarse and the acquisition order is fixed — to stay deadlock-free,
never acquire a lock *earlier* in this list while holding a later one.

This section is generated from the machine-readable table in
:data:`repro.devtools.locks.LOCK_HIERARCHY` — the single source of
truth, consumed by the static lock-order rule (``python -m repro lint``,
REP001), the REP006 lock census, and the runtime
:class:`~repro.devtools.runtime.LockOrderGuard`.  A tier-1 test keeps
this prose and the table in sync; edit the table first.

1. ``ClusterRouter._lock`` (rank 5) — cluster front end: shard health
   flags + dispatch counters; shard calls (which take the whole serve
   stack's locks in in-process doubles) run with **no cluster lock
   held**;
2. ``InferenceServer._lock`` (rank 10) — server lifecycle flags, worker
   bookkeeping, error ring;
3. ``BatchingRouter._lock`` (rank 20) — buckets, seq counter, drain
   window; the flush path calls into the service with **no router lock
   held**;
4. ``InferenceService._lock`` (rank 30) — response LRU, counters,
   default-router slot, model-lock table — held only for dict
   bookkeeping, never across a forward;
5. per-model execution locks — ``InferenceService._model_locks`` via
   ``_model_lock(model)`` (rank 40) — serialize the train/eval mode flip
   around each eval sweep, so one model serves one request at a time
   while *different* models run fully in parallel;
6. leaf locks (nothing serve-layer is acquired while one is held):
   ``ModelRegistry._lock`` (rank 50), ``BatchCacheRegistry._lock``
   (rank 51), ``DataLoader._cache_lock`` (rank 52), ``Batch._plan_lock``
   (rank 53), ``graph.datasets._dataset_cache_lock`` (rank 54),
   ``nn.segment._scatter_plan_lock`` (rank 55),
   ``ServingProtocol._lock`` (rank 56), ``WorkspacePool._lock``
   (rank 57) and ``nn.compiled.build._build_lock`` (rank 58).

Eval-mode forwards mutate nothing (no autograd state under ``no_grad``,
no BatchNorm buffer updates in eval), and grad/backend/policy flags are
context-local (:mod:`repro.nn.tensor` / :mod:`repro.nn.segment` /
:mod:`repro.nn.policy`), so the only per-model critical section is the
mode flip in ``_eval_logits``.

Execution policy (the inference memory plane)
---------------------------------------------
A service built with ``policy="float32"`` (or an explicit
:class:`~repro.nn.policy.ExecutionPolicy`) runs every compute — batch
collation, warming, forwards — inside that policy's scope: batches are
materialized once in float32, the fresh model registry casts frozen
weights once at registration, and segment kernels lease their output
buffers from the policy's shared :class:`~repro.nn.policy.WorkspacePool`
(per-thread arenas, so the worker pool shares one pool without
contention).  ``_eval_logits`` begins a workspace pass per batch and
copies logits out before the next pass, which is the pool's buffer
lifetime contract.  The default ``policy=None`` keeps the historical
bit-identical float64 behavior.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..metrics import multitask_score_or_fallback
from ..nn.compiled import compiled_status
from ..nn.policy import ExecutionPolicy, active_dtype, active_workspace, serving_policy
from .cache import BatchCacheRegistry
from .registry import ModelRegistry

__all__ = ["InferenceService", "SpecScore"]


def _eval_logits(model, loader, forward, num_tasks: int) -> np.ndarray:
    """Eval-mode sweep: ``forward(batch)`` logits over ``loader``, with the
    model's previous train/eval mode restored.  Zero batches (an empty
    graph list) yield a correctly shaped ``(0, num_tasks)`` array.

    Runs under whatever execution policy the caller has active.  With a
    workspace pool installed, each batch forward is one workspace *pass*:
    leased buffers are recycled between batches, and the ``.copy()`` of
    each logits array is what moves results out of workspace-owned memory
    before the next pass reuses it.
    """
    from ..nn import no_grad

    pool = active_workspace()
    was_training = model.training
    model.eval()
    preds = []
    with no_grad():
        for batch in loader:
            if pool is not None:
                pool.begin_pass()
            preds.append(forward(batch).data.copy())
    model.train(was_training)
    if not preds:
        return np.zeros((0, num_tasks), dtype=active_dtype())
    return np.concatenate(preds, axis=0)


@dataclass
class SpecScore:
    """One entry of a :meth:`InferenceService.score_specs` fan-out."""

    spec: object
    score: float
    logits: np.ndarray | None = None


class InferenceService:
    """Serve predictions and spec scores from persistent state.

    Parameters
    ----------
    encoder_factory:
        Zero-argument callable returning a fresh (pre-trained) encoder;
        used whenever the service must build a derived model.
    num_tasks:
        Downstream prediction width.
    supernet:
        Optional searched :class:`~repro.core.supernet.S2PGNNSupernet`.
        When attached, newly built models warm-start from its shared
        weights and :meth:`score_specs` scores candidates through its
        one-hot fast path without building a model per spec.
    models / batch_cache:
        Existing registries to share (e.g. the
        :class:`~repro.serve.cache.BatchCacheRegistry` a
        :class:`~repro.core.api.S2PGNNFineTuner` already populated during
        search + fine-tuning); fresh ones are created when omitted.
    batch_size:
        Default serving batch size (overridable per call).
    logit_cache_size:
        Capacity of the response-memoization LRU (0 disables it).  Served
        models are frozen, so identical requests return cached logits;
        call :meth:`invalidate_logits` after mutating a served model.
    policy:
        Optional serving :class:`~repro.nn.policy.ExecutionPolicy`, or a
        dtype string (``"float32"`` builds the standard serving preset:
        float32 + workspace pool).  Every compute of this service runs
        inside the policy's scope; a *fresh* model registry inherits the
        policy dtype (weights cast once at registration).  A shared
        ``models`` registry is left as configured — align its ``dtype``
        with the policy yourself when sharing.  Default None: float64,
        bit-identical to the pre-policy service.
    """

    def __init__(self, encoder_factory, num_tasks: int, supernet=None,
                 models: ModelRegistry | None = None,
                 batch_cache: BatchCacheRegistry | None = None,
                 batch_size: int = 64, seed: int = 0,
                 logit_cache_size: int = 256,
                 policy: "ExecutionPolicy | str | None" = None):
        self.supernet = supernet
        if isinstance(policy, str):
            policy = serving_policy(policy)
        self.policy = policy
        # Explicit None checks: registries define __len__, so an *empty*
        # registry passed in for sharing is falsy but must still be used.
        if models is None:
            dtype = (policy.dtype if policy is not None
                     and policy.dtype != "float64" else None)
            models = ModelRegistry(encoder_factory, num_tasks, seed=seed,
                                   dtype=dtype)
        self.models = models
        self.batch_cache = batch_cache if batch_cache is not None else BatchCacheRegistry()
        self.batch_size = batch_size
        self.logit_cache_size = logit_cache_size
        # key: (model, spec, batch_size, member-id tuple) -> (graphs, logits).
        # The key pins the model and the value pins the graphs, so neither
        # can be garbage-collected into an id()-aliasing stale hit.
        self._logit_cache: "OrderedDict" = OrderedDict()
        self.logit_hits = 0
        self.logit_misses = 0
        self._default_router = None
        # Service lock (level 3 in the documented order): response LRU,
        # counters, default-router slot, model-lock table.  Never held
        # across a forward.
        self._lock = threading.RLock()
        # Per-model execution locks (level 4), keyed weakly by the model
        # itself: a lock lives exactly as long as its model, so an entry
        # can never be pruned out from under a thread that is mid-forward
        # (that thread's reference keeps the model — and thus the shared
        # lock — alive), and evicted models leak nothing.
        self._model_locks: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    @classmethod
    def from_tuner(cls, tuner, batch_size: int = 64) -> "InferenceService":
        """Wrap a fitted :class:`~repro.core.api.S2PGNNFineTuner`.

        Shares the tuner's batch cache (splits collated during search and
        fine-tuning are served without re-collation), attaches the
        searched supernet when present, and registers the fine-tuned model
        under its spec so :meth:`predict` on ``tuner.best_spec_`` serves
        the *fitted* weights.
        """
        if tuner.model_ is None or tuner.best_spec_ is None:
            raise RuntimeError("tuner is not fitted: call fit() first")
        supernet = (tuner.search_result_.supernet
                    if tuner.search_result_ is not None else None)
        service = cls(tuner.encoder_factory, tuner.model_.num_tasks,
                      supernet=supernet, batch_cache=tuner.batch_cache,
                      batch_size=batch_size, seed=tuner.seed)
        service.models.add(tuner.best_spec_, tuner.model_)
        return service

    # ------------------------------------------------------------------
    def attach_supernet(self, supernet) -> "InferenceService":
        """Attach (or replace) the searched supernet used for warm starts
        and one-hot spec scoring."""
        self.supernet = supernet
        return self

    def _policy_scope(self):
        """The service's execution-policy context (a no-op without one).

        Everything that collates batches, keys the batch cache, or runs a
        forward must happen inside this scope so the whole request sees
        one coherent dtype.
        """
        if self.policy is None:
            return contextlib.nullcontext()
        return self.policy

    def model_for(self, spec):
        """The persistent derived model serving ``spec`` (built on miss,
        warm-started from the attached supernet when available)."""
        return self.models.get(spec, supernet=self.supernet)

    def warm(self, graphs, batch_size: int | None = None) -> None:
        """Pre-collate ``graphs`` and build their segment plans (under the
        service's execution policy, so warmed batches are serving-ready)."""
        with self._policy_scope():
            self.batch_cache.warm(graphs, batch_size or self.batch_size)

    # ------------------------------------------------------------------
    def _model_lock(self, model) -> threading.RLock:
        """The per-model execution lock (created on first use)."""
        with self._lock:
            lock = self._model_locks.get(model)
            if lock is None:
                lock = self._model_locks[model] = threading.RLock()
            return lock

    def _memoized(self, model, spec, graphs, batch_size, compute) -> np.ndarray:
        """Serve ``compute()``'s logits through the response LRU.

        Hits return a copy (callers may mutate their response); the
        stored array is private to the cache.  The service lock guards
        only the LRU bookkeeping — ``compute()`` runs outside it, under
        the model's own execution lock, so a long forward on one model
        never blocks cache hits (or other models' forwards).  Two threads
        missing on the same key both compute; the results are bit-identical
        by the serving-parity contract, so the duplicate insert is benign.
        """
        if self.logit_cache_size <= 0:
            with self._model_lock(model):
                return compute()
        key = (model, spec, batch_size, tuple(id(g) for g in graphs))
        with self._lock:
            entry = self._logit_cache.get(key)
            if entry is not None:
                self._logit_cache.move_to_end(key)
                self.logit_hits += 1
                return entry[1].copy()
            self.logit_misses += 1
        with self._model_lock(model):
            logits = compute()
        with self._lock:
            self._prune_dead_models()
            while len(self._logit_cache) >= self.logit_cache_size:
                self._logit_cache.popitem(last=False)
            self._logit_cache[key] = (list(graphs), logits.copy())
        return logits

    def _prune_dead_models(self) -> None:
        """Drop responses of models no longer served.

        Memoization keys pin their model; without this, a model evicted
        from the :class:`ModelRegistry` (or a detached supernet) would
        stay alive until its entries churned out of the response LRU.
        (Execution locks need no pruning: the weak-keyed table drops a
        lock with its model.)  Callers hold ``self._lock``.
        """
        live = {id(m) for m in self.models.live_models()}
        live.add(id(self.supernet))
        for key in [k for k in self._logit_cache if id(k[0]) not in live]:
            del self._logit_cache[key]

    def invalidate_logits(self) -> None:
        """Drop memoized responses — required after mutating the weights
        of any model this service serves."""
        with self._lock:
            self._logit_cache.clear()

    def predict(self, graphs, spec, batch_size: int | None = None) -> np.ndarray:
        """Logits for ``graphs`` under ``spec`` from the persistent model.

        Repeated identical requests are served from the response cache;
        otherwise the model's train/eval mode is restored afterwards, so
        serving never perturbs a model that is also being trained.
        """
        batch_size = batch_size or self.batch_size
        model = self.model_for(spec)

        def compute():
            with self._policy_scope():
                return _eval_logits(
                    model, self.batch_cache.loader(graphs, batch_size),
                    model, self.models.num_tasks)

        return self._memoized(model, spec, graphs, batch_size, compute)

    def predict_spec_onehot(self, graphs, spec,
                            batch_size: int | None = None) -> np.ndarray:
        """Logits for ``graphs`` via the supernet's one-hot fast path.

        Requires an attached supernet.  With one-hot mixing weights every
        supernet dimension takes the branch-skipping path, so this costs
        one derived-model-shaped forward per batch and is bit-identical to
        a :class:`DerivedModel` warm-started from the same supernet.
        """
        from ..core.search import _spec_to_onehots

        if self.supernet is None:
            raise RuntimeError("one-hot scoring needs an attached supernet")
        batch_size = batch_size or self.batch_size
        supernet = self.supernet

        def compute():
            with self._policy_scope():
                one_hots = _spec_to_onehots(spec, supernet.space,
                                            supernet.encoder.num_layers)
                return _eval_logits(
                    supernet, self.batch_cache.loader(graphs, batch_size),
                    lambda batch: supernet.forward_full(batch, one_hots)["logits"],
                    supernet.num_tasks)

        return self._memoized(supernet, spec, graphs, batch_size, compute)

    def score_specs(self, specs, graphs, metric: str = "roc_auc",
                    batch_size: int | None = None,
                    keep_logits: bool = False) -> list[SpecScore]:
        """Score many candidate specs against one cached batch set.

        Each spec runs through the one-hot supernet fast path (attached
        supernet) or its persistent derived model (no supernet); the
        graphs are collated and plan-built exactly once for the whole
        fan-out *and* for every later call on the same graph set.  Labels
        come from the graphs themselves; ``metric`` follows
        :mod:`repro.metrics` (falls back on degenerate label sets).
        """
        if not graphs:
            # Unlike predictions (an empty logits array is well-defined),
            # a metric over zero graphs is not.
            raise ValueError("cannot score specs over an empty graph list")
        batch_size = batch_size or self.batch_size
        with self._policy_scope():
            # Fetch the loader inside the policy scope: the batch-cache key
            # includes the active dtype, so this resolves to the same
            # cached loader the predict computes will use.
            loader = self.batch_cache.loader(graphs, batch_size)
            trues = np.concatenate([batch.y for batch in loader], axis=0)
        results = []
        for spec in specs:
            if self.supernet is not None:
                logits = self.predict_spec_onehot(graphs, spec, batch_size)
            else:
                logits = self.predict(graphs, spec, batch_size)
            score = multitask_score_or_fallback(trues, logits, metric)
            results.append(SpecScore(spec=spec, score=score,
                                     logits=logits if keep_logits else None))
        return results

    # ------------------------------------------------------------------
    # Dynamic batching: single-graph requests through a BatchingRouter.
    def router(self, **kwargs):
        """A new :class:`~repro.serve.router.BatchingRouter` over this
        service, installed as the default behind :meth:`submit` /
        :meth:`flush` / :meth:`tick` / :meth:`predict_one`.  Keyword
        arguments are the router's (``max_batch_size``, ``max_delay``,
        ``max_pending``, ``max_undrained``, ``onehot``).

        Replacing an existing default router flushes the replaced router's
        pending requests — reconfiguring must not orphan queued tickets in
        an unreachable router, where they would never resolve.  The flush
        happens *after* the swap and outside the service lock (router
        locks are above service locks in the documented order), so
        concurrent submitters either land in the old router and get
        flushed here, or in the new one."""
        from .router import BatchingRouter

        new = BatchingRouter(self, **kwargs)
        with self._lock:
            old, self._default_router = self._default_router, new
        if old is not None:
            old.flush()
        return new

    @property
    def default_router(self):
        """The router behind the single-graph facade (created on first
        use with default parameters; configure via :meth:`router`)."""
        with self._lock:
            if self._default_router is None:
                from .router import BatchingRouter

                self._default_router = BatchingRouter(self)
            return self._default_router

    def submit(self, graph, spec):
        """Enqueue one graph for dynamic batching; returns its
        :class:`~repro.serve.router.RoutedRequest` ticket.

        Safe against a concurrent :meth:`router` reconfigure: if this
        submit lands on a router that was replaced mid-call (so the
        replacement's clean-up flush may have already run), the ticket is
        flushed out of the retired router here instead of orphaning."""
        router = self.default_router
        ticket = router.submit(graph, spec)
        if not ticket.done:
            with self._lock:
                retired = router is not self._default_router
            if retired:
                router.flush(spec)
        return ticket

    def flush(self, spec=None):
        """Force the default router's pending micro-batches out."""
        return self.default_router.flush(spec)

    def tick(self, ticks: int = 1):
        """Advance the default router's simulated clock (deadline flushes)."""
        return self.default_router.tick(ticks)

    def predict_one(self, graph, spec) -> np.ndarray:
        """Synchronous single-graph prediction through the router —
        shape ``(num_tasks,)`` logits for one graph, batched with any
        requests already queued for ``spec``."""
        return self.default_router.predict_one(graph, spec)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Combined registry + batch-cache + response-cache counters
        (plus the default router's, once one exists) and the compiled
        kernel backend's availability/build state."""
        with self._lock:
            logits = {
                "entries": len(self._logit_cache),
                "capacity": self.logit_cache_size,
                "hits": self.logit_hits,
                "misses": self.logit_misses,
            }
            router = self._default_router
        stats = {
            "models": self.models.stats(),
            "batches": self.batch_cache.stats(),
            "logits": logits,
            "compiled": compiled_status(),
        }
        if self.policy is not None:
            policy = {"dtype": self.policy.dtype}
            if self.policy.workspace is not None:
                policy["workspace"] = self.policy.workspace.stats()
            stats["policy"] = policy
        if router is not None:
            stats["router"] = router.stats()
        return stats

    def __repr__(self) -> str:
        return (f"InferenceService(models={len(self.models)}, "
                f"cached_splits={len(self.batch_cache)}, "
                f"supernet={'yes' if self.supernet is not None else 'no'})")
