"""Dynamic-batching request router: single-graph requests -> micro-batches.

The batch-serving layer answers requests for *lists* of graphs; the true
online-serving workload is the opposite shape — a stream of independent
single-graph requests, each too small to amortize a forward on its own.
:class:`BatchingRouter` closes that gap:

* :meth:`~BatchingRouter.submit` accepts one graph + one strategy spec and
  returns a :class:`RoutedRequest` ticket immediately;
* pending requests are **bucketed by spec** (mixed-spec queues never share
  a forward — each spec routes to its own model / one-hot configuration)
  and accumulated in a bounded queue;
* a bucket is flushed into a **micro-batch** when it reaches
  ``max_batch_size`` (flush-on-size), when its oldest request has waited
  ``max_delay`` clock ticks (flush-on-deadline), or on an explicit
  :meth:`~BatchingRouter.flush`;
* each micro-batch costs **one** disjoint-union collation + **one**
  forward through the owning :class:`~repro.serve.service.InferenceService`
  (``batch_size=len(micro-batch)``), and the response rows are sliced
  back out to the tickets in submission order.

Clock semantics
---------------
The router keeps a *simulated* clock: :meth:`~BatchingRouter.tick`
advances it and fires deadline flushes.  Nothing in the router reads
wall-clock time, so deadline behaviour is exactly reproducible in tests;
a deployment maps ticks to real time by calling ``tick()`` from a timer
(e.g. one tick per millisecond of event-loop idle).

Parity guarantee
----------------
A routed request's logits are, by construction, the request's row of
``service.predict(micro_batch_graphs, spec, batch_size=len(micro_batch))``
— bit-identical to what the caller would get asking the service for the
assembled micro-batch directly, and for a single-request flush
bit-identical to ``service.predict([graph], spec)``.  Note that batching
*changes the BLAS summation shapes*: a request served inside a larger
micro-batch can differ from its own batch-of-one forward in the last few
float bits (~1e-15), exactly as ``predict`` on a larger list does.  The
contract pinned by ``tests/serve/test_router.py`` is therefore stated
against ``predict`` on the same graphs.

Because micro-batches run through the service, they inherit the whole
cache stack: repeated identical micro-batches (polling traffic) hit the
response-memoization LRU, repeated graph sets hit the batch/plan cache,
and :meth:`InferenceService.invalidate_logits` reaches routed responses
exactly as it reaches list requests.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["BatchingRouter", "RoutedRequest"]


class RoutedRequest:
    """Ticket for one submitted graph; resolves when its bucket flushes.

    Attributes
    ----------
    graph, spec:
        The submitted graph and its strategy spec.
    seq:
        Global submission index — the order :meth:`BatchingRouter.drain`
        preserves.
    submitted_tick:
        Router clock value at submission (deadline flushes fire when
        ``now - submitted_tick >= max_delay``).
    """

    __slots__ = ("graph", "spec", "seq", "submitted_tick", "_logits")

    def __init__(self, graph, spec, seq: int, submitted_tick: int):
        self.graph = graph
        self.spec = spec
        self.seq = seq
        self.submitted_tick = submitted_tick
        self._logits: np.ndarray | None = None

    @property
    def done(self) -> bool:
        return self._logits is not None

    def result(self) -> np.ndarray:
        """This request's logits row, shape ``(num_tasks,)``.

        The row is private to the ticket (sliced and copied at flush), so
        callers may mutate it freely.  Raises while still queued — call
        :meth:`BatchingRouter.flush` / :meth:`BatchingRouter.tick` first,
        or use :meth:`BatchingRouter.predict_one`.
        """
        if self._logits is None:
            raise RuntimeError(
                "request is still queued (flush() or tick() the router)")
        return self._logits

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"RoutedRequest(seq={self.seq}, {state})"


class BatchingRouter:
    """Bucket single-graph requests into server-side micro-batches.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.InferenceService` that executes
        micro-batches (and supplies every cache behind them).
    max_batch_size:
        Flush a spec's bucket as soon as it holds this many requests.
    max_delay:
        Flush a bucket once its *oldest* request has waited this many
        clock ticks — bounds latency for trickle traffic that never fills
        a micro-batch.
    max_pending:
        Bound on the total queue across all buckets.  A submit that would
        exceed it first flushes the bucket holding the globally oldest
        request (backpressure by serving, never by dropping).
    max_undrained:
        Bound on the completed-but-undrained window behind :meth:`drain`.
        Callers that hold their tickets never need ``drain``, so the
        router must not retain every served request (graph + logits row)
        on their behalf forever; once the window overflows, the oldest
        completed entries silently age out of ``drain``'s view (the
        tickets themselves stay valid for whoever holds them).
    onehot:
        Route micro-batches through the supernet's one-hot fast path
        (:meth:`InferenceService.predict_spec_onehot`) instead of
        persistent derived models — no per-spec model build, useful when
        the spec mix is wide.  Requires the service to have a supernet
        attached.
    """

    def __init__(self, service, max_batch_size: int = 32, max_delay: int = 4,
                 max_pending: int = 1024, max_undrained: int = 4096,
                 onehot: bool = False):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1 tick")
        if max_pending < max_batch_size:
            raise ValueError("max_pending must be >= max_batch_size")
        if max_undrained < 1:
            raise ValueError("max_undrained must be >= 1")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.max_undrained = max_undrained
        self.onehot = onehot
        self._buckets: "OrderedDict[object, list[RoutedRequest]]" = OrderedDict()
        self._completed: list[RoutedRequest] = []
        self._tick = 0
        self._seq = 0
        self.served = 0
        self.batches = 0
        self.flushes = {"size": 0, "deadline": 0, "forced": 0, "backpressure": 0}

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated-clock value."""
        return self._tick

    @property
    def pending(self) -> int:
        """Requests queued across all spec buckets."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def submit(self, graph, spec) -> RoutedRequest:
        """Enqueue one graph under ``spec``; returns its ticket.

        Flush-on-size fires inline: when this submit fills the spec's
        bucket, the micro-batch runs immediately and the returned ticket
        is already ``done``.
        """
        request = RoutedRequest(graph, spec, self._seq, self._tick)
        self._seq += 1
        self._buckets.setdefault(spec, []).append(request)
        if len(self._buckets[spec]) >= self.max_batch_size:
            self._flush_bucket(spec, "size")
        elif self.pending > self.max_pending:
            oldest = min(self._buckets, key=lambda s: self._buckets[s][0].seq)
            self._flush_bucket(oldest, "backpressure")
        return request

    def tick(self, ticks: int = 1) -> list[RoutedRequest]:
        """Advance the simulated clock, firing deadline flushes.

        Returns the requests completed by those flushes, in submission
        order."""
        completed: list[RoutedRequest] = []
        for _ in range(ticks):
            self._tick += 1
            expired = [spec for spec, bucket in self._buckets.items()
                       if self._tick - bucket[0].submitted_tick >= self.max_delay]
            for spec in expired:
                completed.extend(self._flush_bucket(spec, "deadline"))
        return sorted(completed, key=lambda r: r.seq)

    def flush(self, spec=None) -> list[RoutedRequest]:
        """Force pending micro-batches out (one spec, or all of them).

        An empty queue (or an unknown/empty spec bucket) is a no-op
        returning ``[]``.  Returns the completed requests in submission
        order."""
        if spec is not None:
            specs = [spec] if self._buckets.get(spec) else []
        else:
            # Oldest-first across buckets, so backlogged traffic is served
            # in arrival order.
            specs = sorted(self._buckets, key=lambda s: self._buckets[s][0].seq)
        completed: list[RoutedRequest] = []
        for s in specs:
            completed.extend(self._flush_bucket(s, "forced"))
        return sorted(completed, key=lambda r: r.seq)

    def drain(self) -> list[RoutedRequest]:
        """Completed-but-undrained requests, in submission order.

        Each completed request is returned exactly once across successive
        ``drain`` calls — the consumption side of the ticket API for
        callers that poll instead of holding tickets.  The window is
        bounded by ``max_undrained``: entries older than that have aged
        out (ticket holders are unaffected)."""
        out = sorted(self._completed, key=lambda r: r.seq)
        self._completed = []
        return out

    def predict_one(self, graph, spec) -> np.ndarray:
        """Synchronous convenience: submit, force completion, return logits.

        Piggy-backs on whatever the spec's bucket already holds — the
        forced flush serves *all* of its pending requests in one forward,
        so interleaving ``predict_one`` with ``submit`` traffic still
        batches."""
        request = self.submit(graph, spec)
        if not request.done:
            self._flush_bucket(spec, "forced")
        return request.result()

    # ------------------------------------------------------------------
    def _flush_bucket(self, spec, trigger: str) -> list[RoutedRequest]:
        bucket = self._buckets.pop(spec, None)
        if not bucket:
            return []
        graphs = [request.graph for request in bucket]
        # One disjoint-union collation + one forward for the whole
        # micro-batch: batch_size=len(graphs) makes the shared loader
        # yield a single batch, and the service's batch/plan/response
        # caches apply to it like to any list request.
        if self.onehot:
            logits = self.service.predict_spec_onehot(graphs, spec,
                                                      batch_size=len(graphs))
        else:
            logits = self.service.predict(graphs, spec,
                                          batch_size=len(graphs))
        for i, request in enumerate(bucket):
            request._logits = np.array(logits[i], copy=True)
        self.served += len(bucket)
        self.batches += 1
        self.flushes[trigger] += 1
        self._completed.extend(bucket)
        if len(self._completed) > self.max_undrained:
            # Bound the drain window: a caller that holds its tickets and
            # never drains must not make the router retain every served
            # graph + logits row for the life of the process.
            del self._completed[:len(self._completed) - self.max_undrained]
        return bucket

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "pending": self.pending,
            "served": self.served,
            "batches": self.batches,
            "mean_batch_size": (self.served / self.batches
                                if self.batches else 0.0),
            "flushes": dict(self.flushes),
            "tick": self._tick,
        }

    def __repr__(self) -> str:
        return (f"BatchingRouter(pending={self.pending}, served={self.served}, "
                f"batches={self.batches}, max_batch_size={self.max_batch_size}, "
                f"max_delay={self.max_delay})")
