"""Dynamic-batching request router: single-graph requests -> micro-batches.

The batch-serving layer answers requests for *lists* of graphs; the true
online-serving workload is the opposite shape — a stream of independent
single-graph requests, each too small to amortize a forward on its own.
:class:`BatchingRouter` closes that gap:

* :meth:`~BatchingRouter.submit` accepts one graph + one strategy spec and
  returns a :class:`RoutedRequest` ticket immediately;
* pending requests are **bucketed by spec** (mixed-spec queues never share
  a forward — each spec routes to its own model / one-hot configuration)
  and accumulated in a bounded queue;
* a bucket is flushed into a **micro-batch** when it reaches
  ``max_batch_size`` (flush-on-size), when its oldest request has waited
  ``max_delay`` clock ticks (flush-on-deadline), or on an explicit
  :meth:`~BatchingRouter.flush`;
* each micro-batch costs **one** disjoint-union collation + **one**
  forward through the owning :class:`~repro.serve.service.InferenceService`
  (``batch_size=len(micro-batch)``), and the response rows are sliced
  back out to the tickets in submission order.

Clock semantics
---------------
The router keeps a *simulated* clock: :meth:`~BatchingRouter.tick`
advances it and fires deadline flushes.  Nothing in the router reads
wall-clock time, so deadline behaviour is exactly reproducible in tests;
a deployment maps ticks to real time by calling ``tick()`` from a timer —
that is precisely what :class:`~repro.serve.server.InferenceServer`'s
background ticker thread does.

Thread safety and execution modes
---------------------------------
All router state (ticket sequence counter, buckets, counters, drain
window) is guarded by one ``RLock``; in particular **ticket allocation
and bucket insert are atomic**, so concurrent submitters get unique,
strictly increasing ``seq`` numbers and :meth:`drain` preserves global
submission order.  Micro-batch execution runs in one of two modes:

* **inline** (default, ``executor=None``) — the flushing call executes
  the forward itself, holding no router lock during the service call
  except for final bookkeeping.  ``submit`` that fills a bucket returns
  an already-``done`` ticket, exactly as before.
* **executor** — ``executor`` is a callable receiving a zero-argument
  job; the router dispatches flushed micro-batches to it and returns
  without waiting.  :class:`~repro.serve.server.InferenceServer` passes
  the enqueue side of its worker pool here.  Tickets resolve when a
  worker runs the job; callers block on :meth:`RoutedRequest.wait`.

Lock order: the router lock is *above* every
:class:`~repro.serve.service.InferenceService` lock (the flush path calls
into the service while holding no router lock) — see
:mod:`repro.serve.service` for the full stack-wide order.

Parity guarantee
----------------
A routed request's logits are, by construction, the request's row of
``service.predict(micro_batch_graphs, spec, batch_size=len(micro_batch))``
— bit-identical to what the caller would get asking the service for the
assembled micro-batch directly, and for a single-request flush
bit-identical to ``service.predict([graph], spec)``.  Note that batching
*changes the BLAS summation shapes*: a request served inside a larger
micro-batch can differ from its own batch-of-one forward in the last few
float bits (~1e-15), exactly as ``predict`` on a larger list does.  The
contract pinned by ``tests/serve/test_router.py`` is therefore stated
against ``predict`` on the same graphs; every ticket records its
micro-batch (:attr:`RoutedRequest.batch_graphs` /
:attr:`RoutedRequest.batch_index`) so the reference is always
reconstructible — the concurrency stress tests replay it serially.

Because micro-batches run through the service, they inherit the whole
cache stack: repeated identical micro-batches (polling traffic) hit the
response-memoization LRU, repeated graph sets hit the batch/plan cache,
and :meth:`InferenceService.invalidate_logits` reaches routed responses
exactly as it reaches list requests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["BatchingRouter", "RoutedRequest"]


class RoutedRequest:
    """Ticket for one submitted graph; resolves when its bucket flushes.

    Attributes
    ----------
    graph, spec:
        The submitted graph and its strategy spec.
    seq:
        Global submission index — unique and strictly increasing even
        under concurrent submitters (allocation happens under the router
        lock), and the order :meth:`BatchingRouter.drain` preserves.
    submitted_tick:
        Router clock value at submission (deadline flushes fire when
        ``now - submitted_tick >= max_delay``).
    batch_graphs / batch_index:
        Set at completion: the tuple of graphs that formed this request's
        micro-batch and this request's row position in it.  Together they
        make the parity reference reconstructible after the fact —
        ``service.predict(list(batch_graphs), spec,
        batch_size=len(batch_graphs))[batch_index]`` is bit-identical to
        :meth:`result`.
    """

    __slots__ = ("graph", "spec", "seq", "submitted_tick", "batch_graphs",
                 "batch_index", "_logits", "_error", "_event")

    def __init__(self, graph, spec, seq: int, submitted_tick: int):
        self.graph = graph
        self.spec = spec
        self.seq = seq
        self.submitted_tick = submitted_tick
        self.batch_graphs: tuple | None = None
        self.batch_index: int | None = None
        self._logits: np.ndarray | None = None
        self._error: BaseException | None = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        """True once the micro-batch executed (successfully or not)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> np.ndarray:
        """Block until this request's micro-batch has executed.

        Returns the logits row (see :meth:`result`).  Raises
        ``TimeoutError`` if ``timeout`` seconds elapse first — the ticket
        stays valid and may be waited on again.  Built on a
        ``threading.Event``, so any number of threads may wait on one
        ticket.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request seq={self.seq} still queued after {timeout}s "
                "(is the router being flushed/ticked, or the server running?)")
        return self.result()

    def result(self) -> np.ndarray:
        """This request's logits row, shape ``(num_tasks,)``.

        The row is private to the ticket (sliced and copied at flush), so
        callers may mutate it freely.  Raises while still queued — call
        :meth:`BatchingRouter.flush` / :meth:`BatchingRouter.tick` first,
        use :meth:`BatchingRouter.predict_one`, or block on :meth:`wait`.
        If the micro-batch execution failed, re-raises that error.
        """
        if self._error is not None:
            raise RuntimeError(
                f"micro-batch execution failed for request seq={self.seq}"
            ) from self._error
        if self._logits is None:
            raise RuntimeError(
                "request is still queued (flush() or tick() the router)")
        return self._logits

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"RoutedRequest(seq={self.seq}, {state})"


class BatchingRouter:
    """Bucket single-graph requests into server-side micro-batches.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.InferenceService` that executes
        micro-batches (and supplies every cache behind them).
    max_batch_size:
        Flush a spec's bucket as soon as it holds this many requests.
    max_delay:
        Flush a bucket once its *oldest* request has waited this many
        clock ticks — bounds latency for trickle traffic that never fills
        a micro-batch.
    max_pending:
        Bound on the total queue across all buckets.  A submit that would
        exceed it first flushes the bucket holding the globally oldest
        request (backpressure by serving, never by dropping).
    max_undrained:
        Bound on the completed-but-undrained window behind :meth:`drain`.
        Callers that hold their tickets never need ``drain``, so the
        router must not retain every served request (graph + logits row)
        on their behalf forever; once the window overflows, the oldest
        completed entries silently age out of ``drain``'s view (the
        tickets themselves stay valid for whoever holds them).
    onehot:
        Route micro-batches through the supernet's one-hot fast path
        (:meth:`InferenceService.predict_spec_onehot`) instead of
        persistent derived models — no per-spec model build, useful when
        the spec mix is wide.  Requires the service to have a supernet
        attached.
    executor:
        Optional callable receiving a zero-argument job per flushed
        micro-batch (see module docstring).  ``None`` executes inline.
    """

    def __init__(self, service, max_batch_size: int = 32, max_delay: int = 4,
                 max_pending: int = 1024, max_undrained: int = 4096,
                 onehot: bool = False, executor=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1 tick")
        if max_pending < max_batch_size:
            raise ValueError("max_pending must be >= max_batch_size")
        if max_undrained < 1:
            raise ValueError("max_undrained must be >= 1")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.max_undrained = max_undrained
        self.onehot = onehot
        self.executor = executor
        self._lock = threading.RLock()
        self._buckets: "OrderedDict[object, list[RoutedRequest]]" = OrderedDict()
        self._completed: list[RoutedRequest] = []
        self._tick = 0
        self._seq = 0
        self.served = 0
        self.batches = 0
        self.flushes = {"size": 0, "deadline": 0, "forced": 0, "backpressure": 0}

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated-clock value."""
        return self._tick

    @property
    def pending(self) -> int:
        """Requests queued across all spec buckets."""
        with self._lock:
            return sum(len(bucket) for bucket in self._buckets.values())

    def submit(self, graph, spec) -> RoutedRequest:
        """Enqueue one graph under ``spec``; returns its ticket.

        Ticket allocation (the ``seq`` counter) and the bucket insert are
        one atomic step under the router lock, so concurrent submitters —
        including submits racing a reconfiguring service or a mid-flush
        worker — cannot interleave sequence numbers or lose requests.

        Flush-on-size fires from this call: without an executor the
        micro-batch runs inline and the returned ticket is already
        ``done``; with one, the batch is dispatched and the ticket
        resolves when a worker executes it.
        """
        flush_spec = trigger = None
        with self._lock:
            request = RoutedRequest(graph, spec, self._seq, self._tick)
            self._seq += 1
            bucket = self._buckets.setdefault(spec, [])
            bucket.append(request)
            if len(bucket) >= self.max_batch_size:
                flush_spec, trigger = spec, "size"
            elif self.pending > self.max_pending:
                oldest = min(self._buckets, key=lambda s: self._buckets[s][0].seq)
                flush_spec, trigger = oldest, "backpressure"
        if flush_spec is not None:
            self._flush_bucket(flush_spec, trigger)
        return request

    def tick(self, ticks: int = 1) -> list[RoutedRequest]:
        """Advance the simulated clock, firing deadline flushes.

        Returns the requests flushed by those deadlines, in submission
        order (inline mode: already ``done``; executor mode: dispatched,
        resolve via :meth:`RoutedRequest.wait`)."""
        completed: list[RoutedRequest] = []
        for _ in range(ticks):
            with self._lock:
                self._tick += 1
                expired = [spec for spec, bucket in self._buckets.items()
                           if self._tick - bucket[0].submitted_tick >= self.max_delay]
            for spec in expired:
                completed.extend(self._flush_bucket(spec, "deadline"))
        return sorted(completed, key=lambda r: r.seq)

    def flush(self, spec=None) -> list[RoutedRequest]:
        """Force pending micro-batches out (one spec, or all of them).

        An empty queue (or an unknown/empty spec bucket) is a no-op
        returning ``[]``.  Returns the flushed requests in submission
        order (see :meth:`tick` for executor-mode semantics)."""
        with self._lock:
            if spec is not None:
                specs = [spec] if self._buckets.get(spec) else []
            else:
                # Oldest-first across buckets, so backlogged traffic is
                # served in arrival order.
                specs = sorted(self._buckets, key=lambda s: self._buckets[s][0].seq)
        completed: list[RoutedRequest] = []
        for s in specs:
            completed.extend(self._flush_bucket(s, "forced"))
        return sorted(completed, key=lambda r: r.seq)

    def drain(self) -> list[RoutedRequest]:
        """Completed-but-undrained requests, in submission order.

        Each completed request is returned exactly once across successive
        ``drain`` calls — the consumption side of the ticket API for
        callers that poll instead of holding tickets.  Submission order is
        preserved within a drain (``seq`` is allocated under the router
        lock, so the order is well-defined even under concurrent
        submitters).  The window is bounded by ``max_undrained``: entries
        older than that have aged out (ticket holders are unaffected)."""
        with self._lock:
            out = sorted(self._completed, key=lambda r: r.seq)
            self._completed = []
        return out

    def predict_one(self, graph, spec) -> np.ndarray:
        """Synchronous convenience: submit, force completion, return logits.

        Piggy-backs on whatever the spec's bucket already holds — the
        forced flush serves *all* of its pending requests in one forward,
        so interleaving ``predict_one`` with ``submit`` traffic still
        batches.  Always waits on the ticket's event (not ``result()``):
        even in inline mode a concurrent caller may have popped this
        request's bucket and be mid-forward with it, in which case the
        forced flush here is a no-op and the event resolves when that
        execution finishes."""
        request = self.submit(graph, spec)
        if not request.done:
            self._flush_bucket(spec, "forced")
        return request.wait()

    # ------------------------------------------------------------------
    def _flush_bucket(self, spec, trigger: str) -> list[RoutedRequest]:
        """Pop ``spec``'s bucket and execute (or dispatch) its micro-batch.

        The pop and the flush counters are atomic under the router lock;
        the service call happens with **no router lock held**, so inline
        execution never blocks concurrent submitters on the forward and an
        executor's bounded queue cannot deadlock against workers doing
        completion bookkeeping."""
        with self._lock:
            bucket = self._buckets.pop(spec, None)
            if not bucket:
                return []
            self.batches += 1
            self.flushes[trigger] += 1
        executor = self.executor  # one read: robust to a concurrent swap
        if executor is None:
            self._execute(spec, bucket)
        else:
            executor(lambda: self._execute(spec, bucket))
        return bucket

    def _execute(self, spec, bucket: list[RoutedRequest]) -> None:
        """Run one micro-batch and resolve its tickets (worker-side half).

        One disjoint-union collation + one forward for the whole
        micro-batch: ``batch_size=len(graphs)`` makes the shared loader
        yield a single batch, and the service's batch/plan/response caches
        apply to it like to any list request.  A failed forward resolves
        every ticket with the error instead of leaving waiters hanging."""
        graphs = [request.graph for request in bucket]
        try:
            if self.onehot:
                logits = self.service.predict_spec_onehot(graphs, spec,
                                                          batch_size=len(graphs))
            else:
                logits = self.service.predict(graphs, spec,
                                              batch_size=len(graphs))
        except BaseException as err:  # resolve waiters, then bookkeeping
            for request in bucket:
                request._error = err
                request._event.set()
            raise
        batch_graphs = tuple(graphs)
        for i, request in enumerate(bucket):
            request._logits = np.array(logits[i], copy=True)
            request.batch_graphs = batch_graphs
            request.batch_index = i
            request._event.set()
        with self._lock:
            self.served += len(bucket)
            self._completed.extend(bucket)
            if len(self._completed) > self.max_undrained:
                # Bound the drain window: a caller that holds its tickets
                # and never drains must not make the router retain every
                # served graph + logits row for the life of the process.
                del self._completed[:len(self._completed) - self.max_undrained]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": sum(len(b) for b in self._buckets.values()),
                "served": self.served,
                "batches": self.batches,
                "mean_batch_size": (self.served / self.batches
                                    if self.batches else 0.0),
                "flushes": dict(self.flushes),
                "tick": self._tick,
            }

    def __repr__(self) -> str:
        return (f"BatchingRouter(pending={self.pending}, served={self.served}, "
                f"batches={self.batches}, max_batch_size={self.max_batch_size}, "
                f"max_delay={self.max_delay})")
