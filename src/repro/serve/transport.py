"""Transports for the concurrent serving runtime: in-process + stdlib HTTP.

A transport turns the :class:`~repro.serve.server.InferenceServer` object
API into a wire protocol.  Both transports here speak the **same JSON
dict protocol** through one shared :class:`ServingProtocol` core, so the
in-process transport is a faithful stand-in for the HTTP one in tests
(same serialization, same error paths, no sockets):

* ``predict``  — ``{"graph": G, "spec": S[, "timeout_s": t]}`` ->
  ``{"logits": [...], "seq": n, "batch_size": k}`` (blocks until the
  micro-batch executes; the deadline ticker bounds the wait);
* ``submit``   — same request -> ``{"seq": n}`` immediately; poll
  ``result`` with ``{"seq": n[, "timeout_s": t]}`` ->
  ``{"logits": ...}``, ``{"pending": true}``, or — for a failed
  micro-batch — ``{"error": msg, "seq": n}``.  A delivered result is a
  **one-shot claim** (like the router's ``drain``): the ticket leaves the
  window atomically with delivery (the pop under the window lock decides
  the single winner among concurrent pollers; every other poller gets
  ``unknown or expired seq``), and an error delivery is claimed exactly
  the same way — a failed ticket cannot wedge in the window;
* ``stats``    — ``{}`` -> the server's full stats tree.

Graphs go over the wire as ``{"x": [[...]], "edge_index": [[...]],
"edge_attr": [[...]], "y": [...]|null}`` (the struct-of-arrays layout of
:class:`~repro.graph.graph.Graph`); specs as ``{"identity": [...],
"fusion": ..., "readout": ..., "conv": ...}``.

The HTTP transport is a deliberately minimal stdlib ``http.server``
deployment surface — ``ThreadingHTTPServer`` gives one thread per
connection, so a blocking ``/predict`` holds only its own connection
while the server's worker pool does the real work.  POST
``/submit | /predict``, POST-or-GET ``/stats``, POST ``/result``; errors
come back as ``{"error": msg}`` with a 4xx/5xx status.  Binds to
loopback by default; it does no auth — put a real ingress in front of it
before exposing it beyond localhost.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

__all__ = [
    "ServingProtocol",
    "InProcessTransport",
    "HTTPServingTransport",
    "HTTPServingClient",
    "TransportError",
    "TransportConnectionError",
    "graph_to_payload",
    "graph_from_payload",
    "spec_to_payload",
    "spec_from_payload",
]


# ----------------------------------------------------------------------
# payload <-> object codecs
# ----------------------------------------------------------------------
def graph_to_payload(graph) -> dict:
    """JSON-safe dict for one :class:`~repro.graph.graph.Graph`."""
    return {
        "x": graph.x.tolist(),
        "edge_index": graph.edge_index.tolist(),
        "edge_attr": graph.edge_attr.tolist(),
        "y": None if graph.y is None else graph.y.tolist(),
    }


def graph_from_payload(payload: dict):
    """Inverse of :func:`graph_to_payload` (validates via ``Graph``)."""
    from ..graph.graph import Graph

    return Graph(
        x=np.asarray(payload["x"], dtype=np.int64).reshape(-1, 2),
        edge_index=np.asarray(payload["edge_index"], dtype=np.int64).reshape(2, -1),
        edge_attr=np.asarray(payload["edge_attr"], dtype=np.int64).reshape(-1, 2),
        y=payload.get("y"),
    )


def spec_to_payload(spec) -> dict:
    """JSON-safe dict for one :class:`FineTuneStrategySpec`."""
    return {"identity": list(spec.identity), "fusion": spec.fusion,
            "readout": spec.readout, "conv": spec.conv}


def spec_from_payload(payload: dict):
    """Inverse of :func:`spec_to_payload`."""
    from ..core.space import FineTuneStrategySpec

    return FineTuneStrategySpec(
        identity=tuple(payload["identity"]), fusion=payload["fusion"],
        readout=payload["readout"], conv=payload.get("conv", "pre_trained"))


def _json_safe(value):
    """Recursively convert numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        # Checked before np.integer: np.bool_ is not an np.integer
        # subclass, and json.dumps rejects it outright.
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class TransportError(ValueError):
    """Malformed or unanswerable request (maps to HTTP 4xx)."""


class TransportConnectionError(RuntimeError):
    """The server did not answer at all (socket refused/dropped/timed out).

    Distinct from a served error status — a request that *reached* the
    server raises a plain ``RuntimeError`` with the HTTP code.  The
    cluster router keys failover on exactly this distinction: connection
    failure means the shard is gone (retry, then re-dispatch); a 4xx/5xx
    means the shard is alive and the request itself failed.
    """


# ----------------------------------------------------------------------
# shared protocol core
# ----------------------------------------------------------------------
class ServingProtocol:
    """Dict-in / dict-out request handlers shared by every transport.

    Holds a bounded window of submitted tickets so ``submit``/``result``
    can speak sequence numbers instead of object references across a
    wire.  Resolved tickets age out of the window once it overflows
    (``ticket_window``), oldest first — exactly like the router's drain
    window, unresolved tickets are never dropped.
    """

    def __init__(self, server, ticket_window: int = 4096):
        if ticket_window < 1:
            raise ValueError("ticket_window must be >= 1")
        self.server = server
        self.ticket_window = ticket_window
        self._tickets: "OrderedDict[int, object]" = OrderedDict()
        self._lock = threading.Lock()

    # -- request decoding ------------------------------------------------
    @staticmethod
    def _decode(payload: dict):
        try:
            graph = graph_from_payload(payload["graph"])
            spec = spec_from_payload(payload["spec"])
        except (KeyError, TypeError, ValueError) as err:
            raise TransportError(f"malformed request: {err}") from err
        return graph, spec

    def _remember(self, ticket) -> None:
        with self._lock:
            self._tickets[ticket.seq] = ticket
            if len(self._tickets) > self.ticket_window:
                # Age out *resolved* tickets oldest-first; pending tickets
                # are never dropped (their result must stay claimable).
                done = [s for s, t in self._tickets.items() if t.done]
                for seq in done[:len(self._tickets) - self.ticket_window]:
                    del self._tickets[seq]

    # -- handlers --------------------------------------------------------
    def handle_predict(self, payload: dict) -> dict:
        graph, spec = self._decode(payload)
        timeout = payload.get("timeout_s")
        ticket = self.server.request(graph, spec, timeout=timeout)
        return {"logits": ticket.result().tolist(), "seq": ticket.seq,
                "batch_size": len(ticket.batch_graphs)}

    def handle_submit(self, payload: dict) -> dict:
        graph, spec = self._decode(payload)
        ticket = self.server.submit(graph, spec)
        self._remember(ticket)
        return {"seq": ticket.seq}

    def handle_result(self, payload: dict) -> dict:
        try:
            seq = int(payload["seq"])
        except (KeyError, TypeError, ValueError) as err:
            raise TransportError("result needs an integer 'seq'") from err
        with self._lock:
            ticket = self._tickets.get(seq)
        if ticket is None:
            raise TransportError(f"unknown or expired seq {seq}")
        timeout = payload.get("timeout_s", 0.0)
        if not ticket.done and timeout:
            try:
                ticket.wait(float(timeout))
            except TimeoutError:
                pass
            except RuntimeError:
                pass  # failed micro-batch: delivered as a claim below
        if not ticket.done:
            return {"seq": seq, "pending": True}
        # One-shot claim, atomically: the pop under the lock decides the
        # single winner among concurrent pollers of the same seq — every
        # later poller finds the window empty and gets unknown/expired.
        # Delivery (including *error* delivery) happens only on the
        # claimed ticket, so a failed micro-batch leaves the window on
        # its first poll instead of wedging there re-raising forever.
        with self._lock:
            claimed = self._tickets.pop(seq, None)
        if claimed is None:
            raise TransportError(f"unknown or expired seq {seq}")
        try:
            logits = claimed.result()
        except RuntimeError as err:
            cause = err.__cause__
            message = (f"{type(cause).__name__}: {cause}"
                       if cause is not None else str(err))
            return {"seq": seq, "error": message}
        return {"seq": seq, "logits": logits.tolist(),
                "batch_size": len(claimed.batch_graphs)}

    def handle_stats(self, payload: dict) -> dict:
        return _json_safe(self.server.stats())

    HANDLERS = {"predict": handle_predict, "submit": handle_submit,
                "result": handle_result, "stats": handle_stats}

    def handle(self, op: str, payload: dict) -> dict:
        handler = self.HANDLERS.get(op)
        if handler is None:
            raise TransportError(f"unknown operation {op!r}")
        return handler(self, payload or {})


class InProcessTransport:
    """The dict protocol without sockets — same codecs, same errors.

    Useful as an embedded API for callers that already hold the graphs
    (and as the deterministic test double for the HTTP transport)."""

    def __init__(self, server, ticket_window: int = 4096):
        self.protocol = ServingProtocol(server, ticket_window=ticket_window)

    def request(self, op: str, payload: dict | None = None) -> dict:
        return self.protocol.handle(op, payload or {})

    # convenience mirrors of the client API
    def predict(self, graph, spec, timeout_s: float | None = None) -> np.ndarray:
        payload = {"graph": graph_to_payload(graph), "spec": spec_to_payload(spec)}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return np.asarray(self.request("predict", payload)["logits"])

    def submit(self, graph, spec) -> int:
        return self.request("submit", {"graph": graph_to_payload(graph),
                                       "spec": spec_to_payload(spec)})["seq"]

    def result(self, seq: int, timeout_s: float = 0.0) -> dict:
        return self.request("result", {"seq": seq, "timeout_s": timeout_s})

    def stats(self) -> dict:
        return self.request("stats")


# ----------------------------------------------------------------------
# stdlib HTTP transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # set by HTTPServingTransport on the server object
    def _core(self) -> ServingProtocol:
        return self.server.serving_protocol  # type: ignore[attr-defined]

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, op: str, payload: dict) -> None:
        try:
            self._reply(200, self._core().handle(op, payload))
        except TransportError as err:
            self._reply(400, {"error": str(err)})
        except TimeoutError as err:
            self._reply(504, {"error": str(err)})
        except BaseException as err:
            # Wire boundary: protocol-level failures become a 500 so one
            # bad request cannot kill the handler thread.  Everything
            # outside Exception (KeyboardInterrupt, SystemExit) must keep
            # propagating — swallowing those would turn Ctrl-C into an
            # opaque 500 and keep a dying process serving.
            if not isinstance(err, Exception):
                raise
            self._reply(500, {"error": f"{type(err).__name__}: {err}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        op = self.path.strip("/")
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, TypeError) as err:
            self._reply(400, {"error": f"bad JSON body: {err}"})
            return
        self._dispatch(op, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.strip("/") == "stats":
            self._dispatch("stats", {})
        else:
            self._reply(404, {"error": "GET supports /stats only"})

    def log_message(self, fmt, *args):  # quiet by default
        pass


class HTTPServingTransport:
    """Minimal stdlib HTTP/JSON front end for an :class:`InferenceServer`.

    ``ThreadingHTTPServer`` spawns one thread per connection; handler
    threads block in ``predict``/``result`` waits while the server's
    worker pool executes micro-batches.  Binds loopback on an ephemeral
    port by default (``port=0``); read :attr:`port` after :meth:`start`.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0,
                 ticket_window: int = 4096):
        self.serving_server = server
        self.protocol = ServingProtocol(server, ticket_window=ticket_window)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.serving_protocol = self.protocol  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HTTPServingTransport":
        if self._thread is not None:
            raise RuntimeError("transport already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        """Serve on the caller's thread until interrupted (CLI mode)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "HTTPServingTransport":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


class HTTPServingClient:
    """Tiny urllib client for :class:`HTTPServingTransport` (demo/tests).

    The socket ``timeout_s`` defaults comfortably *above* the server's
    default 60 s predict wait, so a slow micro-batch surfaces as the
    server's own 504 rather than a client-side socket drop mid-compute.
    """

    def __init__(self, url: str, timeout_s: float = 90.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _post(self, op: str, payload: dict) -> dict:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{self.url}/{op}", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as err:
            body = err.read()
            try:
                message = json.loads(body).get("error", body.decode())
            except (ValueError, AttributeError, UnicodeDecodeError):
                # Non-JSON / non-dict / non-UTF-8 error body: fall back to
                # a lossy decode.  Anything else propagates — this is a
                # diagnostic path, not a place to hide real failures.
                message = body.decode(errors="replace")
            raise RuntimeError(f"{op} failed ({err.code}): {message}") from err
        except urllib.error.URLError as err:
            # Nothing answered (refused, reset, DNS, socket timeout):
            # typed so callers — the cluster router above all — can tell
            # "server gone" from "server served an error".
            raise TransportConnectionError(
                f"{op} failed: no response from {self.url} within "
                f"{self.timeout_s}s ({err.reason})") from err

    def predict(self, graph, spec, timeout_s: float | None = None) -> np.ndarray:
        payload = {"graph": graph_to_payload(graph), "spec": spec_to_payload(spec)}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return np.asarray(self._post("predict", payload)["logits"])

    def submit(self, graph, spec) -> int:
        return self._post("submit", {"graph": graph_to_payload(graph),
                                     "spec": spec_to_payload(spec)})["seq"]

    def result(self, seq: int, timeout_s: float = 0.0) -> dict:
        return self._post("result", {"seq": seq, "timeout_s": timeout_s})

    def stats(self) -> dict:
        return self._post("stats", {})
