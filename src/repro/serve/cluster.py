"""Multi-process sharded serving: shard processes + a spec-affinity router.

PR 5's worker threads overlap micro-batches only while the forward is off
the GIL (BLAS kernels, device waits); on pure-CPU numpy work a single
process is a hard ceiling.  This module scales *past* the process:

* a **shard** is one :class:`~repro.serve.server.InferenceServer` behind
  one :class:`~repro.serve.transport.HTTPServingTransport`, running in its
  own OS process with its own :class:`~repro.serve.registry.ModelRegistry`
  and caches.  :class:`ShardProcess` launches it (``multiprocessing``
  spawn by default) with a **ready handshake**: the child binds an
  ephemeral port, sends ``("ready", port)`` up a pipe, and the parent
  only returns from :meth:`ShardProcess.start` once the shard is
  serving (or raises :class:`ClusterError` on a startup failure /
  timeout);
* :class:`ClusterRouter` is the front end: **deterministic spec-affinity
  dispatch** — a stable content hash of the spec's wire payload picks the
  shard, so every request for one strategy spec lands on the same shard
  and each shard's model registry only ever materializes *its* slice of
  the spec space;
* per-shard **health probes** (the ``/stats`` endpoint), **retry with
  exponential backoff** on connection failure, and **failover**: a shard
  that stays unreachable after the retry budget is marked dead and the
  request re-dispatches to the next live shard in the deterministic
  affinity walk.  :meth:`ClusterRouter.probe` resurrects shards that
  answer again; :meth:`ClusterRouter.start_probes` runs it on a
  background interval timer;
* :meth:`ClusterRouter.stats` aggregates the cluster view: router
  counters (requests, retries, failovers, per-shard dispatch) plus every
  live shard's full stats tree.

Parity: a shard executes the exact ``service.predict(graphs, spec,
batch_size=len(graphs))`` call the in-process stack runs, so a
single-request micro-batch served over the cluster is **bit-identical**
to ``InferenceService.predict([graph], spec, batch_size=1)`` on an
identically-seeded local service — pinned by ``tests/serve/
test_cluster.py``, the ``serve-cluster --self-test`` CLI, and in-bench by
``benchmarks/bench_cluster.py``.

Clock discipline: routing logic reads no wall clock.  The affinity walk,
failover and health bookkeeping are pure functions of router state, so
the whole dispatch path is testable with in-process fakes (the same way
the router's simulated ``tick()`` keeps deadline logic testable).  The
only real-time sites are the *deployment* boundaries, mirroring the
server's ticker thread: the retry backoff sleep and the probe interval
timer (both injectable; the defaults carry the REP002 pragma).

Thread safety: ``ClusterRouter._lock`` (rank 5 — acquired before any
other serve-stack lock, see :mod:`repro.serve.service`) guards only the
health flags and counters; shard calls — network or in-process doubles
that take the whole serve stack's locks — always run with no cluster
lock held.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import threading
import time
from dataclasses import dataclass

import numpy as np

from .transport import TransportConnectionError, spec_to_payload

__all__ = [
    "ClusterError",
    "ClusterRouter",
    "ShardProcess",
    "ShardServiceConfig",
    "launch_shards",
    "spec_affinity",
]


class ClusterError(RuntimeError):
    """Cluster-level failure: shard startup failed, or no live shard left."""


#: errors that mean "the shard did not answer" (retry / fail over), as
#: opposed to a served error response (a 4xx/5xx RuntimeError propagates —
#: the shard is alive and already executed or rejected the request).
_CONNECTION_ERRORS = (TransportConnectionError, ConnectionError, OSError)


def _wall_sleep(seconds: float) -> None:
    """Default real-time sleep for retry backoff / probe pacing.

    This is a deployment boundary exactly like the server's ticker
    thread: tests inject a recording fake instead, so routing logic
    stays wall-clock-free.
    """
    time.sleep(seconds)  # repro: disable=REP002


def spec_affinity(spec, num_shards: int) -> int:
    """Deterministic home shard for ``spec`` in a ``num_shards`` cluster.

    Hashes the spec's canonical JSON wire payload (sorted keys) with
    sha256 — stable across processes, hosts and interpreter hash
    randomization, unlike builtin ``hash``.  Every front end therefore
    computes the same affinity, and a spec's derived model is built on
    exactly one shard.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    payload = json.dumps(spec_to_payload(spec), sort_keys=True).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


# ----------------------------------------------------------------------
# the front-end router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Spec-affinity dispatch over shard clients, with health + failover.

    Parameters
    ----------
    clients:
        One client per shard, in shard-index order.  Anything speaking
        the serving client API works: :class:`~repro.serve.transport.
        HTTPServingClient` for real shard processes, or
        :class:`~repro.serve.transport.InProcessTransport` / hand-rolled
        fakes as deterministic in-process doubles in tests.
    max_retries:
        Connection-failure re-attempts *on the same shard* before it is
        declared dead and the request fails over.
    backoff_s:
        First retry delay; doubles per attempt (exponential backoff).
    sleep:
        The backoff sleep callable — injectable so tests record delays
        instead of waiting.  Defaults to the real-time sleep.

    Dispatch walk: the home shard is ``spec_affinity(spec, len(clients))``;
    if it is dead (or dies now), the request walks forward cyclically to
    the next live shard — deterministic, so two front ends with the same
    health view re-dispatch identically.
    """

    def __init__(self, clients, max_retries: int = 2, backoff_s: float = 0.05,
                 sleep=_wall_sleep):
        clients = list(clients)
        if not clients:
            raise ValueError("ClusterRouter needs at least one shard client")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.clients = clients
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self._sleep = sleep
        # Cluster lock (rank 5, above every serve-stack lock): health
        # flags + counters only; never held across a shard call.
        self._lock = threading.Lock()
        self._live = [True] * len(clients)
        self.requests = 0
        self.retries = 0
        self.failovers = 0
        self.deaths = 0
        self.resurrections = 0
        self.dispatched = [0] * len(clients)
        self._probe_stop: threading.Event | None = None
        self._probe_thread: threading.Thread | None = None

    # -- health bookkeeping ---------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.clients)

    def live_shards(self) -> list[int]:
        with self._lock:
            return [i for i, live in enumerate(self._live) if live]

    def _mark_dead(self, index: int) -> None:
        with self._lock:
            if self._live[index]:
                self._live[index] = False
                self.deaths += 1

    def _mark_live(self, index: int) -> None:
        with self._lock:
            if not self._live[index]:
                self._live[index] = True
                self.resurrections += 1

    # -- dispatch --------------------------------------------------------
    def shard_for(self, spec, exclude=()) -> int | None:
        """The shard that should serve ``spec`` right now, or ``None``.

        Deterministic affinity walk: the home shard when live, else the
        next live shard cyclically after it (skipping ``exclude`` — the
        shards this request already failed over from).
        """
        home = spec_affinity(spec, len(self.clients))
        with self._lock:
            live = list(self._live)
        for offset in range(len(self.clients)):
            index = (home + offset) % len(self.clients)
            if live[index] and index not in exclude:
                return index
        return None

    def _call_with_retry(self, index: int, op, *args, **kwargs):
        """Run one client call with exponential backoff on connect errors.

        Raises the last connection error once the retry budget is spent;
        the caller decides whether to fail over.
        """
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            try:
                return op(self.clients[index], *args, **kwargs)
            except _CONNECTION_ERRORS:
                if attempt == self.max_retries:
                    raise
                with self._lock:
                    self.retries += 1
                self._sleep(delay)
                delay *= 2

    def _dispatch(self, spec, op, *args, **kwargs):
        """Affinity dispatch + failover loop shared by predict/submit."""
        with self._lock:
            self.requests += 1
        failed: set[int] = set()
        last_error: BaseException | None = None
        while True:
            index = self.shard_for(spec, exclude=failed)
            if index is None:
                raise ClusterError(
                    f"no live shard left for dispatch "
                    f"(cluster of {len(self.clients)}, "
                    f"failed over from {sorted(failed)})") from last_error
            try:
                result = self._call_with_retry(index, op, *args, **kwargs)
            except _CONNECTION_ERRORS as err:
                last_error = err
                self._mark_dead(index)
                failed.add(index)
                with self._lock:
                    self.failovers += 1
                continue
            with self._lock:
                self.dispatched[index] += 1
            return index, result

    # -- request API -----------------------------------------------------
    def predict(self, graph, spec, timeout_s: float | None = None) -> np.ndarray:
        """Logits for one graph from ``spec``'s shard, shape ``(num_tasks,)``.

        Retries the home shard on connection failure, then fails over to
        the next live shard.  A shard-side *served* error (HTTP 4xx/5xx)
        propagates — the shard is alive, failover would just re-fail.
        """
        _, logits = self._dispatch(
            spec, lambda c: c.predict(graph, spec, timeout_s=timeout_s))
        return np.asarray(logits)

    def submit(self, graph, spec) -> tuple[int, int]:
        """Async submit to ``spec``'s shard; returns ``(shard, seq)``.

        The seq is scoped to the shard that accepted it — poll it back
        with :meth:`result` on the same shard index.
        """
        return self._dispatch(spec, lambda c: c.submit(graph, spec))

    def result(self, shard: int, seq: int, timeout_s: float = 0.0) -> dict:
        """Poll a submitted ticket on its shard (no failover: the ticket
        lives in that shard's protocol window and nowhere else)."""
        return self.clients[shard].result(seq, timeout_s=timeout_s)

    # -- health probes ---------------------------------------------------
    def probe(self) -> dict[int, bool]:
        """Probe every shard's ``/stats`` endpoint; update health flags.

        A dead shard that answers is resurrected (its affinity traffic
        returns to it); a live shard that stops answering is marked dead.
        Returns ``{shard index: alive}``.
        """
        health = {}
        for index in range(len(self.clients)):
            try:
                self.clients[index].stats()
            except _CONNECTION_ERRORS + (RuntimeError,):
                self._mark_dead(index)
                health[index] = False
            else:
                self._mark_live(index)
                health[index] = True
        return health

    def start_probes(self, interval_s: float = 1.0) -> "ClusterRouter":
        """Run :meth:`probe` on a background interval timer.

        The ``Event.wait`` doubles as the interval sleep and the stop
        signal, exactly like the server's ticker loop; probe *logic*
        stays directly callable (and tested) without the timer.
        """
        if self._probe_thread is not None:
            raise RuntimeError("probe timer already started")
        self._probe_stop = threading.Event()

        def loop():
            while not self._probe_stop.wait(interval_s):
                self.probe()

        self._probe_thread = threading.Thread(
            target=loop, name="repro-cluster-probe", daemon=True)
        self._probe_thread.start()
        return self

    def stop_probes(self) -> None:
        if self._probe_thread is not None:
            self._probe_stop.set()
            self._probe_thread.join()
            self._probe_thread = None
            self._probe_stop = None

    # -- aggregation -----------------------------------------------------
    def stats(self) -> dict:
        """Cluster counters plus every reachable shard's full stats tree."""
        with self._lock:
            cluster = {
                "shards": len(self.clients),
                "live": [i for i, live in enumerate(self._live) if live],
                "requests": self.requests,
                "retries": self.retries,
                "failovers": self.failovers,
                "deaths": self.deaths,
                "resurrections": self.resurrections,
                "dispatched": {str(i): n for i, n in enumerate(self.dispatched)},
            }
        shards = {}
        for index in range(len(self.clients)):
            try:
                shards[str(index)] = self.clients[index].stats()
            except _CONNECTION_ERRORS + (RuntimeError,):
                shards[str(index)] = {"unreachable": True}
        return {"cluster": cluster, "shards": shards}

    def __repr__(self) -> str:
        return (f"ClusterRouter(shards={len(self.clients)}, "
                f"live={self.live_shards()}, requests={self.requests}, "
                f"failovers={self.failovers})")


# ----------------------------------------------------------------------
# shard processes
# ----------------------------------------------------------------------
@dataclass
class ShardServiceConfig:
    """Picklable recipe for the :class:`InferenceService` a shard builds.

    Spawned shard processes cannot receive a live service (weights,
    locks, caches don't pickle) — they receive *how to build one*.  Two
    shards (or a shard and a local reference) built from equal configs
    are identically seeded, which is what makes cross-process logits
    bit-comparable to the serial path.
    """

    dataset: str = "bbbp"
    size: int = 60
    num_layers: int = 2
    emb_dim: int = 12
    batch_size: int = 8
    seed: int = 0
    logit_cache_size: int = 256

    def __call__(self):
        from ..gnn import GNNEncoder
        from ..graph import load_dataset
        from .service import InferenceService

        data = load_dataset(self.dataset, size=self.size)

        def encoder_factory():
            return GNNEncoder("gin", num_layers=self.num_layers,
                              emb_dim=self.emb_dim, dropout=0.0,
                              seed=self.seed)

        return InferenceService(encoder_factory, data.num_tasks,
                                batch_size=self.batch_size, seed=self.seed,
                                logit_cache_size=self.logit_cache_size)


def _shard_main(service_factory, server_kwargs: dict, host: str,
                offload_stall_s: float, conn) -> None:
    """Child-process entry: build the stack, handshake, serve until told.

    Sends ``("ready", port)`` once the HTTP transport is bound, or
    ``("error", repr)`` if construction fails, then blocks on the pipe —
    any parent message (or parent death closing the pipe) is the stop
    signal.
    """
    from .server import InferenceServer
    from .transport import HTTPServingTransport

    try:
        service = service_factory()
        pre_execute = None
        if offload_stall_s:
            def pre_execute():
                _wall_sleep(offload_stall_s)
        server = InferenceServer(service, pre_execute=pre_execute,
                                 **server_kwargs).start()
        transport = HTTPServingTransport(server, host=host, port=0).start()
    except BaseException as err:  # report startup failure, then die
        conn.send(("error", repr(err)))
        raise
    conn.send(("ready", transport.port))
    try:
        conn.recv()  # blocks until the parent says stop (or disappears)
    except EOFError:
        pass
    transport.stop()
    server.stop()
    conn.close()


class ShardProcess:
    """One shard = server + HTTP transport in a child process.

    Parameters
    ----------
    service_factory:
        Picklable zero-argument callable building the shard's
        :class:`InferenceService` (e.g. a :class:`ShardServiceConfig`).
    shard_id:
        Index for naming / diagnostics.
    num_workers / max_batch_size / max_delay / tick_interval_s / queue_size:
        The shard server's parameters (see :class:`InferenceServer`).
    offload_stall_s:
        Optional per-micro-batch sleep in the shard's workers — the same
        device-wait emulation ``bench_concurrency.py`` uses, here so the
        cluster benchmark can measure process overlap on a 1-core box.
    ready_timeout_s:
        Bound on the ready handshake; exceeding it kills the child and
        raises :class:`ClusterError`.
    start_method:
        ``multiprocessing`` start method.  Default ``"spawn"``: a fresh
        interpreter per shard — slower to boot but immune to
        forked-lock hazards from a threaded parent (the test suite runs
        server threads in-process).
    """

    def __init__(self, service_factory, shard_id: int = 0,
                 host: str = "127.0.0.1", num_workers: int = 2,
                 max_batch_size: int = 32, max_delay: int = 4,
                 tick_interval_s: float = 0.002, queue_size: int = 64,
                 offload_stall_s: float = 0.0, ready_timeout_s: float = 120.0,
                 start_method: str = "spawn"):
        self.service_factory = service_factory
        self.shard_id = shard_id
        self.host = host
        self.server_kwargs = {
            "num_workers": num_workers, "max_batch_size": max_batch_size,
            "max_delay": max_delay, "tick_interval_s": tick_interval_s,
            "queue_size": queue_size,
        }
        self.offload_stall_s = offload_stall_s
        self.ready_timeout_s = ready_timeout_s
        self.start_method = start_method
        self.port: int | None = None
        self._process = None
        self._conn = None

    def start(self) -> "ShardProcess":
        """Spawn the shard and block on the ready handshake."""
        if self._process is not None:
            raise RuntimeError("shard already started")
        context = multiprocessing.get_context(self.start_method)
        parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_main,
            args=(self.service_factory, self.server_kwargs, self.host,
                  self.offload_stall_s, child_conn),
            name=f"repro-shard-{self.shard_id}", daemon=True)
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        if not parent_conn.poll(self.ready_timeout_s):
            self.kill()
            raise ClusterError(
                f"shard {self.shard_id} not ready within "
                f"{self.ready_timeout_s}s")
        tag, value = parent_conn.recv()
        if tag != "ready":
            self.kill()
            raise ClusterError(f"shard {self.shard_id} failed to start: {value}")
        self.port = value
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("shard not started")
        return f"http://{self.host}:{self.port}"

    def client(self, timeout_s: float = 90.0):
        """An :class:`HTTPServingClient` for this shard."""
        from .transport import HTTPServingClient

        return HTTPServingClient(self.url, timeout_s=timeout_s)

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def stop(self, timeout_s: float = 15.0) -> None:
        """Graceful shutdown: signal the pipe, join, escalate if stuck."""
        if self._process is None:
            return
        try:
            self._conn.send(("stop",))
        except (OSError, BrokenPipeError, ValueError):
            pass  # child already gone / pipe closed
        self._process.join(timeout_s)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout_s)
        self._conn.close()
        self._process = None

    def kill(self) -> None:
        """Hard-kill the shard (the failover tests' murder weapon)."""
        if self._process is None:
            return
        self._process.kill()
        self._process.join()
        self._conn.close()
        self._process = None

    def __enter__(self) -> "ShardProcess":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "alive" if self.alive else ("new" if self.port is None
                                            else "stopped")
        return f"ShardProcess(id={self.shard_id}, {state}, port={self.port})"


def launch_shards(service_factory, num_shards: int,
                  **shard_kwargs) -> list[ShardProcess]:
    """Launch ``num_shards`` shard processes; all ready or none.

    Any shard failing its handshake kills the ones already launched and
    re-raises — a half-started cluster is worse than no cluster.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    shards: list[ShardProcess] = []
    try:
        for index in range(num_shards):
            shards.append(ShardProcess(service_factory, shard_id=index,
                                       **shard_kwargs).start())
    except BaseException:
        for shard in shards:
            shard.kill()
        raise
    return shards
