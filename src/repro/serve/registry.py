"""Persistent derived-model registry for the serving layer.

A :class:`~repro.core.supernet.DerivedModel` is cheap to *run* (PR 1's
fast path made a derived forward cost one model, not |candidates| models)
but expensive to *build*: a fresh encoder from the factory, candidate
module construction, and a state-dict copy from the searched supernet.
A serving process that rebuilt the model per request would spend most of
its time there.  :class:`ModelRegistry` keeps fully constructed models
alive keyed by their spec, evicting least-recently-used entries.

Specs are frozen dataclasses, so the spec itself is the hash key;
:func:`spec_key` additionally provides a short stable digest for
checkpoint file names.

Thread safety
-------------
One coarse ``RLock`` guards the model map, pin set and counters, so the
registry may be shared by concurrent serving workers.  A cache-miss
``get`` *builds the model under the lock* — deliberately, since two
workers racing the same spec must not both build (and then serve two
different model objects for one spec).  The registry is a *leaf* lock in
the serve stack's documented lock order (see :mod:`repro.serve.service`):
model construction takes no serve-layer locks.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

__all__ = ["ModelRegistry", "spec_key"]


def spec_key(spec) -> str:
    """Short stable digest of a spec (for checkpoint naming / logging)."""
    return hashlib.sha256(spec.describe().encode()).hexdigest()[:16]


class ModelRegistry:
    """LRU cache of persistent :class:`DerivedModel` instances.

    Parameters
    ----------
    encoder_factory:
        Zero-argument callable returning a fresh (typically pre-trained)
        encoder — the same contract as :class:`~repro.core.api.S2PGNNFineTuner`.
    num_tasks:
        Downstream prediction width of every built model.
    capacity:
        Maximum number of models kept alive; least-recently-used models
        are evicted when a new spec arrives at capacity.
    seed:
        Seed for newly built models, matching ``DerivedModel(..., seed=...)``
        so a registry-built model is bit-identical to a hand-built one.
    dtype:
        Optional serving dtype (``"float32"``).  When set, every model
        entering the registry — built, externally added, or checkpoint
        loaded — has its frozen weights cast **once, in place, at
        registration** (:func:`repro.nn.policy.cast_module`), so forwards
        under the matching execution policy run cast-free.  A dtype-set
        registry therefore takes ownership of added models' weights;
        register a copy if the float64 original must survive.  Default
        None preserves weights bit-for-bit.
    """

    def __init__(self, encoder_factory, num_tasks: int, capacity: int = 8,
                 seed: int = 0, dtype: str | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.encoder_factory = encoder_factory
        self.num_tasks = num_tasks
        self.capacity = capacity
        self.seed = seed
        self.dtype = dtype
        self._models: "OrderedDict" = OrderedDict()
        # Externally registered models (e.g. a fine-tuned model the service
        # must keep serving verbatim) are pinned: exempt from LRU eviction,
        # since a rebuilt replacement would silently serve different weights.
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _build(self, spec, supernet=None):
        from ..core.supernet import DerivedModel

        model = DerivedModel(self.encoder_factory(), spec, self.num_tasks,
                             seed=self.seed)
        if supernet is not None:
            model.load_from_supernet(supernet)
        return model

    def get(self, spec, supernet=None):
        """The persistent model for ``spec`` (built on first use).

        With ``supernet`` given, a newly built model is warm-started from
        the searched shared weights (:meth:`DerivedModel.load_from_supernet`);
        a cached model is returned as-is — its weights may since have been
        fine-tuned further, which is exactly what a serving process wants
        to preserve.
        """
        with self._lock:
            model = self._models.get(spec)
            if model is not None:
                self._models.move_to_end(spec)
                self.hits += 1
                return model
            self.misses += 1
            model = self._build(spec, supernet=supernet)
            self.add(spec, model, pin=False)
            return model

    def add(self, spec, model, pin: bool = True) -> None:
        """Register a model under its spec.

        External registrations are *pinned* by default: they carry weights
        the registry cannot reproduce (a fine-tuned model), so LRU
        eviction never drops them — a later ``get`` must not silently
        rebuild and serve different weights.  Registry-built models
        (``pin=False``) remain evictable; pinned entries may carry the
        registry above ``capacity``, bounded by the caller's explicit
        ``add`` calls.
        """
        if self.dtype is not None:
            from ..nn.policy import cast_module

            cast_module(model, self.dtype)
        with self._lock:
            if spec not in self._models:
                while len(self._models) >= self.capacity:
                    victim = next(
                        (k for k in self._models if k not in self._pinned), None)
                    if victim is None:
                        break  # everything pinned: exceed capacity
                    del self._models[victim]
            self._models[spec] = model
            self._models.move_to_end(spec)
            if pin:
                self._pinned.add(spec)

    def unpin(self, spec) -> bool:
        """Make ``spec``'s model evictable again (inverse of a pinned
        :meth:`add`).  Returns whether the spec was pinned.  The model (if
        any) stays registered; it simply rejoins the LRU order."""
        with self._lock:
            was_pinned = spec in self._pinned
            self._pinned.discard(spec)
            return was_pinned

    def remove(self, spec) -> bool:
        """Drop ``spec``'s model *and* its pinned status.

        This is the external-invalidation path (a checkpoint superseded, a
        spec retired from serving): without it, ``_pinned`` only ever grew
        and a stale pinned spec lingered forever, silently exempting a
        dead entry from bookkeeping.  Returns whether a model was
        registered.  Callers serving memoized responses for the removed
        model should also
        :meth:`~repro.serve.service.InferenceService.invalidate_logits`
        (the service prunes dead models from its response cache on the
        next miss regardless).
        """
        with self._lock:
            self._pinned.discard(spec)
            return self._models.pop(spec, None) is not None

    # ------------------------------------------------------------------
    def load_checkpoint(self, spec, path: str):
        """Register a *pinned* model for ``spec`` with ``path``'s weights.

        ``path`` is an ``.npz`` state dict as written by
        :func:`repro.nn.serialization.save_state_dict` /
        :func:`save_checkpoint` — e.g. a fine-tuned model persisted by a
        training run and re-served later.  The load is dtype-preserving
        end to end: a float32-cast serving checkpoint reloads as float32
        (no silent re-upcast), and a dtype-set registry casts whatever
        loads to its serving dtype at the closing ``add``.  A fresh model object is built
        and registered (replacing any cached one) rather than mutating an
        already served model in place, so response caches keyed by the old
        object are naturally orphaned instead of silently serving stale
        pre-checkpoint logits; pinning keeps the checkpoint weights safe
        from LRU eviction.
        """
        from ..nn.serialization import load_state_dict

        model = self._build(spec)
        model.load_state_dict(load_state_dict(path))
        self.add(spec, model)
        return model

    # (load_checkpoint builds outside the lock on purpose: the checkpoint
    # read is slow I/O, and ``add`` re-synchronizes at the end.)

    def save_checkpoint(self, spec, path: str) -> str:
        """Persist the registered model for ``spec`` to ``path`` (npz)."""
        from ..nn.serialization import save_checkpoint

        with self._lock:
            if spec not in self._models:
                raise KeyError(f"no model registered for spec {spec.describe()!r}")
            model = self._models[spec]
        save_checkpoint(model.state_dict(),
                        {"spec": spec.describe(), "key": spec_key(spec)}, path)
        return path

    # ------------------------------------------------------------------
    def live_models(self):
        """The currently registered models (LRU order, oldest first)."""
        with self._lock:
            return list(self._models.values())

    def __contains__(self, spec) -> bool:
        with self._lock:
            return spec in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def stats(self) -> dict:
        # ``_pinned`` is a subset of the registered specs by construction:
        # every path that drops a spec (``remove``; eviction skips pinned
        # entries) also clears its pinned status, so the count is exact
        # without re-deriving the intersection.
        with self._lock:
            return {
                "models": len(self._models),
                "pinned": len(self._pinned),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "dtype": self.dtype or "float64",
            }

    def __repr__(self) -> str:
        return (f"ModelRegistry(models={len(self._models)}, "
                f"hits={self.hits}, misses={self.misses})")
