"""Concurrent serving front end: ticker thread + worker pool over the router.

:class:`~repro.serve.router.BatchingRouter` is deliberately passive — it
batches, but somebody must drive its deadline clock and execute its
micro-batches.  In tests that somebody is the test itself (the simulated
``tick()`` clock keeps deadline behaviour exactly reproducible, and that
**remains the test path**).  :class:`InferenceServer` is the deployment
counterpart:

* a **ticker thread** maps the router's simulated clock onto real
  monotonic time: every ``tick_interval_s`` seconds it advances the clock
  one tick, so a bucket's deadline of ``max_delay`` ticks becomes
  ``~max_delay * tick_interval_s`` seconds of real latency bound;
* a **worker pool** of ``num_workers`` threads executes flushed
  micro-batches from a bounded job queue (the router's ``executor`` hook
  feeds it).  Workers run the exact same
  ``service.predict(graphs, spec, batch_size=len(graphs))`` call the
  inline router runs, so routed logits stay bit-identical to the serial
  path — the concurrency changes *when* a micro-batch runs, never *what*
  it computes;
* :meth:`submit` returns a :class:`~repro.serve.router.RoutedRequest`
  ticket whose :meth:`~repro.serve.router.RoutedRequest.wait` blocks on a
  ``threading.Event``; :meth:`predict` is the synchronous convenience.

Where the parallelism comes from: eval forwards spend most of their time
in BLAS / numpy kernels that release the GIL, so on a multi-core host N
workers genuinely overlap distinct micro-batches (different specs run on
different models and don't even share a per-model lock).  In a deployment
whose forward is offloaded (an accelerator, a remote shard), the worker
thread blocks on the device instead and the pool hides that latency the
same way — ``pre_execute`` exists so benchmarks can emulate exactly that
interval on hosts without one.

Lock order (see :mod:`repro.serve.service` for the full table): server
internals sit *above* the router — the executor hook only enqueues, and
workers take no server lock while executing, so a full job queue can
never deadlock against completion bookkeeping.

Shutdown contract: :meth:`stop` (or leaving the context manager) stops
the ticker, force-flushes the router, drains the job queue, and joins the
workers — every ticket submitted before ``stop()`` resolves.  A
:meth:`submit` *racing* ``stop()`` either raises ``RuntimeError`` or is
resolved by stop's inline clean-up sweeps (best effort: quiesce your
submitters before stopping; a ticket's ``wait(timeout)`` is the backstop
either way).
"""

from __future__ import annotations

import queue
import threading
from collections import deque

import numpy as np

from .router import BatchingRouter

__all__ = ["InferenceServer"]


_SENTINEL = object()


class InferenceServer:
    """Threaded serving front end over one :class:`InferenceService`.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.InferenceService` to serve.  The
        service (and the whole stack under it) is thread-safe; the server
        owns a *private* router rather than the service's default one, so
        an embedded synchronous router and a server can coexist.
    num_workers:
        Worker threads executing micro-batches.
    max_batch_size / max_delay / max_pending / max_undrained / onehot:
        Router parameters (see :class:`~repro.serve.router.BatchingRouter`);
        ``max_delay`` is in ticks.
    tick_interval_s:
        Real-time seconds per simulated-clock tick.  The deadline latency
        bound is ``~max_delay * tick_interval_s``.  ``None`` disables the
        ticker thread — the caller drives :meth:`tick` manually, which
        keeps server tests deterministic (the simulated-clock test path).
    queue_size:
        Bound on the micro-batch job queue.  A full queue blocks the
        flushing thread (backpressure by waiting, never by dropping);
        workers only ever *take* from the queue, so this cannot deadlock.
    pre_execute:
        Optional zero-argument callable run by a worker immediately
        before each micro-batch — telemetry, rate limiting, or (in
        benchmarks) emulating a blocked-on-device interval.
    default_timeout_s:
        :meth:`predict`'s default wait bound.
    max_worker_errors:
        Capacity of the :attr:`worker_errors` ring.  Tickets already
        carry their own error, so the server keeps only the last K for
        diagnostics — under sustained micro-batch failure an unbounded
        list would grow (with full tracebacks pinned) for the life of
        the process.  :attr:`worker_error_total` counts every failure
        monotonically and is what ``stats()`` reports.
    """

    def __init__(self, service, num_workers: int = 2, max_batch_size: int = 32,
                 max_delay: int = 4, max_pending: int = 1024,
                 max_undrained: int = 4096, onehot: bool = False,
                 tick_interval_s: float | None = 0.002, queue_size: int = 64,
                 pre_execute=None, default_timeout_s: float = 60.0,
                 max_worker_errors: int = 64):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if tick_interval_s is not None and tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive (or None)")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if max_worker_errors < 1:
            raise ValueError("max_worker_errors must be >= 1")
        self.service = service
        self.num_workers = num_workers
        self.tick_interval_s = tick_interval_s
        self.pre_execute = pre_execute
        self.default_timeout_s = default_timeout_s
        self.router = BatchingRouter(
            service, max_batch_size=max_batch_size, max_delay=max_delay,
            max_pending=max_pending, max_undrained=max_undrained,
            onehot=onehot, executor=self._enqueue)
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._started = False
        self._stopped = False
        self._ticker: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self.executed_batches = 0
        # Ring of the last K failures (diagnostics) + monotonic total:
        # the waiting tickets own the errors that matter, the server
        # must not accumulate every exception of a failing deployment.
        self.worker_errors: "deque[BaseException]" = deque(
            maxlen=max_worker_errors)
        self.worker_error_total = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        """Spawn the worker pool (and the ticker, unless disabled)."""
        with self._lock:
            if self._started:
                raise RuntimeError("server already started")
            self._started = True
            for i in range(self.num_workers):
                worker = threading.Thread(target=self._worker_loop,
                                          name=f"repro-serve-worker-{i}",
                                          daemon=True)
                worker.start()
                self._workers.append(worker)
            if self.tick_interval_s is not None:
                self._ticker = threading.Thread(target=self._ticker_loop,
                                                name="repro-serve-ticker",
                                                daemon=True)
                self._ticker.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: every ticket submitted before this resolves.

        Order matters: stop the ticker (no new deadline flushes), flush
        every pending bucket into the job queue, then let the workers
        drain the queue FIFO before their shutdown sentinels."""
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        self._stop_event.set()
        if self._ticker is not None:
            self._ticker.join()
        self.router.flush()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        # Close the submit/stop race: a submit that passed its _stopped
        # check before we set the flag may have bucketed a request after
        # the flush above (or dispatched a job behind the sentinels).
        # From here flushes execute inline on this thread; drain whatever
        # the workers never got to, flush stragglers, and drain once more
        # for a dispatch that was in flight during the first sweep.
        self.router.executor = None
        self._drain_queue_inline()
        self.router.flush()
        self._drain_queue_inline()

    def _drain_queue_inline(self) -> None:
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            try:
                if job is not _SENTINEL:
                    job()
            finally:
                self._queue.task_done()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------
    def submit(self, graph, spec):
        """Enqueue one graph; returns its ticket (resolve via ``wait()``).

        The ticket completes when its bucket flushes (size or deadline)
        and a worker executes the micro-batch."""
        if self._stopped:
            raise RuntimeError("server is stopped")
        if not self._started:
            raise RuntimeError("server not started (call start() or use 'with')")
        ticket = self.router.submit(graph, spec)
        if self._stopped and not ticket.done:
            # Raced stop(): its final flush may have run before our insert.
            # Flush the bucket ourselves — stop() has (or will have) turned
            # the router inline and drains the queue, so this resolves.
            self.router.flush(ticket.spec)
        return ticket

    def request(self, graph, spec, timeout: float | None = None):
        """Submit and block until served; returns the *resolved* ticket.

        Unlike the router's ``predict_one`` this does *not* force a
        flush — the request batches with concurrent traffic and the
        deadline ticker bounds its latency, which is the whole point of
        dynamic batching under load.  (Without a ticker the bucket is
        flushed immediately, since nothing else would resolve it.)  The
        ticket carries the logits (``result()``) plus the micro-batch
        provenance (``seq``, ``batch_graphs``, ``batch_index``) the
        transports put on the wire."""
        ticket = self.submit(graph, spec)
        if self._ticker is None and not ticket.done:
            self.router.flush(spec)
        ticket.wait(self.default_timeout_s if timeout is None else timeout)
        return ticket

    def predict(self, graph, spec, timeout: float | None = None) -> np.ndarray:
        """Synchronous single-graph prediction, shape ``(num_tasks,)``
        (see :meth:`request` for the batching/deadline semantics)."""
        return self.request(graph, spec, timeout=timeout).result()

    def flush(self):
        """Force all pending micro-batches into the job queue."""
        return self.router.flush()

    def tick(self, ticks: int = 1):
        """Advance the simulated clock manually (ticker-less test mode)."""
        return self.router.tick(ticks)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enqueue(self, job) -> None:
        """Router executor hook.  Called with no router lock held."""
        self._queue.put(job)

    def _ticker_loop(self) -> None:
        # wait() doubles as the interval sleep and the stop signal; the
        # clock is therefore monotonic-real-time driven, jitter bounded
        # by the scheduler.
        while not self._stop_event.wait(self.tick_interval_s):
            self.router.tick()

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is _SENTINEL:
                    return
                try:
                    if self.pre_execute is not None:
                        self.pre_execute()
                    job()
                except BaseException as err:  # tickets already carry the error
                    with self._lock:
                        self.worker_errors.append(err)
                        self.worker_error_total += 1
                else:
                    with self._lock:
                        self.executed_batches += 1
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service stats plus the server's own router/queue/worker view."""
        stats = self.service.stats()
        stats["server_router"] = self.router.stats()
        with self._lock:
            stats["server"] = {
                "workers": self.num_workers,
                "running": self.running,
                "queue_depth": self._queue.qsize(),
                "executed_batches": self.executed_batches,
                # the true monotonic failure count, not the ring's size
                "worker_errors": self.worker_error_total,
                "recent_worker_errors": len(self.worker_errors),
                "tick_interval_s": self.tick_interval_s,
            }
        return stats

    def __repr__(self) -> str:
        state = "running" if self.running else ("stopped" if self._stopped
                                                else "new")
        return (f"InferenceServer({state}, workers={self.num_workers}, "
                f"ticker={'real' if self.tick_interval_s is not None else 'manual'})")
