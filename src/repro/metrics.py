"""Evaluation metrics: ROC-AUC (classification) and RMSE (regression).

Matches the paper's protocol (Sec. IV-A3): for datasets with multiple
prediction tasks, the reported number is the average over tasks; tasks whose
evaluation labels are single-class (which happens under scaffold split) are
skipped, as in the MoleculeNet reference evaluators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UndefinedMetricError", "roc_auc_score", "rmse_score",
           "multitask_score", "fallback_score", "multitask_score_or_fallback",
           "higher_is_better"]

KNOWN_METRICS = ("roc_auc", "rmse")


class UndefinedMetricError(ValueError):
    """The metric is mathematically undefined on this data (e.g. ROC-AUC
    over single-class labels, or no task with enough valid labels).

    Subclasses :class:`ValueError` for backward compatibility, but is the
    *only* error :func:`multitask_score_or_fallback` converts into a
    fallback score — caller errors (unknown metric name, shape mismatch)
    stay fatal instead of being silently scored.
    """


def _tie_average_ranks(y_score: np.ndarray) -> np.ndarray:
    """1-based ranks of ``y_score``, averaging ranks over tied values.

    Vectorized: ``np.unique`` sorts the distinct values and returns each
    element's group index, so a group occupying sorted positions
    ``cum+1 .. cum+count`` has average rank ``cum + (count + 1) / 2`` —
    all quantities are exact small integers (or half-integers) in float64,
    so this is bit-identical to the sequential tie-scan it replaced (a
    property test pins that equivalence).  One divergence to paper over:
    ``np.unique`` collapses NaNs into a single tie group, while the scan's
    ``==`` comparison (NaN != NaN) left each NaN its own positional rank
    at the end of the sort — restored below so garbage scores from a
    diverged model still produce the exact legacy number.
    """
    _, inverse, counts = np.unique(y_score, return_inverse=True,
                                   return_counts=True)
    cum = np.concatenate(([0], np.cumsum(counts[:-1])))
    ranks = (cum + (counts + 1) / 2.0)[inverse]
    nan_mask = np.isnan(y_score)
    if nan_mask.any():
        # Stable sort puts NaNs last in submission order: ranks n+1 .. N.
        ranks[nan_mask] = (~nan_mask).sum() + 1 + np.arange(nan_mask.sum())
    return ranks


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (Mann-Whitney U).

    Ties in scores receive average ranks, matching sklearn's behaviour.
    """
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    pos = y_true == 1
    neg = y_true == 0
    n_pos, n_neg = int(pos.sum()), int(neg.sum())
    if n_pos == 0 or n_neg == 0:
        raise UndefinedMetricError("ROC-AUC undefined for single-class labels")
    ranks = _tie_average_ranks(y_score)
    rank_sum = ranks[pos].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def rmse_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def multitask_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    metric: str,
) -> float:
    """Average a metric over tasks, skipping missing labels and
    degenerate (single-class) classification tasks.

    Parameters
    ----------
    y_true, y_pred:
        ``(num_graphs, num_tasks)`` arrays; nan in ``y_true`` marks missing.
    metric:
        ``"roc_auc"`` or ``"rmse"``.
    """
    y_true = np.atleast_2d(np.asarray(y_true, dtype=np.float64))
    y_pred = np.atleast_2d(np.asarray(y_pred, dtype=np.float64))
    if metric not in KNOWN_METRICS:
        raise ValueError(f"unknown metric {metric!r}")
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    scores = []
    for t in range(y_true.shape[1]):
        present = ~np.isnan(y_true[:, t])
        if present.sum() < 2:
            continue
        yt, yp = y_true[present, t], y_pred[present, t]
        if metric == "roc_auc":
            if len(np.unique(yt)) < 2:
                continue
            scores.append(roc_auc_score(yt, yp))
        elif metric == "rmse":
            scores.append(rmse_score(yt, yp))
        else:
            raise ValueError(f"unknown metric {metric!r}")
    if not scores:
        raise UndefinedMetricError("no valid tasks to evaluate")
    return float(np.mean(scores))


def fallback_score(y_true: np.ndarray, y_pred: np.ndarray, metric: str) -> float:
    """Surrogate score when the primary metric is undefined.

    Tiny scaffold splits can be single-class, leaving ROC-AUC undefined; the
    mean label likelihood (in [0, 1], higher better) is a monotone surrogate
    that keeps early stopping and weight-sharing spec ranking well-defined.
    RMSE is always defined, so regression never reaches this path.
    """
    if metric not in KNOWN_METRICS:
        # The classification-likelihood surrogate below is a nonsense
        # number for an unrecognized metric; fail like the primary scorer.
        raise ValueError(f"unknown metric {metric!r}")
    y_true = np.atleast_2d(np.asarray(y_true, dtype=np.float64))
    y_pred = np.atleast_2d(np.asarray(y_pred, dtype=np.float64))
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if metric == "rmse":
        return rmse_score(y_true[~np.isnan(y_true)], y_pred[~np.isnan(y_true)])
    present = ~np.isnan(y_true)
    prob = 1.0 / (1.0 + np.exp(-np.clip(y_pred, -60, 60)))
    likelihood = np.where(y_true == 1.0, prob, 1.0 - prob)
    return float(likelihood[present].mean())


def multitask_score_or_fallback(y_true: np.ndarray, y_pred: np.ndarray, metric: str) -> float:
    """Primary metric if defined, otherwise :func:`fallback_score`.

    Only :class:`UndefinedMetricError` — the metric being mathematically
    undefined on this data — triggers the fallback.  Caller errors
    (unknown metric name, ``y_true``/``y_pred`` shape mismatch) propagate:
    silently scoring them would hand spec ranking a bogus number.
    """
    try:
        return multitask_score(y_true, y_pred, metric)
    except UndefinedMetricError:
        return fallback_score(y_true, y_pred, metric)


def higher_is_better(metric: str) -> bool:
    """Direction of improvement for a metric name."""
    if metric == "roc_auc":
        return True
    if metric == "rmse":
        return False
    raise ValueError(f"unknown metric {metric!r}")
