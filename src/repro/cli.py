"""Command-line interface: regenerate any paper table from the shell.

Usage::

    python -m repro.cli table6 --tier smoke
    python -m repro.cli table7
    python -m repro.cli table9 --datasets bbbp bace
    python -m repro.cli space           # Remark 3 space-size check

Results are printed in the paper's row layout (see
:mod:`repro.experiments.tables`).
"""

from __future__ import annotations

import argparse
import sys

from .experiments import configs, runner, tables

__all__ = ["main", "build_parser"]

_TABLES = {
    "table6": (
        lambda scale, datasets: runner.run_table6(
            configs.TABLE6_PRETRAIN_METHODS, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table6(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table7": (
        lambda scale, datasets: runner.run_table7(
            configs.TABLE7_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table7(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table8": (
        lambda scale, datasets: runner.run_table8(
            configs.TABLE8_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table8(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table9": (
        lambda scale, datasets: runner.run_table9(
            datasets or configs.TABLE6_DATASETS, scale=scale),
        lambda results, datasets: tables.format_table9(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table10": (
        lambda scale, datasets: runner.run_table10(
            configs.TABLE10_BACKBONES, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table10(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table11": (
        lambda scale, datasets: runner.run_table11(
            configs.TABLE11_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table11(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate S2PGNN paper tables (VI-XI) at CPU scale.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TABLES) + ["space"],
        help="which paper table to regenerate ('space' prints Remark 3 numbers)",
    )
    parser.add_argument(
        "--tier", choices=["smoke", "bench"], default="bench",
        help="experiment scale: 'smoke' is a fast plumbing run",
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None,
        help="restrict to a subset of datasets (default: the table's full set)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.target == "space":
        from .core import DEFAULT_SPACE

        for k in (3, 5):
            print(f"K={k}: |space| = {DEFAULT_SPACE.size(k):,}")
        print("paper Remark 3: 10,206 for the 5-layer GIN backbone")
        return 0

    scale = configs.SMOKE_SCALE if args.tier == "smoke" else configs.BENCH_SCALE
    run, render = _TABLES[args.target]
    results = run(scale, args.datasets)
    print(render(results, args.datasets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
