"""Command-line interface: paper tables plus the batch-serving demo.

Usage::

    python -m repro.cli table6 --tier smoke
    python -m repro.cli table7
    python -m repro.cli table9 --datasets bbbp bace
    python -m repro.cli space           # Remark 3 space-size check
    python -m repro.cli score --specs 8 # search, then fan-out spec scoring
    python -m repro.cli serve           # + repeated-request throughput demo

``score`` runs a short strategy search and then scores candidate specs
through :class:`repro.serve.InferenceService` — every spec is evaluated
against one shared, pre-collated batch cache via the supernet's one-hot
fast path.  ``serve`` additionally drives repeated prediction requests
against the persistent derived model and reports requests/sec.  Table
results are printed in the paper's row layout (see
:mod:`repro.experiments.tables`).
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import configs, runner, tables

__all__ = ["main", "build_parser"]

_TABLES = {
    "table6": (
        lambda scale, datasets: runner.run_table6(
            configs.TABLE6_PRETRAIN_METHODS, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table6(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table7": (
        lambda scale, datasets: runner.run_table7(
            configs.TABLE7_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table7(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table8": (
        lambda scale, datasets: runner.run_table8(
            configs.TABLE8_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table8(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table9": (
        lambda scale, datasets: runner.run_table9(
            datasets or configs.TABLE6_DATASETS, scale=scale),
        lambda results, datasets: tables.format_table9(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table10": (
        lambda scale, datasets: runner.run_table10(
            configs.TABLE10_BACKBONES, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table10(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table11": (
        lambda scale, datasets: runner.run_table11(
            configs.TABLE11_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table11(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate S2PGNN paper tables (VI-XI) at CPU scale.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TABLES) + ["space", "score", "serve"],
        help="paper table to regenerate, 'space' (Remark 3 numbers), "
             "'score' (many-spec serving fan-out) or 'serve' "
             "(score + repeated-request throughput)",
    )
    parser.add_argument(
        "--tier", choices=["smoke", "bench"], default="bench",
        help="experiment scale: 'smoke' is a fast plumbing run",
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None,
        help="restrict to a subset of datasets (default: the table's full set)",
    )
    serving = parser.add_argument_group("score/serve options")
    serving.add_argument(
        "--dataset", default="bbbp",
        help="downstream dataset for score/serve (default: bbbp)")
    serving.add_argument(
        "--size", type=int, default=120,
        help="dataset subsample size for score/serve")
    serving.add_argument(
        "--specs", type=int, default=6,
        help="number of random candidate specs to score beyond the derived one")
    serving.add_argument(
        "--batch-size", type=int, default=64,
        help="serving batch size")
    serving.add_argument(
        "--search-epochs", type=int, default=2,
        help="bi-level search epochs before serving")
    serving.add_argument(
        "--method", default="none",
        help="pre-training method from the zoo ('none' = fresh encoder; "
             "e.g. contextpred, graphcl)")
    serving.add_argument(
        "--layers", type=int, default=3, help="encoder depth for score/serve")
    serving.add_argument(
        "--emb-dim", type=int, default=32,
        help="encoder embedding width for score/serve")
    serving.add_argument("--seed", type=int, default=0)
    return parser


def _run_serving(args, demo_requests: bool) -> int:
    """``score`` / ``serve``: search briefly, then serve spec scores.

    One :class:`~repro.serve.BatchCacheRegistry` backs the whole run —
    the searcher populates it, and the service then scores every
    candidate spec (and answers prediction requests) without ever
    re-collating a split.
    """
    import numpy as np

    from .core.search import S2PGNNSearcher, SearchConfig
    from .gnn import GNNEncoder
    from .graph import load_dataset
    from .serve import BatchCacheRegistry, InferenceService

    def make_encoder():
        if args.method == "none":
            return GNNEncoder("gin", num_layers=args.layers, emb_dim=args.emb_dim,
                              dropout=0.0, seed=args.seed)
        from .pretrain import get_pretrained

        return get_pretrained(args.method, backbone="gin", num_layers=args.layers,
                              emb_dim=args.emb_dim, seed=args.seed)

    dataset = load_dataset(args.dataset, size=args.size)
    _, valid_graphs, test_graphs = dataset.split()
    cache = BatchCacheRegistry()
    print(f"dataset: {dataset.info.name} ({len(dataset)} graphs, "
          f"metric={dataset.info.metric})")

    searcher = S2PGNNSearcher(
        make_encoder(), dataset,
        config=SearchConfig(epochs=args.search_epochs,
                            eval_batch_size=args.batch_size, seed=args.seed),
        batch_cache=cache,
    )
    result = searcher.search()
    print(f"search: {args.search_epochs} epoch(s) in {result.seconds:.2f}s, "
          f"derived {result.spec.describe()}")

    service = InferenceService(
        make_encoder, dataset.num_tasks, supernet=result.supernet,
        batch_cache=cache, batch_size=args.batch_size, seed=args.seed,
    )
    rng = np.random.default_rng((args.seed, 77))
    specs = [result.spec] + [
        searcher.space.random_spec(args.layers, rng) for _ in range(args.specs)
    ]
    start = time.perf_counter()
    scores = service.score_specs(specs, valid_graphs, metric=dataset.info.metric,
                                 batch_size=args.batch_size)
    elapsed = time.perf_counter() - start
    print(f"\nscored {len(scores)} specs on the validation split "
          f"in {elapsed:.3f}s ({len(scores) / elapsed:.1f} specs/s):")
    for entry in sorted(scores, key=lambda e: e.score, reverse=True):
        marker = " <- derived" if entry.spec == result.spec else ""
        print(f"  {entry.score:8.4f}  {entry.spec.describe()}{marker}")

    if demo_requests:
        best = max(scores, key=lambda e: e.score).spec
        service.warm(test_graphs)
        requests = 20
        start = time.perf_counter()
        for _ in range(requests):
            service.predict(test_graphs, best)
        elapsed = time.perf_counter() - start
        print(f"\nserved {requests} prediction requests over "
              f"{len(test_graphs)} graphs in {elapsed:.3f}s "
              f"({requests / elapsed:.1f} requests/s)")

    stats = service.stats()
    print(f"\ncache stats: {stats['batches']['hits']} batch-cache hits, "
          f"{stats['batches']['misses']} misses, "
          f"{stats['batches']['collations']} collations total")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.target == "space":
        from .core import DEFAULT_SPACE

        for k in (3, 5):
            print(f"K={k}: |space| = {DEFAULT_SPACE.size(k):,}")
        print("paper Remark 3: 10,206 for the 5-layer GIN backbone")
        return 0

    if args.target in ("score", "serve"):
        return _run_serving(args, demo_requests=args.target == "serve")

    scale = configs.SMOKE_SCALE if args.tier == "smoke" else configs.BENCH_SCALE
    run, render = _TABLES[args.target]
    results = run(scale, args.datasets)
    print(render(results, args.datasets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
