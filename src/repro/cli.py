"""Command-line interface: paper tables plus the batch-serving demo.

Usage::

    python -m repro.cli table6 --tier smoke
    python -m repro.cli table7
    python -m repro.cli table9 --datasets bbbp bace
    python -m repro.cli space           # Remark 3 space-size check
    python -m repro.cli score --specs 8 # search, then fan-out spec scoring
    python -m repro.cli serve           # + repeated-request throughput demo
    python -m repro.cli route           # dynamic-batching router demo
    python -m repro.cli serve-forever   # concurrent HTTP serving runtime
    python -m repro.cli serve-cluster --shards 2 --self-test 24

``score`` runs a short strategy search and then scores candidate specs
through :class:`repro.serve.InferenceService` — every spec is evaluated
against one shared, pre-collated batch cache via the supernet's one-hot
fast path.  ``serve`` additionally drives repeated prediction requests
against the persistent derived model and reports requests/sec.  ``route``
feeds a stream of *single-graph* requests through the
:class:`repro.serve.BatchingRouter` (server-side micro-batches, flush on
size or simulated-clock deadline) and compares its throughput against the
per-request batch-of-one path.  ``serve-forever`` stands up the full
concurrent runtime — an :class:`repro.serve.InferenceServer` (real-clock
ticker + worker pool) behind the stdlib HTTP/JSON transport — and serves
until interrupted (or for ``--duration`` seconds; ``--self-test N`` runs
N loopback requests through the HTTP client and exits, as a deployment
smoke test).  ``serve-cluster`` scales past the process: it launches
``--shards`` shard processes (each its own server + HTTP transport +
model registry) behind a :class:`repro.serve.ClusterRouter` doing
deterministic spec-affinity dispatch with health probes and failover;
its ``--self-test N`` streams N requests, checks every logit vector
bit-identical against a local identically-seeded reference service,
kills a shard mid-stream (when ``--shards`` >= 2) to exercise failover,
and prints the aggregated cluster stats.  Table results are printed in
the paper's row layout (see :mod:`repro.experiments.tables`).
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import configs, runner, tables

__all__ = ["main", "build_parser"]

_TABLES = {
    "table6": (
        lambda scale, datasets: runner.run_table6(
            configs.TABLE6_PRETRAIN_METHODS, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table6(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table7": (
        lambda scale, datasets: runner.run_table7(
            configs.TABLE7_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table7(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table8": (
        lambda scale, datasets: runner.run_table8(
            configs.TABLE8_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table8(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
    "table9": (
        lambda scale, datasets: runner.run_table9(
            datasets or configs.TABLE6_DATASETS, scale=scale),
        lambda results, datasets: tables.format_table9(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table10": (
        lambda scale, datasets: runner.run_table10(
            configs.TABLE10_BACKBONES, datasets or configs.TABLE6_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table10(
            results, datasets or configs.TABLE6_DATASETS),
    ),
    "table11": (
        lambda scale, datasets: runner.run_table11(
            configs.TABLE11_STRATEGIES, datasets or configs.CLASSIFICATION_DATASETS,
            scale=scale),
        lambda results, datasets: tables.format_table11(
            results, datasets or configs.CLASSIFICATION_DATASETS),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate S2PGNN paper tables (VI-XI) at CPU scale.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TABLES) + ["space", "score", "serve", "route",
                                   "serve-forever", "serve-cluster", "lint",
                                   "backend-info"],
        help="paper table to regenerate, 'space' (Remark 3 numbers), "
             "'score' (many-spec serving fan-out), 'serve' "
             "(score + repeated-request throughput), 'route' "
             "(dynamic-batching single-request router demo), "
             "'serve-forever' (concurrent HTTP serving runtime), "
             "'serve-cluster' (multi-process sharded serving cluster), "
             "'lint' (static invariant analysis over src/repro) or "
             "'backend-info' (kernel backends, fallback chains and the "
             "compiled-backend build status)",
    )
    parser.add_argument(
        "--tier", choices=["smoke", "bench"], default="bench",
        help="experiment scale: 'smoke' is a fast plumbing run",
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None,
        help="restrict to a subset of datasets (default: the table's full set)",
    )
    serving = parser.add_argument_group("score/serve options")
    serving.add_argument(
        "--dataset", default="bbbp",
        help="downstream dataset for score/serve (default: bbbp)")
    serving.add_argument(
        "--size", type=int, default=120,
        help="dataset subsample size for score/serve")
    serving.add_argument(
        "--specs", type=int, default=6,
        help="number of random candidate specs to score beyond the derived one")
    serving.add_argument(
        "--batch-size", type=int, default=64,
        help="serving batch size")
    serving.add_argument(
        "--search-epochs", type=int, default=2,
        help="bi-level search epochs before serving")
    serving.add_argument(
        "--method", default="none",
        help="pre-training method from the zoo ('none' = fresh encoder; "
             "e.g. contextpred, graphcl)")
    serving.add_argument(
        "--layers", type=int, default=3, help="encoder depth for score/serve")
    serving.add_argument(
        "--emb-dim", type=int, default=32,
        help="encoder embedding width for score/serve")
    serving.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="serving execution dtype: float32 runs the inference memory "
             "plane (weights cast once at registration, workspace-pooled "
             "forwards); float64 is the bit-identical default")
    serving.add_argument("--seed", type=int, default=0)
    routing = parser.add_argument_group("route options")
    routing.add_argument(
        "--requests", type=int, default=64,
        help="number of single-graph requests to route")
    routing.add_argument(
        "--max-batch-size", type=int, default=16,
        help="router micro-batch size (flush-on-size threshold)")
    routing.add_argument(
        "--max-delay", type=int, default=4,
        help="router deadline in simulated-clock ticks")
    server = parser.add_argument_group("serve-forever options")
    server.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind address")
    server.add_argument(
        "--port", type=int, default=8000,
        help="HTTP port (0 picks an ephemeral port)")
    server.add_argument(
        "--workers", type=int, default=2,
        help="micro-batch worker threads")
    server.add_argument(
        "--tick-interval", type=float, default=0.002,
        help="seconds per router clock tick (deadline = max-delay ticks)")
    server.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds, then exit (default: forever)")
    server.add_argument(
        "--self-test", type=int, default=0, metavar="N",
        help="send N loopback requests through the HTTP client, print "
             "stats and exit (deployment smoke test)")
    cluster = parser.add_argument_group("serve-cluster options")
    cluster.add_argument(
        "--shards", type=int, default=2,
        help="number of shard processes (each: server + HTTP transport + "
             "its own model registry)")
    cluster.add_argument(
        "--probe-interval", type=float, default=0.5,
        help="seconds between background health probes of each shard")
    lint = parser.add_argument_group("lint options")
    lint.add_argument(
        "--path", default=None,
        help="directory to lint (default: the installed repro package)")
    lint.add_argument(
        "--rules", nargs="*", default=None, metavar="REPxxx",
        help="run only these rule ids (default: all registered rules)")
    lint.add_argument(
        "--baseline", default=None,
        help="JSON baseline of accepted findings (default: none — the "
             "shipped gate requires zero findings)")
    lint.add_argument(
        "--locks", action="store_true",
        help="print the machine-readable lock-hierarchy table and exit")
    return parser


def _run_lint(args) -> int:
    """``lint``: run the devtools invariant rules; exit 1 on findings."""
    import os

    from .devtools import render_lock_table, run_lint

    if args.locks:
        print(render_lock_table())
        return 0
    root = args.path or os.path.dirname(os.path.abspath(__file__))
    return run_lint(root, rule_ids=args.rules, baseline_path=args.baseline)


def _run_backend_info(args) -> int:
    """``backend-info``: declared kernel backends with fallback chains,
    the per-op direct-implementation table, and the compiled-backend
    JIT build status (compiler, cache, fallback reporting)."""
    from .nn.compiled import compiled_status
    from .nn.ops import OP_REGISTRY

    print("declared backends (fallback chains):")
    for name in OP_REGISTRY.declared_backends():
        chain = [name]
        while True:
            fallback = OP_REGISTRY.backend_info(chain[-1])["fallback"]
            if fallback is None:
                break
            chain.append(fallback)
        description = OP_REGISTRY.backend_info(name)["description"]
        suffix = f"  -- {description}" if description else ""
        print(f"  {' -> '.join(chain)}{suffix}")

    print("\nper-op direct implementations:")
    for op_name in OP_REGISTRY.ops():
        entry = OP_REGISTRY.get(op_name)
        print(f"  {op_name:<18} {', '.join(sorted(entry.impls))}")

    status = compiled_status()
    print("\ncompiled backend status:")
    for key in sorted(status):
        print(f"  {key}: {status[key]}")
    return 0


def _serving_context(args):
    """Shared setup for ``score``/``serve``/``route``: dataset + short
    search + an :class:`~repro.serve.InferenceService` over one
    run-wide :class:`~repro.serve.BatchCacheRegistry`."""
    from .core.search import S2PGNNSearcher, SearchConfig
    from .gnn import GNNEncoder
    from .graph import load_dataset
    from .serve import BatchCacheRegistry, InferenceService

    def make_encoder():
        if args.method == "none":
            return GNNEncoder("gin", num_layers=args.layers, emb_dim=args.emb_dim,
                              dropout=0.0, seed=args.seed)
        from .pretrain import get_pretrained

        return get_pretrained(args.method, backbone="gin", num_layers=args.layers,
                              emb_dim=args.emb_dim, seed=args.seed)

    dataset = load_dataset(args.dataset, size=args.size)
    cache = BatchCacheRegistry()
    print(f"dataset: {dataset.info.name} ({len(dataset)} graphs, "
          f"metric={dataset.info.metric})")

    searcher = S2PGNNSearcher(
        make_encoder(), dataset,
        config=SearchConfig(epochs=args.search_epochs,
                            eval_batch_size=args.batch_size, seed=args.seed),
        batch_cache=cache,
    )
    result = searcher.search()
    print(f"search: {args.search_epochs} epoch(s) in {result.seconds:.2f}s, "
          f"derived {result.spec.describe()}")

    serving_dtype = getattr(args, "dtype", "float64")
    if serving_dtype != "float64":
        # The searched supernet backs the one-hot scoring path; cast it to
        # the serving dtype once, like the registry does for derived
        # models (the search is over — the weights are frozen artifacts).
        from .nn.policy import cast_module

        cast_module(result.supernet, serving_dtype)
        print(f"serving dtype: {serving_dtype} (memory plane on)")
    service = InferenceService(
        make_encoder, dataset.num_tasks, supernet=result.supernet,
        batch_cache=cache, batch_size=args.batch_size, seed=args.seed,
        policy=None if serving_dtype == "float64" else serving_dtype,
    )
    return dataset, searcher, result, service


def _run_serving(args, demo_requests: bool) -> int:
    """``score`` / ``serve``: search briefly, then serve spec scores.

    One :class:`~repro.serve.BatchCacheRegistry` backs the whole run —
    the searcher populates it, and the service then scores every
    candidate spec (and answers prediction requests) without ever
    re-collating a split.
    """
    import numpy as np

    dataset, searcher, result, service = _serving_context(args)
    _, valid_graphs, test_graphs = dataset.split()
    rng = np.random.default_rng((args.seed, 77))
    specs = [result.spec] + [
        searcher.space.random_spec(args.layers, rng) for _ in range(args.specs)
    ]
    start = time.perf_counter()
    scores = service.score_specs(specs, valid_graphs, metric=dataset.info.metric,
                                 batch_size=args.batch_size)
    elapsed = time.perf_counter() - start
    print(f"\nscored {len(scores)} specs on the validation split "
          f"in {elapsed:.3f}s ({len(scores) / elapsed:.1f} specs/s):")
    for entry in sorted(scores, key=lambda e: e.score, reverse=True):
        marker = " <- derived" if entry.spec == result.spec else ""
        print(f"  {entry.score:8.4f}  {entry.spec.describe()}{marker}")

    if demo_requests:
        best = max(scores, key=lambda e: e.score).spec
        service.warm(test_graphs)
        requests = 20
        start = time.perf_counter()
        for _ in range(requests):
            service.predict(test_graphs, best)
        elapsed = time.perf_counter() - start
        print(f"\nserved {requests} prediction requests over "
              f"{len(test_graphs)} graphs in {elapsed:.3f}s "
              f"({requests / elapsed:.1f} requests/s)")

    stats = service.stats()
    print(f"\ncache stats: {stats['batches']['hits']} batch-cache hits, "
          f"{stats['batches']['misses']} misses, "
          f"{stats['batches']['collations']} collations total")
    return 0


def _run_router(args) -> int:
    """``route``: stream single-graph requests through the dynamic-batching
    router and compare against the per-request batch-of-one path."""
    import numpy as np

    from .graph import DataLoader
    from .nn import no_grad

    dataset, searcher, result, service = _serving_context(args)
    _, _, test_graphs = dataset.split()

    rng = np.random.default_rng((args.seed, 78))
    specs = [result.spec, searcher.space.random_spec(args.layers, rng)]
    stream = [(test_graphs[i % len(test_graphs)], specs[i % len(specs)])
              for i in range(args.requests)]

    # Per-request batch-of-one: what a naive endpoint pays per call —
    # one collation (plans rebuilt from scratch) + one tiny forward each.
    models = {spec: service.model_for(spec) for spec in specs}
    start = time.perf_counter()
    singles = []
    with no_grad():
        for graph, spec in stream:
            model = models[spec]
            model.eval()
            for batch in DataLoader([graph], batch_size=1):
                singles.append(model(batch).data.copy())
    single_s = time.perf_counter() - start

    router = service.router(max_batch_size=args.max_batch_size,
                            max_delay=args.max_delay)
    start = time.perf_counter()
    tickets = [router.submit(graph, spec) for graph, spec in stream]
    router.flush()
    routed_s = time.perf_counter() - start
    assert all(t.done for t in tickets)

    diff = max(float(np.abs(t.result() - s[0]).max())
               for t, s in zip(tickets, singles))
    stats = router.stats()
    print(f"\nrouted {args.requests} single-graph requests in {routed_s:.3f}s "
          f"({args.requests / routed_s:.1f} requests/s) across "
          f"{stats['batches']} micro-batches "
          f"(mean size {stats['mean_batch_size']:.1f}, "
          f"flushes {stats['flushes']})")
    print(f"batch-of-one path: {single_s:.3f}s "
          f"({args.requests / single_s:.1f} requests/s)")
    print(f"dynamic batching speedup: {single_s / routed_s:.1f}x "
          f"(max |logit diff| vs per-request forwards: {diff:.2e})")
    return 0


def _run_server(args) -> int:
    """``serve-forever``: the concurrent runtime behind the HTTP transport."""
    import time as _time

    import numpy as np

    from .serve import HTTPServingClient, HTTPServingTransport, InferenceServer

    dataset, searcher, result, service = _serving_context(args)
    _, _, test_graphs = dataset.split()
    rng = np.random.default_rng((args.seed, 79))
    specs = [result.spec, searcher.space.random_spec(args.layers, rng)]

    server = InferenceServer(
        service, num_workers=args.workers, max_batch_size=args.max_batch_size,
        max_delay=args.max_delay, tick_interval_s=args.tick_interval)
    with server, HTTPServingTransport(server, host=args.host,
                                      port=args.port) as transport:
        print(f"\nserving on {transport.url}  "
              f"({args.workers} workers, micro-batch {args.max_batch_size}, "
              f"deadline ~{args.max_delay * args.tick_interval * 1e3:.1f}ms)")
        print("endpoints: POST /predict /submit /result, GET /stats; e.g.\n"
              f"  curl -s {transport.url}/stats")

        if args.self_test:
            client = HTTPServingClient(transport.url)
            start = time.perf_counter()
            for i in range(args.self_test):
                graph = test_graphs[i % len(test_graphs)]
                logits = client.predict(graph, specs[i % len(specs)])
                assert logits.shape == (dataset.num_tasks,)
            elapsed = time.perf_counter() - start
            stats = client.stats()
            print(f"\nself-test: {args.self_test} HTTP predict round-trips "
                  f"in {elapsed:.3f}s ({args.self_test / elapsed:.1f} req/s)")
            print(f"router: {stats['server_router']['batches']} micro-batches, "
                  f"flushes {stats['server_router']['flushes']}; "
                  f"workers executed {stats['server']['executed_batches']}")
            return 0
        if args.duration is not None:
            _time.sleep(args.duration)
            print(f"\n--duration {args.duration}s elapsed; shutting down")
            return 0
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("\ninterrupted; shutting down")
            return 0


def _run_cluster(args) -> int:
    """``serve-cluster``: shard processes + spec-affinity front end."""
    import time as _time

    import numpy as np

    from .core import DEFAULT_SPACE
    from .graph import load_dataset
    from .serve import ClusterRouter, ShardServiceConfig, launch_shards

    config = ShardServiceConfig(
        dataset=args.dataset, size=args.size, num_layers=args.layers,
        emb_dim=args.emb_dim, batch_size=args.batch_size, seed=args.seed)
    print(f"launching {args.shards} shard(s): {config}")
    start = time.perf_counter()
    shards = launch_shards(config, args.shards, host=args.host,
                           num_workers=args.workers,
                           max_batch_size=args.max_batch_size,
                           max_delay=args.max_delay,
                           tick_interval_s=args.tick_interval)
    print(f"cluster up in {time.perf_counter() - start:.1f}s: "
          + ", ".join(f"shard {s.shard_id} @ {s.url}" for s in shards))
    cluster = ClusterRouter([s.client() for s in shards])
    cluster.start_probes(interval_s=args.probe_interval)
    try:
        if args.self_test:
            # Identically-seeded local reference: the cluster's logits
            # must be bit-identical to the serial service path.
            reference = config()
            dataset = load_dataset(args.dataset, size=args.size)
            rng = np.random.default_rng((args.seed, 80))
            specs = [DEFAULT_SPACE.random_spec(args.layers, rng)
                     for _ in range(3)]
            kill_at = args.self_test // 2 if args.shards >= 2 else None
            start = time.perf_counter()
            for i in range(args.self_test):
                if i == kill_at:
                    victim = shards[cluster.live_shards()[0]]
                    victim.kill()
                    print(f"  killed shard {victim.shard_id} at request {i} "
                          f"(failover test)")
                graph = dataset.graphs[i % len(dataset.graphs)]
                spec = specs[i % len(specs)]
                logits = cluster.predict(graph, spec, timeout_s=60)
                ref = reference.predict([graph], spec, batch_size=1)[0]
                assert np.array_equal(logits, ref), (
                    f"request {i}: cluster logits diverged from serial path")
            elapsed = time.perf_counter() - start
            stats = cluster.stats()["cluster"]
            print(f"\nself-test: {args.self_test} requests in {elapsed:.3f}s "
                  f"({args.self_test / elapsed:.1f} req/s), every logit "
                  f"bit-identical to the serial reference")
            print(f"cluster: live={stats['live']} "
                  f"dispatched={stats['dispatched']} "
                  f"retries={stats['retries']} failovers={stats['failovers']} "
                  f"deaths={stats['deaths']}")
            return 0
        if args.duration is not None:
            _time.sleep(args.duration)
            print(f"\n--duration {args.duration}s elapsed; shutting down")
            return 0
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("\ninterrupted; shutting down")
            return 0
    finally:
        cluster.stop_probes()
        for shard in shards:
            shard.stop()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.target == "space":
        from .core import DEFAULT_SPACE

        for k in (3, 5):
            print(f"K={k}: |space| = {DEFAULT_SPACE.size(k):,}")
        print("paper Remark 3: 10,206 for the 5-layer GIN backbone")
        return 0

    if args.target in ("score", "serve"):
        return _run_serving(args, demo_requests=args.target == "serve")

    if args.target == "route":
        return _run_router(args)

    if args.target == "serve-forever":
        return _run_server(args)

    if args.target == "serve-cluster":
        return _run_cluster(args)

    if args.target == "lint":
        return _run_lint(args)

    if args.target == "backend-info":
        return _run_backend_info(args)

    scale = configs.SMOKE_SCALE if args.tier == "smoke" else configs.BENCH_SCALE
    run, render = _TABLES[args.target]
    results = run(scale, args.datasets)
    print(render(results, args.datasets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
