"""Murcko-like scaffold extraction and scaffold splitting.

The paper evaluates under scaffold split (Sec. IV-A3, following Hu et al.
and MoleculeNet): molecules are grouped by their Bemis-Murcko scaffold and
entire scaffold groups are assigned to train/valid/test, so test molecules
carry scaffolds unseen during training — a realistic out-of-distribution
protocol.  Without RDKit we implement the same idea directly on the graph:

1. *Scaffold subgraph*: iteratively strip non-ring leaves (degree-1 nodes
   outside every cycle) until only ring systems and their linkers remain —
   exactly the Murcko "remove side chains" rule.
2. *Canonical key*: a Weisfeiler-Lehman hash of the scaffold subgraph with
   atom/bond labels (networkx), which is permutation invariant.
3. *Split*: sort scaffold groups by descending size and greedily fill the
   train, then valid, then test buckets (the standard deterministic scaffold
   split), so the largest scaffolds land in train and rare ones in test.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["murcko_scaffold_nodes", "scaffold_key", "scaffold_split"]


def murcko_scaffold_nodes(graph: Graph) -> np.ndarray:
    """Return indices of nodes in the Murcko scaffold (rings + linkers).

    Implemented by repeatedly deleting degree-1 nodes; what survives are the
    cycles and the paths that connect them.  An acyclic molecule has an empty
    scaffold (by convention its scaffold key is the empty hash, grouping all
    acyclic molecules together, as RDKit does for Murcko scaffolds).
    """
    n = graph.num_nodes
    alive = np.ones(n, dtype=bool)
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in graph.edge_index.T:
        adj[u].add(int(v))
        adj[v].add(int(u))
    changed = True
    while changed:
        changed = False
        for node in range(n):
            if alive[node] and sum(alive[m] for m in adj[node]) <= 1:
                alive[node] = False
                changed = True
    return np.flatnonzero(alive)


def scaffold_key(graph: Graph) -> str:
    """Canonical (permutation-invariant) identifier of a graph's scaffold."""
    import networkx as nx

    keep = set(murcko_scaffold_nodes(graph).tolist())
    if not keep:
        return "acyclic"
    g = nx.Graph()
    for i in keep:
        g.add_node(i, atom=str(int(graph.x[i, 0])))
    for (u, v), attr in zip(graph.edge_index.T, graph.edge_attr):
        if u < v and int(u) in keep and int(v) in keep:
            g.add_edge(int(u), int(v), bond=str(int(attr[0])))
    return nx.weisfeiler_lehman_graph_hash(
        g, node_attr="atom", edge_attr="bond", iterations=3
    )


def scaffold_split(
    graphs: list[Graph],
    frac_train: float = 0.8,
    frac_valid: float = 0.1,
    frac_test: float = 0.1,
) -> tuple[list[int], list[int], list[int]]:
    """Deterministic scaffold split; returns (train, valid, test) index lists.

    Groups by :func:`scaffold_key`, sorts groups by (descending size,
    lexicographic key) and fills train first — the protocol of MoleculeNet's
    deterministic scaffold splitter, which concentrates common scaffolds in
    train and pushes rare scaffolds to valid/test.
    """
    if abs(frac_train + frac_valid + frac_test - 1.0) > 1e-8:
        raise ValueError("split fractions must sum to 1")
    groups: dict[str, list[int]] = {}
    for i, graph in enumerate(graphs):
        key = graph.meta.get("scaffold_key")
        if key is None:
            key = scaffold_key(graph)
            graph.meta["scaffold_key"] = key
        groups.setdefault(key, []).append(i)

    ordered = sorted(groups.values(), key=lambda idx: (-len(idx), idx[0]))
    n = len(graphs)
    train_cap = frac_train * n
    valid_cap = (frac_train + frac_valid) * n

    train: list[int] = []
    valid: list[int] = []
    test: list[int] = []
    for group in ordered:
        if len(train) + len(group) <= train_cap or not train:
            train.extend(group)
        elif len(train) + len(valid) + len(group) <= valid_cap or not valid:
            valid.extend(group)
        else:
            test.extend(group)
    if not test:  # degenerate tiny datasets: steal the tail of valid
        test = valid[len(valid) // 2:]
        valid = valid[: len(valid) // 2]
    return train, valid, test
