"""``repro.graph`` — graph data substrate (datasets, batching, scaffolds)."""

from . import transforms
from .datasets import (
    DATASET_REGISTRY,
    DOWNSTREAM_DATASETS,
    DatasetInfo,
    MolecularDataset,
    load_dataset,
    zinc_corpus,
)
from .graph import Batch, Graph
from .loader import DataLoader
from .molecule import (
    ATOM_SYMBOLS,
    ATOM_VALENCES,
    BOND_ORDER,
    DESCRIPTOR_DIM,
    MASK_ATOM_ID,
    MASK_BOND_ID,
    NUM_ATOM_TAGS,
    NUM_ATOM_TYPES,
    NUM_BOND_TAGS,
    NUM_BOND_TYPES,
    MoleculeGenerator,
    molecule_descriptors,
)
from .scaffold import murcko_scaffold_nodes, scaffold_key, scaffold_split

__all__ = [
    "transforms",
    "Graph",
    "Batch",
    "DataLoader",
    "DatasetInfo",
    "MolecularDataset",
    "DATASET_REGISTRY",
    "DOWNSTREAM_DATASETS",
    "load_dataset",
    "zinc_corpus",
    "MoleculeGenerator",
    "molecule_descriptors",
    "murcko_scaffold_nodes",
    "scaffold_key",
    "scaffold_split",
    "ATOM_SYMBOLS",
    "ATOM_VALENCES",
    "BOND_ORDER",
    "DESCRIPTOR_DIM",
    "MASK_ATOM_ID",
    "MASK_BOND_ID",
    "NUM_ATOM_TYPES",
    "NUM_ATOM_TAGS",
    "NUM_BOND_TYPES",
    "NUM_BOND_TAGS",
]
