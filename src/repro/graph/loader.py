"""Mini-batch loader: shuffles graphs and yields disjoint-union Batches."""

from __future__ import annotations

import numpy as np

from .graph import Batch, Graph

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over graphs in batches.

    Parameters
    ----------
    graphs:
        The dataset (a list of :class:`Graph`).
    batch_size:
        Paper default is 32 (Sec. IV-A4).
    shuffle:
        Reshuffle order each epoch using the provided RNG.
    drop_last:
        Drop a trailing incomplete batch (useful for BatchNorm stability).
    """

    def __init__(
        self,
        graphs: list[Graph],
        batch_size: int = 32,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.graphs)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                return
            yield Batch([self.graphs[i] for i in chunk])
