"""Mini-batch loader: shuffles graphs and yields disjoint-union Batches.

Two iteration modes:

* **fresh** (default) — reshuffle the *graph* order each epoch and collate
  every batch from scratch, exactly as a PyG-style loader would.
* **cached** (``cache=True``) — partition the dataset into batches once,
  collate each partition exactly once, and reshuffle only the *order in
  which the pre-built batches are yielded* each epoch.  The numpy
  concatenation cost of collation is paid once per split instead of once
  per epoch, which is what makes repeated supernet sweeps (search epochs,
  per-candidate validation scoring) cheap.

Because a :class:`Batch` lazily caches its segment plans (edge-destination
plan, node->graph plan, GCN degree norms — see :mod:`repro.nn.segment`),
cached mode also amortizes that per-batch precomputation: the first forward
over each batch builds its plans, and every later epoch — and every phase
(searcher, evolution, finetune) sharing the loader — reuses them.  Fresh
mode re-collates per epoch and therefore also rebuilds plans per epoch.

Collation captures the active :class:`~repro.nn.policy.ExecutionPolicy`
dtype into each :class:`Batch` (see its docstring), so a cached loader's
batches are materialized once in the dtype of whoever collates first.
The serving layer runs :meth:`DataLoader.materialize` *inside* its policy
scope for exactly this reason; a loader shared across policies should be
materialized under the policy its consumers will run.
"""

from __future__ import annotations

import threading

import numpy as np

from .graph import Batch, Graph

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over graphs in batches.

    Parameters
    ----------
    graphs:
        The dataset (a list of :class:`Graph`).
    batch_size:
        Paper default is 32 (Sec. IV-A4).
    shuffle:
        Reshuffle each epoch using the provided RNG.  In fresh mode the
        graph order is shuffled (batch membership changes per epoch); in
        cached mode the batch order is shuffled (membership is fixed at
        the first epoch's dataset-order partition).
    drop_last:
        Drop a trailing incomplete batch (useful for BatchNorm stability).
        Combined with ``cache``, the dropped tail is the *same* graphs
        every epoch (fresh mode re-draws which graphs land in the dropped
        tail each epoch) — avoid ``cache + drop_last`` for training loops
        that must eventually visit every graph.
    cache:
        Collate each batch once and reuse it every epoch (see module
        docstring).  :attr:`num_collations` counts Batch constructions so
        callers can verify the cache is working.
    """

    def __init__(
        self,
        graphs: list[Graph],
        batch_size: int = 32,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        cache: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)
        self.drop_last = drop_last
        self.cache = cache
        self.num_collations = 0
        self._cached_batches: list[Batch] | None = None
        # Guards the one-time cached-partition build (and its collation
        # counter) so concurrent serving workers iterating one shared
        # cached loader collate each split exactly once.
        self._cache_lock = threading.Lock()

    def __len__(self) -> int:
        n = len(self.graphs)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _collate(self, indices: np.ndarray) -> Batch:
        self.num_collations += 1
        return Batch([self.graphs[i] for i in indices], indices=indices)

    def _materialize_cache(self) -> list[Batch]:
        """Build the fixed batch partition exactly once.

        With ``shuffle`` the membership is drawn from one random permutation
        — crucial because molecular datasets arrive scaffold-sorted, and
        contiguous dataset-order chunks would make every batch a
        scaffold-homogeneous block (badly non-IID gradients).  Without
        ``shuffle`` the partition preserves dataset order.
        """
        if self._cached_batches is None:
            with self._cache_lock:
                if self._cached_batches is None:
                    n = len(self.graphs)
                    order = np.arange(n)
                    if self.shuffle:
                        self.rng.shuffle(order)
                    batches = []
                    for start in range(0, n, self.batch_size):
                        idx = order[start:start + self.batch_size]
                        if self.drop_last and idx.size < self.batch_size:
                            break
                        batches.append(self._collate(idx))
                    self._cached_batches = batches
        return self._cached_batches

    def materialize(self) -> list[Batch]:
        """Pre-collate and return the cached batch partition (dataset order).

        Only meaningful in cached mode — the serving layer uses it to
        pre-pay collation (and, by touching each batch's plans, segment
        planning) before the first request arrives.
        """
        if not self.cache:
            raise RuntimeError("materialize() requires DataLoader(cache=True)")
        return self._materialize_cache()

    def invalidate_cache(self) -> None:
        """Drop pre-collated batches (call after mutating ``self.graphs``)."""
        self._cached_batches = None

    def __iter__(self):
        if self.cache:
            batches = self._materialize_cache()
            order = np.arange(len(batches))
            if self.shuffle:
                self.rng.shuffle(order)
            for i in order:
                yield batches[i]
            return
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                return
            yield self._collate(chunk)
