"""Graph augmentations for contrastive pre-training (GraphCL, Sec. IV-B).

You et al. (2020) define four augmentation families; all are implemented
here as pure functions ``(graph, rng) -> graph`` over our struct-of-arrays
representation, each preserving graph validity (non-empty node set, in-range
edge indices).
"""

from __future__ import annotations

import numpy as np

from .graph import Graph
from .molecule import MASK_ATOM_ID

__all__ = ["node_drop", "edge_perturb", "attribute_mask", "subgraph_sample", "random_augment"]


def node_drop(graph: Graph, rng: np.random.Generator, ratio: float = 0.2) -> Graph:
    """Remove a random subset of nodes (and incident edges)."""
    n = graph.num_nodes
    keep_count = max(1, int(round(n * (1.0 - ratio))))
    keep = np.sort(rng.choice(n, size=keep_count, replace=False))
    return _induced_subgraph(graph, keep)


def edge_perturb(graph: Graph, rng: np.random.Generator, ratio: float = 0.2) -> Graph:
    """Drop a fraction of bonds and add the same number of random bonds."""
    pairs = _undirected_pairs(graph)
    num_bonds = len(pairs)
    if num_bonds == 0:
        return graph.copy()
    drop = max(0, int(round(num_bonds * ratio)))
    keep_idx = np.sort(rng.choice(num_bonds, size=num_bonds - drop, replace=False))
    kept = [pairs[i] for i in keep_idx]

    existing = {(u, v) for (u, v, _, _) in kept}
    n = graph.num_nodes
    added = 0
    guard = 0
    while added < drop and guard < 50 * max(drop, 1) and n >= 2:
        guard += 1
        u, v = rng.integers(0, n, size=2)
        u, v = int(min(u, v)), int(max(u, v))
        if u == v or (u, v) in existing:
            continue
        kept.append((u, v, 0, int(rng.integers(0, 3))))
        existing.add((u, v))
        added += 1
    return _from_pairs(graph, kept)


def attribute_mask(graph: Graph, rng: np.random.Generator, ratio: float = 0.2) -> Graph:
    """Replace a fraction of atom types with the mask token."""
    out = graph.copy()
    n = out.num_nodes
    count = max(1, int(round(n * ratio)))
    idx = rng.choice(n, size=min(count, n), replace=False)
    out.x[idx, 0] = MASK_ATOM_ID
    return out


def subgraph_sample(graph: Graph, rng: np.random.Generator, ratio: float = 0.8) -> Graph:
    """Random-walk induced subgraph containing ~``ratio`` of the nodes."""
    n = graph.num_nodes
    target = max(1, int(round(n * ratio)))
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in graph.edge_index.T:
        adj[u].append(int(v))
    visited = {int(rng.integers(0, n))}
    frontier = list(visited)
    while len(visited) < target and frontier:
        node = frontier[rng.integers(0, len(frontier))]
        neighbors = [m for m in adj[node] if m not in visited]
        if not neighbors:
            frontier = [f for f in frontier if any(m not in visited for m in adj[f])]
            if not frontier:
                break
            continue
        nxt = neighbors[rng.integers(0, len(neighbors))]
        visited.add(nxt)
        frontier.append(nxt)
    return _induced_subgraph(graph, np.sort(np.array(sorted(visited))))


_AUGMENTATIONS = [node_drop, edge_perturb, attribute_mask, subgraph_sample]


def random_augment(graph: Graph, rng: np.random.Generator) -> Graph:
    """Apply one uniformly chosen GraphCL augmentation."""
    fn = _AUGMENTATIONS[int(rng.integers(0, len(_AUGMENTATIONS)))]
    return fn(graph, rng)


# ----------------------------------------------------------------------
def _undirected_pairs(graph: Graph) -> list[tuple[int, int, int, int]]:
    out = []
    for (u, v), attr in zip(graph.edge_index.T, graph.edge_attr):
        if u < v:
            out.append((int(u), int(v), int(attr[0]), int(attr[1])))
    return out


def _from_pairs(graph: Graph, pairs) -> Graph:
    src, dst, attrs = [], [], []
    for (u, v, b, tag) in pairs:
        src += [u, v]
        dst += [v, u]
        attrs += [[b, tag], [b, tag]]
    edge_index = np.array([src, dst], dtype=np.int64) if src else np.zeros((2, 0), np.int64)
    edge_attr = np.array(attrs, dtype=np.int64) if attrs else np.zeros((0, 2), np.int64)
    return Graph(x=graph.x.copy(), edge_index=edge_index, edge_attr=edge_attr,
                 y=None if graph.y is None else graph.y.copy(), meta=dict(graph.meta))


def _induced_subgraph(graph: Graph, keep: np.ndarray) -> Graph:
    remap = -np.ones(graph.num_nodes, dtype=np.int64)
    remap[keep] = np.arange(len(keep))
    mask = (remap[graph.edge_index[0]] >= 0) & (remap[graph.edge_index[1]] >= 0)
    edge_index = remap[graph.edge_index[:, mask]]
    edge_attr = graph.edge_attr[mask]
    return Graph(x=graph.x[keep].copy(), edge_index=edge_index, edge_attr=edge_attr.copy(),
                 y=None if graph.y is None else graph.y.copy(), meta=dict(graph.meta))
