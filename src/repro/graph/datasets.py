"""Dataset registry: synthetic stand-ins for ZINC15 and MoleculeNet.

Paper Table IV lists eight downstream molecular-property-prediction (MPP)
datasets.  We register each with its real task count, task type, metric and
domain, and synthesize labels from hidden per-task functions of structural
descriptors (see :func:`repro.graph.molecule.molecule_descriptors`), so:

* classification tasks have controlled positive rates and label noise;
* multi-task datasets have missing labels (nan), like real Tox21/ToxCast;
* labels depend on substructure statistics at several scales, so models that
  fuse multi-scale information (what S2PGNN searches over) have headroom.

Dataset sizes default to the paper's molecule counts but are overridable —
all experiment configs run scaled-down sizes on CPU.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .graph import Graph
from .molecule import MoleculeGenerator, molecule_descriptors
from .scaffold import scaffold_split

__all__ = [
    "DatasetInfo",
    "MolecularDataset",
    "DATASET_REGISTRY",
    "DOWNSTREAM_DATASETS",
    "load_dataset",
    "zinc_corpus",
]


@dataclass(frozen=True)
class DatasetInfo:
    """Static description of a downstream dataset (paper Table IV)."""

    name: str
    paper_size: int
    num_tasks: int
    task_type: str  # "classification" | "regression"
    metric: str  # "roc_auc" | "rmse"
    domain: str
    missing_rate: float = 0.0
    label_noise: float = 0.35
    flip_rate: float = 0.08
    seed: int = 7


DATASET_REGISTRY: dict[str, DatasetInfo] = {
    "bbbp": DatasetInfo("bbbp", 2039, 1, "classification", "roc_auc", "Pharmacology", seed=11),
    "tox21": DatasetInfo("tox21", 7831, 12, "classification", "roc_auc", "Pharmacology",
                         missing_rate=0.15, seed=12),
    "toxcast": DatasetInfo("toxcast", 8575, 617, "classification", "roc_auc", "Pharmacology",
                           missing_rate=0.25, seed=13),
    "sider": DatasetInfo("sider", 1427, 27, "classification", "roc_auc", "Pharmacology", seed=14),
    "clintox": DatasetInfo("clintox", 1478, 2, "classification", "roc_auc", "Pharmacology", seed=15),
    "bace": DatasetInfo("bace", 1513, 1, "classification", "roc_auc", "Biophysics", seed=16),
    "esol": DatasetInfo("esol", 1128, 1, "regression", "rmse", "Physical Chemistry", seed=17),
    "lipo": DatasetInfo("lipo", 4200, 1, "regression", "rmse", "Physical Chemistry", seed=18),
}

DOWNSTREAM_DATASETS = list(DATASET_REGISTRY)


@dataclass
class MolecularDataset:
    """A labeled list of graphs plus its static info and split indices."""

    info: DatasetInfo
    graphs: list[Graph]
    splits: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index):
        return self.graphs[index]

    @property
    def num_tasks(self) -> int:
        return self.info.num_tasks

    def split(self, frac_train: float = 0.8, frac_valid: float = 0.1,
              frac_test: float = 0.1) -> tuple[list[Graph], list[Graph], list[Graph]]:
        """Scaffold split (paper protocol); memoized per fraction triple."""
        key = (frac_train, frac_valid, frac_test)
        if key not in self.splits:
            self.splits[key] = scaffold_split(self.graphs, *key)
        tr, va, te = self.splits[key]
        pick = lambda idx: [self.graphs[i] for i in idx]
        return pick(tr), pick(va), pick(te)

    def subsample(self, size: int, seed: int = 0) -> "MolecularDataset":
        """Deterministic random subsample (keeps label structure)."""
        if size >= len(self.graphs):
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self.graphs), size=size, replace=False)
        return MolecularDataset(self.info, [self.graphs[i] for i in sorted(idx)])


def _synthesize_labels(info: DatasetInfo, graphs: list[Graph]) -> None:
    """Attach hidden-function labels to ``graphs`` in place.

    Each task draws a sparse weight vector over standardized structural
    descriptors; classification thresholds the score at a per-task quantile
    (positive rates in [0.15, 0.5]); regression keeps the continuous score
    with a mild tanh compression.  Noise and missingness are seeded.
    """
    rng = np.random.default_rng((info.seed, len(graphs)))
    desc = np.stack([molecule_descriptors(g) for g in graphs], axis=0)
    mu = desc.mean(axis=0)
    sigma = desc.std(axis=0)
    sigma[sigma < 1e-9] = 1.0
    z = (desc - mu) / sigma

    num_graphs, dim = z.shape
    labels = np.zeros((num_graphs, info.num_tasks), dtype=np.float64)
    for t in range(info.num_tasks):
        support = rng.choice(dim, size=min(6, dim), replace=False)
        w = np.zeros(dim)
        w[support] = rng.normal(0.0, 1.0, size=len(support))
        score = z @ w + info.label_noise * rng.normal(size=num_graphs)
        if info.task_type == "classification":
            pos_rate = float(rng.uniform(0.15, 0.5))
            threshold = np.quantile(score, 1.0 - pos_rate)
            task_labels = (score > threshold).astype(np.float64)
            # Random label flips: bound the AUC ceiling below 1 and guarantee
            # class diversity inside every scaffold group (otherwise a split
            # whose labels are pure functions of structure can be single-class
            # and ROC-AUC would be undefined).
            if info.flip_rate > 0:
                flips = rng.random(num_graphs) < info.flip_rate
                task_labels[flips] = 1.0 - task_labels[flips]
            labels[:, t] = task_labels
        else:
            compressed = np.tanh(score / 2.0) * 2.0 + 0.2 * score
            labels[:, t] = compressed

    if info.missing_rate > 0:
        mask = rng.random(labels.shape) < info.missing_rate
        labels[mask] = np.nan

    for i, graph in enumerate(graphs):
        graph.y = labels[i]


#: Process-wide dataset cache.  Concurrent loaders (serving workers,
#: parallel experiment threads) share it, so lookups and inserts go
#: through ``_dataset_cache_lock`` (a leaf in the documented lock order —
#: see ``repro.devtools.locks``).  Generation runs outside the lock: two
#: racing builders of the same key produce identical datasets (generation
#: is seed-deterministic), so the duplicate insert is benign and a slow
#: generation never blocks unrelated cache hits.
_dataset_cache_lock = threading.Lock()
_DATASET_CACHE: dict[tuple, MolecularDataset] = {}


def load_dataset(name: str, size: int | None = None, num_tasks: int | None = None,
                 seed: int | None = None) -> MolecularDataset:
    """Load (generate) a downstream dataset by registry name.

    Parameters
    ----------
    name:
        One of :data:`DOWNSTREAM_DATASETS` (case-insensitive).
    size:
        Number of molecules; defaults to the paper's size.  Experiments use
        scaled-down sizes for CPU feasibility.
    num_tasks:
        Optional task-count override (ToxCast's 617 heads are expensive at
        full width; configs may reduce while keeping multi-task character).
    seed:
        Optional override of the dataset's generation seed.
    """
    key_name = name.lower()
    if key_name not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {DOWNSTREAM_DATASETS}")
    base = DATASET_REGISTRY[key_name]
    info = DatasetInfo(
        name=base.name,
        paper_size=base.paper_size,
        num_tasks=num_tasks if num_tasks is not None else base.num_tasks,
        task_type=base.task_type,
        metric=base.metric,
        domain=base.domain,
        missing_rate=base.missing_rate,
        label_noise=base.label_noise,
        flip_rate=base.flip_rate,
        seed=seed if seed is not None else base.seed,
    )
    size = size if size is not None else info.paper_size
    cache_key = (info.name, size, info.num_tasks, info.seed)
    with _dataset_cache_lock:
        cached = _DATASET_CACHE.get(cache_key)
    if cached is not None:
        return cached

    generator = MoleculeGenerator(num_scaffolds=max(12, size // 25), seed=info.seed)
    graphs = generator.generate_many(size)
    _synthesize_labels(info, graphs)
    dataset = MolecularDataset(info, graphs)
    with _dataset_cache_lock:
        # Keep the first insert: racing builders made identical datasets,
        # but callers comparing graph identity deserve one canonical copy.
        dataset = _DATASET_CACHE.setdefault(cache_key, dataset)
    return dataset


def zinc_corpus(size: int = 600, seed: int = 101) -> list[Graph]:
    """Unlabeled pre-training corpus (ZINC15 stand-in).

    The paper uses ZINC15 with 2M molecules (250K for MGSSL); we default to a
    CPU-scale corpus.  Molecules are unlabeled — SSL objectives provide their
    own targets.
    """
    generator = MoleculeGenerator(num_scaffolds=max(24, size // 20), seed=seed)
    return generator.generate_many(size)
