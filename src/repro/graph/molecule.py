"""Synthetic molecular graph generator (ZINC15 / MoleculeNet stand-in).

The execution environment has no network access and no RDKit, so neither the
paper's pre-training corpus (ZINC15) nor its downstream datasets can be
downloaded.  This module generates *molecule-like* attributed graphs that
preserve the statistical properties the paper's pipeline depends on:

* valence-respecting atom/bond structure with realistic ring systems;
* a library of recurring scaffolds shared across molecules with a skewed
  (Zipf-like) frequency distribution — this is what makes scaffold splitting
  produce the out-of-distribution train/test shift the paper evaluates under;
* deterministic generation from explicit seeds (content-addressed datasets).

The generator does not attempt chemical fidelity (no aromaticity perception,
no stereochemistry); it only needs to exercise the same code paths and give
substructure-dependent learning signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "ATOM_SYMBOLS",
    "ATOM_VALENCES",
    "NUM_ATOM_TYPES",
    "NUM_ATOM_TAGS",
    "NUM_BOND_TYPES",
    "NUM_BOND_TAGS",
    "MASK_ATOM_ID",
    "MASK_BOND_ID",
    "BOND_ORDER",
    "ScaffoldSpec",
    "MoleculeGenerator",
    "molecule_descriptors",
    "DESCRIPTOR_DIM",
]

# Atom vocabulary: (symbol, max valence). Weighted toward carbon as in ZINC.
ATOM_SYMBOLS = ["C", "N", "O", "F", "S", "Cl", "Br", "P", "I", "B"]
ATOM_VALENCES = np.array([4, 3, 2, 1, 2, 1, 1, 3, 1, 3], dtype=np.int64)
ATOM_WEIGHTS = np.array([0.55, 0.12, 0.12, 0.05, 0.05, 0.04, 0.02, 0.02, 0.01, 0.02])

NUM_ATOM_TYPES = len(ATOM_SYMBOLS)
NUM_ATOM_TAGS = 4  # chirality-like tag
NUM_BOND_TYPES = 4  # single, double, triple, aromatic
NUM_BOND_TAGS = 3  # stereo-like tag

# Extra vocabulary slots for masked-component pre-training (AttrMasking,
# GraphMAE, Mole-BERT): embedding tables are sized with one mask id.
MASK_ATOM_ID = NUM_ATOM_TYPES
MASK_BOND_ID = NUM_BOND_TYPES

# Valence consumed per bond type (aromatic approximated as 1).
BOND_ORDER = np.array([1, 2, 3, 1], dtype=np.int64)

_HETERO_RING_ATOMS = [1, 2, 4]  # N, O, S can substitute ring carbons


@dataclass(frozen=True)
class ScaffoldSpec:
    """A reusable ring-system template.

    ``ring_sizes`` lists the member rings (5- or 6-cycles); ``fusion``
    decides edge-fusion vs. single-bond linkage between consecutive rings;
    ``hetero_positions`` substitutes carbons with heteroatoms.
    """

    ring_sizes: tuple
    fusion: tuple
    hetero_positions: tuple
    aromatic: tuple


class MoleculeGenerator:
    """Deterministic generator of molecule-like :class:`Graph` objects.

    Parameters
    ----------
    num_scaffolds:
        Size of the scaffold library.  Molecules sample a scaffold with a
        Zipf-like skew, so a handful of scaffolds dominate (as in real
        libraries) while a long tail supplies OOD test scaffolds.
    seed:
        Root seed; the same (seed, index) always yields the same molecule.
    """

    def __init__(self, num_scaffolds: int = 40, seed: int = 0,
                 side_chain_atoms: tuple = (0, 8)):
        self.seed = seed
        self.num_scaffolds = num_scaffolds
        self.side_chain_atoms = side_chain_atoms
        rng = np.random.default_rng(seed)
        self.scaffolds = [self._sample_scaffold_spec(rng) for _ in range(num_scaffolds)]
        ranks = np.arange(1, num_scaffolds + 1, dtype=np.float64)
        weights = 1.0 / ranks ** 1.2
        self.scaffold_probs = weights / weights.sum()

    # ------------------------------------------------------------------
    # scaffold templates
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_scaffold_spec(rng: np.random.Generator) -> ScaffoldSpec:
        num_rings = int(rng.integers(1, 4))
        ring_sizes = tuple(int(rng.choice([5, 6], p=[0.35, 0.65])) for _ in range(num_rings))
        fusion = tuple(bool(rng.random() < 0.5) for _ in range(max(num_rings - 1, 0)))
        hetero = []
        for size in ring_sizes:
            subs = []
            for pos in range(size):
                if rng.random() < 0.18:
                    subs.append((pos, int(rng.choice(_HETERO_RING_ATOMS))))
            hetero.append(tuple(subs))
        aromatic = tuple(bool(rng.random() < 0.6) for _ in ring_sizes)
        return ScaffoldSpec(ring_sizes, fusion, tuple(hetero), aromatic)

    def _build_scaffold(self, spec: ScaffoldSpec):
        """Materialize a spec into (atom_types, bonds) where bonds are
        (u, v, bond_type) tuples over scaffold-local node ids."""
        atoms: list[int] = []
        bonds: list[tuple[int, int, int]] = []

        def add_ring(size, hetero, aromatic, attach_edge=None, attach_node=None):
            base = len(atoms)
            ring_atoms = [0] * size  # carbon default
            for pos, atom in hetero:
                ring_atoms[pos] = atom
            start = 0
            ids = []
            if attach_edge is not None:
                # Edge fusion: reuse two existing adjacent atoms as ring members.
                ids = [attach_edge[0], attach_edge[1]]
                start = 2
            for i in range(start, size):
                atoms.append(ring_atoms[i])
                ids.append(base + i - start)
            bond_type = 3 if aromatic else 0
            for i in range(size):
                u, v = ids[i], ids[(i + 1) % size]
                if attach_edge is not None and {u, v} == set(attach_edge):
                    continue  # the fused edge already exists
                bonds.append((u, v, bond_type))
            if attach_node is not None:
                bonds.append((attach_node, ids[0], 0))
            return ids

        prev_ring = None
        for i, size in enumerate(spec.ring_sizes):
            aromatic = spec.aromatic[i]
            hetero = spec.hetero_positions[i]
            if prev_ring is None:
                prev_ring = add_ring(size, hetero, aromatic)
            elif spec.fusion[i - 1]:
                # Fuse on the *newest* edge of the previous ring so chained
                # fusions never pile multiple rings onto the same atom pair.
                edge = (prev_ring[-2], prev_ring[-1])
                prev_ring = add_ring(size, hetero, aromatic, attach_edge=edge)
            else:
                prev_ring = add_ring(
                    size, hetero, aromatic, attach_node=prev_ring[len(prev_ring) // 2]
                )

        # Valence repair: fusion/linker atoms accumulate up to 4 bonds, which
        # can exceed a substituted heteroatom's valence.  Reassign any
        # over-bonded atom to the lightest type whose valence suffices
        # (carbon covers every case produced by the construction above).
        used = np.zeros(len(atoms), dtype=np.int64)
        for u, v, b in bonds:
            used[u] += BOND_ORDER[b]
            used[v] += BOND_ORDER[b]
        for i, atom in enumerate(atoms):
            if used[i] > ATOM_VALENCES[atom]:
                atoms[i] = 0  # carbon, valence 4
        return atoms, bonds

    # ------------------------------------------------------------------
    # molecules
    # ------------------------------------------------------------------
    def generate(self, index: int, scaffold_id: int | None = None) -> Graph:
        """Generate molecule ``index`` (deterministic in (seed, index))."""
        rng = np.random.default_rng((self.seed, index))
        if scaffold_id is None:
            scaffold_id = int(rng.choice(self.num_scaffolds, p=self.scaffold_probs))
        spec = self.scaffolds[scaffold_id]
        atoms, bonds = self._build_scaffold(spec)
        atoms = list(atoms)
        bonds = list(bonds)

        # Remaining valence bookkeeping.
        used = np.zeros(len(atoms), dtype=np.int64)
        for u, v, b in bonds:
            used[u] += BOND_ORDER[b]
            used[v] += BOND_ORDER[b]

        def remaining(i):
            return ATOM_VALENCES[atoms[i]] - used[i]

        # Attach side chains (small trees) to atoms with spare valence.
        lo, hi = self.side_chain_atoms
        target_extra = int(rng.integers(lo, hi + 1))
        frontier = list(range(len(atoms)))
        added = 0
        guard = 0
        while added < target_extra and guard < 200:
            guard += 1
            anchors = [i for i in frontier if remaining(i) >= 1]
            if not anchors:
                break
            anchor = int(rng.choice(anchors))
            atom = int(rng.choice(NUM_ATOM_TYPES, p=ATOM_WEIGHTS))
            max_order = min(int(remaining(anchor)), int(ATOM_VALENCES[atom]), 3)
            order_choices = [0] + ([1] if max_order >= 2 else []) + ([2] if max_order >= 3 else [])
            bond_type = int(rng.choice(order_choices)) if order_choices else 0
            new_id = len(atoms)
            atoms.append(atom)
            used = np.append(used, BOND_ORDER[bond_type])
            used[anchor] += BOND_ORDER[bond_type]
            bonds.append((anchor, new_id, bond_type))
            frontier.append(new_id)
            added += 1

        n = len(atoms)
        x = np.zeros((n, 2), dtype=np.int64)
        x[:, 0] = atoms
        x[:, 1] = rng.integers(0, NUM_ATOM_TAGS, size=n)

        src, dst, etype = [], [], []
        for u, v, b in bonds:
            src += [u, v]
            dst += [v, u]
            etype += [b, b]
        edge_index = np.array([src, dst], dtype=np.int64)
        edge_attr = np.zeros((len(src), 2), dtype=np.int64)
        edge_attr[:, 0] = etype
        edge_attr[:, 1] = rng.integers(0, NUM_BOND_TAGS, size=len(src))

        return Graph(
            x=x,
            edge_index=edge_index,
            edge_attr=edge_attr,
            meta={"scaffold_id": scaffold_id, "index": index},
        )

    def generate_many(self, count: int, start: int = 0) -> list[Graph]:
        return [self.generate(start + i) for i in range(count)]


# ----------------------------------------------------------------------
# structural descriptors (hidden label-generating features)
# ----------------------------------------------------------------------
_PAIR_ATOMS = [0, 1, 2, 4]  # C, N, O, S adjacency pair counts
_PAIRS = [(a, b) for i, a in enumerate(_PAIR_ATOMS) for b in _PAIR_ATOMS[i:]]

DESCRIPTOR_DIM = NUM_ATOM_TYPES + NUM_BOND_TYPES + len(_PAIRS) + 6


def molecule_descriptors(graph: Graph) -> np.ndarray:
    """Deterministic structural descriptor vector used to synthesize labels.

    Contains atom-type counts, bond-type counts, adjacent heteroatom pair
    counts, size, cyclomatic ring count, degree statistics, and ring-atom
    fraction.  Downstream labels are hidden (per-dataset, per-task) functions
    of these descriptors, so learnable signal depends on multi-scale
    structure — the property S2PGNN's fusion/readout search exploits.
    """
    n = graph.num_nodes
    atom_counts = np.bincount(graph.x[:, 0], minlength=NUM_ATOM_TYPES).astype(np.float64)
    bond_counts = np.bincount(
        graph.edge_attr[:, 0], minlength=NUM_BOND_TYPES
    ).astype(np.float64) / 2.0  # directed edges double-count bonds

    pair_index = {pair: i for i, pair in enumerate(_PAIRS)}
    pair_counts = np.zeros(len(_PAIRS), dtype=np.float64)
    for (u, v) in graph.edge_index.T:
        if u < v:
            a, b = sorted((int(graph.x[u, 0]), int(graph.x[v, 0])))
            key = (a, b)
            if key in pair_index:
                pair_counts[pair_index[key]] += 1.0

    degrees = graph.degrees().astype(np.float64)
    num_bonds = graph.num_edges / 2.0
    # Cyclomatic number = bonds - nodes + components; our molecules are connected.
    ring_count = max(num_bonds - n + 1.0, 0.0)
    ring_atoms = _count_cycle_atoms(graph)

    extras = np.array([
        float(n),
        ring_count,
        degrees.mean() if n else 0.0,
        degrees.max() if n else 0.0,
        ring_atoms / max(n, 1),
        num_bonds,
    ])
    return np.concatenate([atom_counts, bond_counts, pair_counts, extras])


def _count_cycle_atoms(graph: Graph) -> float:
    import networkx as nx

    g = graph.to_networkx()
    cycle_nodes: set[int] = set()
    for cycle in nx.cycle_basis(g):
        cycle_nodes.update(cycle)
    return float(len(cycle_nodes))
