"""Graph and Batch containers (struct-of-arrays, PyG-style).

A :class:`Graph` stores one attributed molecule-like graph:

* ``x`` — ``(num_nodes, 2)`` int64 node attributes ``[atom_type, atom_tag]``
  (the two-slot layout mirrors Hu et al. 2019's atom-type + chirality input).
* ``edge_index`` — ``(2, num_edges)`` int64 directed edge list; undirected
  molecular bonds are stored as both directions.
* ``edge_attr`` — ``(num_edges, 2)`` int64 ``[bond_type, bond_tag]``.
* ``y`` — ``(num_tasks,)`` float64 labels; ``nan`` marks a missing label
  (multi-task MoleculeNet datasets have sparse label matrices).

:class:`Batch` is the disjoint union of many graphs with a ``batch`` vector
mapping each node to its source graph — the representation every
aggregation / readout primitive in :mod:`repro.nn.segment` consumes.  Its
float payloads (``y``, the GCN degree norms) are materialized **once, at
collation time, in the active**
:class:`~repro.nn.policy.ExecutionPolicy` **dtype** — a batch collated
under ``serving_policy()`` feeds float32 forwards with no per-step casts,
while training batches stay float64.  A batch is treated as immutable
after collation, which lets it lazily build
and cache the encoder-invariant precomputation every forward pass needs:
the edge-destination :class:`~repro.nn.segment.SegmentPlan`, the
node->graph plan, and GCN's symmetric degree norms.  Combined with
``DataLoader(cache=True)`` these are computed once per split and reused
across every epoch and every search/evolution/finetune phase.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..nn.policy import active_dtype
from ..nn.segment import SegmentPlan

__all__ = ["Graph", "Batch"]


@dataclass
class Graph:
    """One attributed graph with optional labels and metadata."""

    x: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    y: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.int64)
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_attr = np.asarray(self.edge_attr, dtype=np.int64)
        if self.edge_attr.ndim == 1:
            self.edge_attr = self.edge_attr.reshape(-1, 1)
        if self.y is not None:
            # Dataset-level labels stay float64 regardless of policy: one
            # Graph may feed both training and serving collations, and the
            # Batch casts at collation time.
            self.y = np.asarray(self.y, dtype=np.float64).reshape(-1)  # repro: disable=REP007
        self.validate()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of *directed* edges (2x the bond count)."""
        return int(self.edge_index.shape[1])

    @property
    def num_tasks(self) -> int:
        return 0 if self.y is None else int(self.y.shape[0])

    def validate(self) -> None:
        """Raise ``ValueError`` on structurally inconsistent data."""
        if self.x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {self.x.shape}")
        if self.num_edges:
            lo, hi = self.edge_index.min(), self.edge_index.max()
            if lo < 0 or hi >= self.num_nodes:
                raise ValueError(
                    f"edge_index out of range [0, {self.num_nodes}): ({lo}, {hi})"
                )
        if self.edge_attr.shape[0] != self.num_edges:
            raise ValueError(
                f"edge_attr rows ({self.edge_attr.shape[0]}) != num_edges ({self.num_edges})"
            )

    def degrees(self) -> np.ndarray:
        """In-degree per node under the directed edge list."""
        return np.bincount(self.edge_index[1], minlength=self.num_nodes)

    def is_undirected(self) -> bool:
        """True if every directed edge has its reverse present."""
        fwd = set(map(tuple, self.edge_index.T))
        return all((v, u) in fwd for (u, v) in fwd)

    def to_networkx(self):
        """Convert to ``networkx.Graph`` with atom/bond labels (for scaffolds)."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.num_nodes):
            g.add_node(i, atom=int(self.x[i, 0]))
        for (u, v), attr in zip(self.edge_index.T, self.edge_attr):
            if u < v:
                g.add_edge(int(u), int(v), bond=int(attr[0]))
        return g

    def copy(self) -> "Graph":
        return Graph(
            x=self.x.copy(),
            edge_index=self.edge_index.copy(),
            edge_attr=self.edge_attr.copy(),
            y=None if self.y is None else self.y.copy(),
            meta=dict(self.meta),
        )


class Batch:
    """Disjoint union of graphs with per-node graph assignment.

    Parameters
    ----------
    graphs:
        The member graphs, collated eagerly (one numpy concatenation per
        array field).
    indices:
        Optional positions of the member graphs in their source dataset;
        recorded by the caching :class:`~repro.graph.loader.DataLoader` so
        a pre-collated batch stays traceable to the split it came from.
    """

    def __init__(self, graphs: list[Graph], indices: np.ndarray | None = None):
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        self.graphs = list(graphs)
        self.num_graphs = len(graphs)
        self.indices = None if indices is None else np.asarray(indices, dtype=np.int64)

        node_offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
        self.node_offsets = node_offsets
        self.x = np.concatenate([g.x for g in graphs], axis=0)
        self.edge_index = np.concatenate(
            [g.edge_index + off for g, off in zip(graphs, node_offsets[:-1])], axis=1
        ) if any(g.num_edges for g in graphs) else np.zeros((2, 0), dtype=np.int64)
        self.edge_attr = np.concatenate([g.edge_attr for g in graphs], axis=0) if any(
            g.num_edges for g in graphs
        ) else np.zeros((0, graphs[0].edge_attr.shape[1] or 2), dtype=np.int64)
        self.batch = np.concatenate(
            [np.full(g.num_nodes, i, dtype=np.int64) for i, g in enumerate(graphs)]
        )
        # Collation dtype: captured once from the active execution policy,
        # so every float payload of the batch (labels, degree norms) is
        # materialized in it exactly once.
        self.dtype = active_dtype()
        labeled = [g.y for g in graphs if g.y is not None]
        if len(labeled) == self.num_graphs:
            self.y = np.stack(labeled, axis=0).astype(self.dtype, copy=False)
        else:
            self.y = None
        # Lazy per-batch precomputation (built on first use, then reused
        # for the lifetime of the batch — i.e. every epoch under a caching
        # loader).  Valid because collated arrays are never mutated.  The
        # lock only guards the one-time builds: concurrent serving workers
        # sharing a cached batch must not each build (and race to publish)
        # their own plan.
        self._plan_lock = threading.Lock()
        self._edge_plan: SegmentPlan | None = None
        self._edge_src_plan: SegmentPlan | None = None
        self._node_plan: SegmentPlan | None = None
        self._gcn_inv_sqrt_deg: np.ndarray | None = None

    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def edge_plan(self) -> SegmentPlan:
        """Cached reduction plan over edge destinations (``edge_index[1]``).

        This is the plan every convolution's neighborhood aggregation and
        attention softmax reduces with (segments = target nodes).
        """
        if self._edge_plan is None:
            with self._plan_lock:
                if self._edge_plan is None:
                    self._edge_plan = SegmentPlan(self.edge_index[1], self.num_nodes)
        return self._edge_plan

    def edge_src_plan(self) -> SegmentPlan:
        """Cached reduction plan over edge sources (``edge_index[0]``).

        Message passing gathers source-node features along this index on
        every layer; the plan makes the gather's scatter-add adjoint run
        through the fast segment-sum kernel.
        """
        if self._edge_src_plan is None:
            with self._plan_lock:
                if self._edge_src_plan is None:
                    self._edge_src_plan = SegmentPlan(self.edge_index[0],
                                                      self.num_nodes)
        return self._edge_src_plan

    def node_plan(self) -> SegmentPlan:
        """Cached reduction plan over the node->graph ``batch`` vector.

        This is the plan every readout pools with (segments = graph ids).
        """
        if self._node_plan is None:
            with self._plan_lock:
                if self._node_plan is None:
                    self._node_plan = SegmentPlan(self.batch, self.num_graphs)
        return self._node_plan

    def gcn_inv_sqrt_deg(self) -> np.ndarray:
        """Cached ``1/sqrt(deg + 1)`` per node (GCN's symmetric norm).

        Degrees come from the edge plan's counts (in-degree under the
        directed edge list, plus the implicit self-loop).
        """
        if self._gcn_inv_sqrt_deg is None:
            counts = self.edge_plan().counts  # outside the lock: re-entrant build
            with self._plan_lock:
                if self._gcn_inv_sqrt_deg is None:
                    # float64 compute, then a no-copy cast to the collation
                    # dtype — bit-identical under the default policy.
                    self._gcn_inv_sqrt_deg = (
                        1.0 / np.sqrt(counts + 1.0)).astype(self.dtype,
                                                            copy=False)
        return self._gcn_inv_sqrt_deg

    def label_mask(self) -> np.ndarray:
        """Boolean mask of present (non-nan) labels, shape (num_graphs, tasks)."""
        if self.y is None:
            raise ValueError("batch has no labels")
        return ~np.isnan(self.y)

    def labels_filled(self, fill: float = 0.0) -> np.ndarray:
        """Labels with nans replaced by ``fill`` (pairs with :meth:`label_mask`)."""
        if self.y is None:
            raise ValueError("batch has no labels")
        return np.where(np.isnan(self.y), fill, self.y)
