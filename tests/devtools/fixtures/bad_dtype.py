"""REP007 fixture: hard-coded / dtype-less float allocations on a hot path."""

import numpy as np
from numpy import float64 as f64


def hard_coded_zeros(n):
    return np.zeros(n, dtype=np.float64)  # REP007


def hard_coded_cast(x):
    return np.asarray(x, dtype=np.float64)  # REP007


def hard_coded_astype(x):
    return x.astype(np.float64)  # REP007


def aliased_member(n):
    return np.empty(n, dtype=f64)  # REP007: aliased from-import


def string_dtype(n):
    return np.ones(n, dtype="float64")  # REP007: string spelling


def bare_alloc(n):
    return np.zeros(n)  # REP007: dtype-less defaults to float64


def fine_explicit(n, dtype):
    out = np.zeros(n, dtype=dtype)  # fine: caller-provided dtype
    mask = np.zeros(n, dtype=bool)  # fine: non-float payload
    ids = np.empty(n, dtype=np.int64)  # fine: explicit integer dtype
    return out, mask, ids


def sanctioned(n):
    return np.zeros(n, dtype=np.float64)  # repro: disable=REP007
