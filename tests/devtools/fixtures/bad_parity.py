"""REP005 fixture: segment ops breaking the two-backend contract.

Linted with ``parity_fast_module="bad_parity.py"`` and a reference
module (``parity_reference.py``) that is absent from the fixture
project, so the ``_tensor.*`` dispatch check fires too.
"""

import numpy as np

__all__ = ["segment_sum", "segment_max", "segment_mean", "scatter_add"]
# REP005: segment_mean is exported but never defined.


def segment_sum(values, segment_ids, num_segments):
    if _backend() == "legacy":
        # REP005: dispatch target missing from the reference module
        return _tensor.legacy_segment_sum(values, segment_ids, num_segments)
    out = np.zeros((num_segments,) + values.shape[1:])
    np.add.at(out, segment_ids, values)  # REP005: scatter in a hot path
    return out


def segment_max(values, segment_ids, num_segments):
    # REP005: no legacy-backend dispatch at all
    out = np.full((num_segments,), -np.inf)
    np.maximum.at(out, segment_ids, values)  # REP005: scatter in a hot path
    return out


def scatter_add(out, index, values):
    # REP005 (no legacy dispatch) — but the scatter below is allowed:
    np.add.at(out, index, values)  # allowed: the documented fallback site
    return out


def _backend():
    return "fast"


_tensor = None  # stand-in so the module at least imports
