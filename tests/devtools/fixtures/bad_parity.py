"""REP005 fixture: a fast segment module breaking the registry contract.

Linted with ``parity_fast_module="bad_parity.py"`` and
``ops_module="bad_opreg.py"``: every export must be a registered op,
dispatch must go through the registry (no inline backend compares), and
``ufunc.at`` scatters stay out of hot paths except the declared
fallback functions.
"""

import numpy as np

__all__ = ["segment_sum", "segment_max", "segment_mean", "scatter_add"]
# REP005: segment_mean is exported but not registered in bad_opreg.py.


def segment_sum(values, segment_ids, num_segments):
    if active_backend() == "fast":  # REP005: inline backend branch
        out = np.zeros((num_segments,) + values.shape[1:])
        np.add.at(out, segment_ids, values)  # REP005: scatter in a hot path
        return out
    return values


def segment_max(values, segment_ids, num_segments):
    out = np.full((num_segments,), -np.inf)
    np.maximum.at(out, segment_ids, values)  # REP005: scatter in a hot path
    return out


def scatter_add(out, index, values):
    np.add.at(out, index, values)  # allowed: the documented fallback site
    return out


def active_backend():
    return "fast"
