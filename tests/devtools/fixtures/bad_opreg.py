"""REP004/REP005/REP008 fixture: a broken op-registry module.

Linted with ``ops_module="bad_opreg.py"`` and ``autograd_modules``
covering this file plus ``bad_autograd.py``.  The registration table
below plants one of each violation class; the module only needs to
*parse* — the rules read it statically and never import it.
"""

from . import bad_autograd as _impls
from . import elsewhere as _elsewhere  # module outside autograd_modules

REGISTRY = None  # stand-in receiver; the lints model the calls, not the object


def fast_sum(values, segment_ids, num_segments):
    return values


def make_samples(dtype):
    return []


def use_backend(name):
    return name


REGISTRY.register_backend("ref", description="reference backend")
REGISTRY.register_backend("fast", fallback="ref")
REGISTRY.register_backend("warp", fallback="quantum")
# REP008: 'warp' falls back to the undeclared backend 'quantum'.

# Clean registration: adjoint + samples + two declared backends, both
# implementations named functions inside the autograd-checked modules.
REGISTRY.register(
    "segment_sum",
    backends={"ref": _impls.good_add, "fast": fast_sum},
    adjoint="scatter the upstream gradient back through the ids",
    samples=make_samples,
)

# REP008 x3: no adjoint, no samples, single backend without a waiver.
# REP004: 'phantom_op' is not defined in bad_autograd.py.
# REP005: no reference-backend implementation.
REGISTRY.register(
    "segment_max",
    backends={"fast": _impls.phantom_op},
)

# REP008: 'quantum' was never declared via register_backend.
# REP004: a lambda implementation dodges the autograd checks.
# REP005: no reference-backend implementation.
REGISTRY.register(
    "gather_segments",
    backends={"quantum": lambda x, ids: x[ids]},
    adjoint="scatter-add rows back to their sources",
    samples=make_samples,
    waiver="speculative backend only",
)

# REP004: the 'ref' implementation lives in elsewhere.py, outside the
# autograd-checked modules.
REGISTRY.register(
    "scatter_add",
    backends={"ref": _elsewhere.touch_unguarded, "fast": fast_sum},
    adjoint="gather the upstream gradient at the scatter indices",
    samples=make_samples,
)

# REP008: duplicate registration of 'segment_sum'.
REGISTRY.register(
    "segment_sum",
    backends={"ref": _impls.good_add, "fast": fast_sum},
    adjoint="duplicate registration of the op above",
    samples=make_samples,
)

# REP008: non-literal op name — invisible to every registry lint.
for _name in ("exp", "log"):
    REGISTRY.register(
        _name,
        backends={"ref": _impls.good_add},
        adjoint="elementwise derivative",
        samples=make_samples,
        waiver="elementwise reference op",
    )

# Clean: non-differentiable forward-only op; the lambda is fine because
# REP004 only audits differentiable implementations, and the waiver
# sanctions the single backend.
REGISTRY.register(
    "histogram",
    backends={"ref": lambda x: x},
    adjoint="none: integer-valued diagnostic",
    samples=make_samples,
    differentiable=False,
    waiver="forward-only diagnostic",
)


def run_everything(x):
    with use_backend("fast"):  # clean: declared backend
        pass
    with use_backend("cuda"):  # REP008: undeclared backend literal
        pass
    return x
