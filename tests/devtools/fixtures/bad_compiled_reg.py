"""REP008 fixture: a compiled-backend fill breaking the fill contract.

Linted with ``compiled_registration_module="bad_compiled_reg.py"`` and
``compiled_impl_prefix="nn/compiled/"``: the ``register_backend(...,
impls=...)`` call below omits its fallback declaration, and both
implementation references resolve outside the compiled package (one to
a sibling fixture module, one to this file itself).
"""

from . import bad_parity as _elsewhere


def _local_impl(values, plan):
    # REP008: lives in this module, not under nn/compiled/.
    return values


def fill_backend(registry):
    registry.register_backend(  # REP008: no fallback declaration
        "compiled",
        impls={
            "segment_sum": _elsewhere.segment_sum,  # REP008: out of prefix
            "segment_mean": _local_impl,            # REP008: out of prefix
        })
