"""REP004 fixture: ops violating the ``Tensor._result`` autograd contract."""


class Tensor:
    @staticmethod
    def _result(data, parents, op, backward=None):
        return data


def good_add(x, y):  # no findings: complete parents + backward
    out = x + y

    def backward(g):
        x._accumulate(g)
        y._accumulate(g)

    return Tensor._result(out, (x, y), "add", backward)


def missing_parent(x, y):
    out = x * y

    def backward(g):
        x._accumulate(g)
        y._accumulate(g)  # REP004: y is not in the parents tuple

    return Tensor._result(out, (x,), "mul", backward)


def no_backward(x):
    return Tensor._result(x, (x,), "identity")  # REP004: no closure


def none_backward(x):
    return Tensor._result(x, (x,), "identity", None)  # REP004: backward=None
