"""REP003 fixture: module-global mutations with and without the guard.

``_cache_lock`` is registered in the fixture hierarchy with
``guards=("_CACHE",)``; ``_COUNTERS`` has no guard at all.
"""

import threading

_cache_lock = threading.Lock()
_CACHE = {}
_COUNTERS = {}


def unguarded_insert(key, value):
    _CACHE[key] = value  # REP003: guard lock not held


def guarded_insert(key, value):
    with _cache_lock:
        _CACHE[key] = value  # fine: registered guard held


def bump(name):
    _COUNTERS[name] = _COUNTERS.get(name, 0) + 1  # REP003: no guard at all


def shadowed(key):
    _CACHE = {}  # local shadow: fine
    _CACHE[key] = 1
    return _CACHE


def rebind():
    global _COUNTERS
    _COUNTERS = {}  # REP003: rebinding via global
