"""REP002 fixture: wall-clock reads in a file outside the allowlist."""

import time
from time import perf_counter as pc


def tick():
    return time.time()  # REP002


def sleepy():
    time.sleep(0.1)  # REP002
    return pc()  # REP002: aliased from-import


def sanctioned():
    return time.monotonic()  # repro: disable=REP002
