"""REP001 / REP006 fixture: every violation here is intentional.

The rule tests lint this file with a fixture lock hierarchy (see
``tests/devtools/test_rules.py``) registering ``Outer._lock`` at rank 10
(RLock) and ``Inner._lock`` at rank 20 (non-reentrant Lock), plus a
``_mismatched_lock`` module global registered with the wrong kind.
"""

import queue
import threading

_rogue_lock = threading.Lock()  # REP006: not in the hierarchy table

_mismatched_lock = threading.RLock()  # REP006: registered as a plain Lock

work_queue = queue.Queue()


class Inner:
    def __init__(self):
        self._lock = threading.Lock()

    def leaf(self):
        with self._lock:
            pass


class Outer:
    def __init__(self):
        self._lock = threading.RLock()
        self.inner = Inner()

    def inverted(self):
        with self.inner._lock:  # rank 20 first...
            with self._lock:  # REP001: rank 10 while holding rank 20
                pass

    def blocking_under_lock(self, thread):
        with self._lock:
            thread.join()  # REP001: blocking call under a lock
            work_queue.get()  # REP001: queue wait under a lock

    def transitive(self):
        with self.inner._lock:
            self.helper()  # REP001: helper() acquires rank 10

    def helper(self):
        with self._lock:
            pass

    def reenter_plain_lock(self):
        with self.inner._lock:
            with self.inner._lock:  # REP001: non-reentrant re-acquire
                pass

    def well_ordered(self):  # no findings: descending list order
        with self._lock:
            with self.inner._lock:
                pass
