"""The tier-1 lint gate: ``src/repro`` must produce zero findings.

Also pins the CLI surface (exit codes, rule selection, ``--locks``) and
the promise in :mod:`repro.serve.service` that its prose lock-order
section mirrors the machine-readable table.
"""

import io
import os
import subprocess
import sys

import pytest

import repro
import repro.serve.service
from repro import cli
from repro.devtools import (
    LOCK_HIERARCHY,
    render_lock_table,
    run_lint,
    run_rules,
)
from repro.devtools.project import Project

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

pytestmark = pytest.mark.lint


class TestZeroFindingsGate:
    def test_package_tree_is_clean(self):
        findings = run_rules(Project.load(PACKAGE_ROOT))
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_run_lint_exit_code_and_summary(self):
        out = io.StringIO()
        assert run_lint(PACKAGE_ROOT, out=out) == 0
        assert "repro lint: clean" in out.getvalue()

    def test_run_lint_reports_fixture_findings(self):
        out = io.StringIO()
        assert run_lint(FIXTURES, out=out) == 1
        text = out.getvalue()
        assert "finding(s)" in text
        assert "bad_wallclock.py" in text  # default config still flags these


class TestCLI:
    def test_lint_target_clean(self, capsys):
        assert cli.main(["lint"]) == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_lint_target_findings_exit_one(self, capsys):
        assert cli.main(["lint", "--path", FIXTURES]) == 1
        assert "REP002" in capsys.readouterr().out

    def test_rule_selection(self, capsys):
        assert cli.main(["lint", "--rules", "REP002"]) == 0
        out = capsys.readouterr().out
        assert "rules REP002" in out and "REP001" not in out

    def test_locks_table(self, capsys):
        assert cli.main(["lint", "--locks"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == render_lock_table().strip()
        assert "_scatter_plan_lock" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.dirname(PACKAGE_ROOT)})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "repro lint: clean" in proc.stdout


class TestLockTableDocstringSync:
    """service.py promises its prose is generated from LOCK_HIERARCHY."""

    def test_every_registered_lock_is_documented(self):
        doc = repro.serve.service.__doc__
        for spec in LOCK_HIERARCHY:
            label = f"{spec.owner}.{spec.name}" if spec.owner else spec.name
            assert label in doc, f"{spec.qualified} missing from the prose"
            assert f"(rank {spec.rank})" in doc, (
                f"rank {spec.rank} missing from the prose")

    def test_ranks_are_unique_and_sorted_by_level(self):
        ranks = [spec.rank for spec in LOCK_HIERARCHY]
        assert len(set(ranks)) == len(ranks)
        levels = [spec.level for spec in LOCK_HIERARCHY]
        assert levels == sorted(levels)

    def test_rendered_table_lists_every_rank(self):
        table = render_lock_table()
        for spec in LOCK_HIERARCHY:
            assert spec.qualified in table
