"""Runtime lock-order guard: the dynamic counterpart of lint rule REP001."""

import threading

import pytest

from repro.devtools import LockOrderGuard
from repro.devtools.runtime import LockOrderViolation, guard_serving_stack


class Holder:
    def __init__(self, reentrant=False):
        self._lock = threading.RLock() if reentrant else threading.Lock()


def guarded_pair(low_rank=10, high_rank=50, reentrant=False):
    guard = LockOrderGuard()
    low, high = Holder(reentrant), Holder(reentrant)
    guard.wrap_instance(low, low_rank, name="low._lock")
    guard.wrap_instance(high, high_rank, name="high._lock")
    return guard, low, high


class TestGuardedOrdering:
    def test_descending_acquisition_passes(self):
        guard, low, high = guarded_pair()
        with low._lock:
            with high._lock:
                assert guard.held_ranks() == [(10, "low._lock"),
                                              (50, "high._lock")]
        assert guard.held_ranks() == []

    def test_inversion_raises(self):
        guard, low, high = guarded_pair()
        with high._lock:
            with pytest.raises(LockOrderViolation, match="rank 10"):
                low._lock.acquire()
        assert guard.held_ranks() == []

    def test_equal_rank_distinct_lock_raises(self):
        guard = LockOrderGuard()
        a, b = Holder(), Holder()
        guard.wrap_instance(a, 30, name="a._lock")
        guard.wrap_instance(b, 30, name="b._lock")
        with a._lock:
            with pytest.raises(LockOrderViolation):
                b._lock.acquire()

    def test_rlock_reentry_allowed(self):
        guard, low, _ = guarded_pair(reentrant=True)
        with low._lock:
            with low._lock:  # same guarded RLock: fine
                assert len(guard.held_ranks()) == 2

    def test_plain_lock_reentry_raises_instead_of_deadlocking(self):
        _, low, _ = guarded_pair(reentrant=False)
        with low._lock:
            with pytest.raises(LockOrderViolation, match="self-deadlock"):
                low._lock.acquire()

    def test_held_stacks_are_per_thread(self):
        guard, low, high = guarded_pair()
        errors = []
        with high._lock:  # main thread holds rank 50

            def other():
                try:
                    with low._lock:  # fresh thread, empty stack: fine
                        pass
                except BaseException as err:  # pragma: no cover
                    errors.append(err)

            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert errors == []


class TestWrapping:
    def test_unwrap_restores_raw_locks(self):
        holder = Holder()
        raw = holder._lock
        guard = LockOrderGuard()
        guard.wrap_instance(holder, 10, name="h")
        assert holder._lock is not raw
        guard.unwrap()
        assert holder._lock is raw

    def test_context_manager_unwraps(self):
        holder = Holder()
        raw = holder._lock
        with LockOrderGuard() as guard:
            guard.wrap_instance(holder, 10, name="h")
        assert holder._lock is raw

    def test_double_wrap_is_idempotent(self):
        holder = Holder()
        guard = LockOrderGuard()
        first = guard.wrap_instance(holder, 10, name="h")
        assert guard.wrap_instance(holder, 10, name="h") is first
        guard.unwrap()
        assert not hasattr(holder._lock, "rank")

    def test_wrap_module_global(self):
        from repro.nn import segment

        raw = segment._scatter_plan_lock
        with LockOrderGuard() as guard:
            guard.wrap_module_global(segment, "_scatter_plan_lock", 55)
            assert segment._scatter_plan_lock.rank == 55
        assert segment._scatter_plan_lock is raw


class TestGuardServingStack:
    def test_wraps_service_and_module_locks_with_table_ranks(self):
        from repro.nn import segment
        from repro.serve import InferenceService

        def factory():  # never called: no requests issued
            raise AssertionError

        service = InferenceService(factory, num_tasks=1)
        with guard_serving_stack(service=service):
            assert service._lock.rank == 30
            assert service.models._lock.rank == 50
            assert service.batch_cache._lock.rank == 51
            assert segment._scatter_plan_lock.rank == 55
            # The documented order works end to end...
            with service._lock:
                with service.models._lock:
                    pass
            # ...and the inversion is caught.
            with service.models._lock:
                with pytest.raises(LockOrderViolation):
                    service._lock.acquire()
        assert not hasattr(service._lock, "rank")  # restored
