"""Each lint rule must catch its fixture's planted violations.

The fixtures under ``fixtures/`` violate one rule each on purpose; the
tests lint them with a stripped-down :class:`LintConfig` whose lock
hierarchy registers the fixture locks.  A rule that stops firing on its
fixture is broken, however clean ``src/repro`` looks.
"""

import json
import os

import pytest

from repro.devtools import LockSpec, load_baseline, run_rules
from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding, parse_pragmas
from repro.devtools.project import Project
from repro.devtools.registry import RULES, rule

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

FIXTURE_HIERARCHY = (
    LockSpec(10, 1, "bad_lock_order.py", "Outer", "_lock", "RLock",
             "outer fixture lock"),
    LockSpec(20, 2, "bad_lock_order.py", "Inner", "_lock", "Lock",
             "inner fixture lock"),
    LockSpec(30, 3, "bad_lock_order.py", None, "_mismatched_lock", "Lock",
             "registered-with-wrong-kind fixture lock"),
    LockSpec(40, 4, "bad_globals.py", None, "_cache_lock", "Lock",
             "fixture cache guard", guards=("_CACHE",)),
)


def fixture_project() -> Project:
    return Project.load(FIXTURES, package="fixtures")


def fixture_config(**overrides) -> LintConfig:
    defaults = dict(
        lock_hierarchy=FIXTURE_HIERARCHY,
        wallclock_allowlist=frozenset(),
        globals_allowlist=frozenset(),
        autograd_modules=("bad_autograd.py", "bad_opreg.py"),
        ops_module="bad_opreg.py",
        parity_fast_module="bad_parity.py",
        parity_reference_module="parity_reference.py",  # absent on purpose
        parity_scatter_functions=("scatter_add",),
        parity_suite_files=(),
        attr_bindings={"inner": "Inner"},
        dtype_hot_modules=("bad_dtype.py",),
    )
    defaults.update(overrides)
    return LintConfig(**defaults)


def run(rule_id, config=None, baseline=None):
    return run_rules(fixture_project(), config or fixture_config(),
                     rule_ids=[rule_id], baseline=baseline)


def messages(findings, filename):
    return [f.message for f in findings if f.file == filename]


class TestREP001LockOrder:
    def test_fixture_violations_caught(self):
        found = messages(run("REP001"), "bad_lock_order.py")
        assert len(found) == 5
        assert any("violates the lock hierarchy" in m and "rank 10" in m
                   for m in found)
        assert any("blocking call thread.join()" in m for m in found)
        assert any("blocking call work_queue.get()" in m for m in found)
        assert any("call to helper() may acquire" in m for m in found)
        assert any("self-deadlock" in m for m in found)

    def test_well_ordered_function_is_clean(self):
        project = fixture_project()
        info = project.get("bad_lock_order.py")
        bad_lines = {f.line for f in run("REP001")}
        source_lines = info.source.splitlines()
        start = next(i for i, line in enumerate(source_lines, start=1)
                     if "def well_ordered" in line)
        assert not any(line > start for line in bad_lines)


class TestREP002Wallclock:
    def test_fixture_violations_caught(self):
        found = run("REP002")
        assert [f.file for f in found] == ["bad_wallclock.py"] * 3
        assert "time.time()" in found[0].message
        assert "time.sleep()" in found[1].message
        assert "pc()" in found[2].message  # aliased from-import resolved

    def test_pragma_suppresses_the_sanctioned_line(self):
        source = fixture_project().get("bad_wallclock.py").source
        pragma_line = next(i for i, line in enumerate(
            source.splitlines(), start=1) if "disable=REP002" in line)
        assert pragma_line not in {f.line for f in run("REP002")}

    def test_allowlisted_file_is_exempt(self):
        config = fixture_config(
            wallclock_allowlist=frozenset({"bad_wallclock.py"}))
        assert run("REP002", config=config) == []


class TestREP003MutableGlobals:
    def test_fixture_violations_caught(self):
        found = messages(run("REP003"), "bad_globals.py")
        assert len(found) == 3
        assert sum("'_CACHE'" in m for m in found) == 1  # guarded one passes
        assert sum("'_COUNTERS'" in m for m in found) == 2
        assert any("rebinding via global" in m for m in found)

    def test_guarded_and_shadowed_mutations_pass(self):
        source = fixture_project().get("bad_globals.py").source
        bad_lines = {f.line for f in run("REP003")}
        for needle in ("fine: registered guard held", "local shadow: fine"):
            line = next(i for i, text in enumerate(source.splitlines(),
                                                   start=1) if needle in text)
            assert line not in bad_lines

    def test_allowlist_accepts_the_mutation(self):
        config = fixture_config(globals_allowlist=frozenset({
            ("bad_globals.py", "_CACHE"), ("bad_globals.py", "_COUNTERS")}))
        assert run("REP003", config=config) == []


class TestREP004Autograd:
    def test_fixture_violations_caught(self):
        found = messages(run("REP004"), "bad_autograd.py")
        assert len(found) == 3
        assert any("accumulates into 'y'" in m for m in found)
        assert sum("no _backward" in m for m in found) == 2

    def test_registry_impl_violations_caught(self):
        found = messages(run("REP004"), "bad_opreg.py")
        assert len(found) == 3
        assert any("'gather_segments'" in m and "not a named function" in m
                   for m in found)
        assert any("'scatter_add'" in m and "resolves to elsewhere.py" in m
                   for m in found)
        assert any("'phantom_op' is not defined in bad_autograd.py" in m
                   for m in found)

    def test_complete_op_is_clean(self):
        found = run("REP004")
        assert not any("good_add" in f.message for f in found)
        # non-differentiable registrations are exempt from impl checks
        assert not any("'histogram'" in f.message for f in found)


class TestREP005BackendParity:
    def test_fast_module_violations_caught(self):
        found = messages(run("REP005"), "bad_parity.py")
        assert len(found) == 4
        assert any("'segment_mean'" in m and "not registered" in m
                   for m in found)
        assert any("inline backend branch comparing against 'fast'" in m
                   for m in found)
        assert sum("scatter outside the legacy reference ops" in m
                   for m in found) == 2  # add.at + maximum.at hot paths

    def test_missing_reference_backend_caught(self):
        found = messages(run("REP005"), "bad_opreg.py")
        assert len(found) == 2
        assert all("no reference-backend implementation" in m for m in found)
        assert any("'segment_max'" in m for m in found)
        assert any("'gather_segments'" in m for m in found)

    def test_scatter_add_fallback_is_allowed(self):
        source = fixture_project().get("bad_parity.py").source
        line = next(i for i, text in enumerate(source.splitlines(), start=1)
                    if "documented fallback" in text)
        assert line not in {f.line for f in run("REP005")}

    def test_registered_exports_are_clean(self):
        found = run("REP005")
        for name in ("'segment_sum'", "'scatter_add'"):
            assert not any(name in m and "not registered" in m
                           for m in (f.message for f in found))


class TestREP006LockCensus:
    def test_unregistered_and_mismatched_locks_caught(self):
        found = messages(run("REP006"), "bad_lock_order.py")
        assert len(found) == 2
        assert any("_rogue_lock" in m and "not registered" in m
                   for m in found)
        assert any("_mismatched_lock" in m
                   and "registered as Lock but created as threading.RLock()"
                   in m for m in found)

    def test_stale_hierarchy_entry_caught(self):
        ghost = LockSpec(90, 5, "bad_globals.py", None, "_ghost_lock",
                         "Lock", "entry with no creation site")
        config = fixture_config(lock_hierarchy=FIXTURE_HIERARCHY + (ghost,))
        found = messages(run("REP006", config=config), "bad_globals.py")
        assert any("stale hierarchy entry" in m and "_ghost_lock" in m
                   for m in found)


class TestREP007Dtype:
    def test_fixture_violations_caught(self):
        found = messages(run("REP007"), "bad_dtype.py")
        assert len(found) == 6
        assert sum("hard-coded float64" in m for m in found) == 5
        assert any("np.zeros" in m and "hard-coded" in m for m in found)
        assert any(".astype" in m for m in found)
        assert any("np.empty" in m for m in found)  # aliased from-import
        assert any("np.ones" in m for m in found)   # "float64" string
        assert sum("dtype-less" in m for m in found) == 1

    def test_explicit_dtypes_are_clean(self):
        source = fixture_project().get("bad_dtype.py").source
        bad_lines = {f.line for f in run("REP007")}
        for needle in ("caller-provided dtype", "non-float payload",
                       "explicit integer dtype"):
            line = next(i for i, text in enumerate(source.splitlines(),
                                                   start=1) if needle in text)
            assert line not in bad_lines

    def test_pragma_suppresses_the_sanctioned_line(self):
        source = fixture_project().get("bad_dtype.py").source
        pragma_line = next(i for i, line in enumerate(
            source.splitlines(), start=1) if "disable=REP007" in line)
        assert pragma_line not in {f.line for f in run("REP007")}

    def test_only_hot_modules_are_checked(self):
        config = fixture_config(dtype_hot_modules=())
        assert run("REP007", config=config) == []


class TestREP008OpRegistry:
    def test_fixture_violations_caught(self):
        found = messages(run("REP008"), "bad_opreg.py")
        assert len(found) == 8
        assert any("backend 'warp' falls back to undeclared 'quantum'" in m
                   for m in found)
        assert any("non-literal op name" in m for m in found)
        assert any("op 'segment_sum' registered twice" in m for m in found)
        assert any("'segment_max' registered without an adjoint" in m
                   for m in found)
        assert any("'segment_max' registered without a samples generator" in m
                   for m in found)
        assert any("'segment_max' declares a single backend with no waiver"
                   in m for m in found)
        assert any("'gather_segments' registered for undeclared backend "
                   "'quantum'" in m for m in found)
        assert any("use_backend('cuda') names an undeclared backend" in m
                   for m in found)

    def test_waivered_single_backend_is_clean(self):
        found = run("REP008")
        assert not any("'histogram'" in f.message for f in found)

    def test_declared_use_backend_literal_is_clean(self):
        source = fixture_project().get("bad_opreg.py").source
        line = next(i for i, text in enumerate(source.splitlines(), start=1)
                    if 'use_backend("fast")' in text)
        assert line not in {f.line for f in run("REP008")}

    def test_absent_ops_module_skips_the_rule(self):
        config = fixture_config(ops_module="absent.py")
        assert run("REP008", config=config) == []


class TestREP008CompiledFill:
    CONFIG = dict(compiled_registration_module="bad_compiled_reg.py",
                  compiled_impl_prefix="nn/compiled/")

    def test_fixture_violations_caught(self):
        config = fixture_config(**self.CONFIG)
        found = messages(run("REP008", config=config), "bad_compiled_reg.py")
        assert len(found) == 3
        assert any("register_backend('compiled', impls=...) without a "
                   "fallback declaration" in m for m in found)
        assert any("'compiled' impl for op 'segment_sum' resolves to "
                   "bad_parity.py" in m for m in found)
        assert any("'compiled' impl for op 'segment_mean' resolves to "
                   "bad_compiled_reg.py" in m for m in found)

    def test_absent_compiled_module_skips_the_fill_checks(self):
        # The default config points at nn/compiled/__init__.py, which the
        # fixture project does not contain — the fill contract is skipped
        # and the planted fixture produces no findings.
        found = messages(run("REP008"), "bad_compiled_reg.py")
        assert found == []

    def test_ops_module_checks_still_run_alongside(self):
        config = fixture_config(**self.CONFIG)
        found = messages(run("REP008", config=config), "bad_opreg.py")
        assert len(found) == 8


class TestSuppressionMachinery:
    def test_baseline_suppresses_by_location(self, tmp_path):
        findings = run("REP002")
        first = findings[0]
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps([
            {"file": first.file, "line": first.line, "rule_id": "REP002"}]))
        remaining = run("REP002", baseline=load_baseline(str(baseline_file)))
        assert first not in remaining
        assert len(remaining) == len(findings) - 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()
        assert load_baseline(None) == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_baseline(str(bad))

    def test_pragma_parsing(self):
        disabled = parse_pragmas(
            "a()  # repro: disable=REP001\n"
            "b()  # repro: disable=REP001, REP002\n"
            "c()  # repro: disable=all\n"
            "d()\n")
        assert disabled == {1: frozenset({"REP001"}),
                            2: frozenset({"REP001", "REP002"}),
                            3: frozenset({"all"})}

    def test_findings_sort_and_render(self):
        finding = Finding("a.py", 3, "REP001", "msg")
        assert finding.render() == "a.py:3: REP001: msg"
        assert finding.baseline_key() == ("a.py", 3, "REP001")


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert sorted(RULES) == ["REP001", "REP002", "REP003", "REP004",
                                 "REP005", "REP006", "REP007", "REP008"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule ids: REP999"):
            run_rules(fixture_project(), fixture_config(),
                      rule_ids=["REP999"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):
            rule("REP001", "impostor")(lambda project, config: [])
