"""Shared fixtures: tiny deterministic datasets, encoders, and RNGs."""

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.graph import Batch, MoleculeGenerator, load_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def molecules():
    """A reusable pool of 30 small molecules."""
    return MoleculeGenerator(num_scaffolds=8, seed=3).generate_many(30)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small labeled classification dataset (bbbp shape)."""
    return load_dataset("bbbp", size=60)


@pytest.fixture(scope="session")
def tiny_regression_dataset():
    return load_dataset("esol", size=60)


@pytest.fixture
def batch(molecules):
    return Batch(molecules[:6])


@pytest.fixture
def encoder():
    return GNNEncoder(conv_type="gin", num_layers=3, emb_dim=16, dropout=0.0, seed=0)


def gradcheck(fn, x_data, eps=1e-6, tol=1e-5):
    """Finite-difference gradient check for a scalar-valued tensor function."""
    from repro.nn import Tensor

    x_data = np.asarray(x_data, dtype=np.float64)
    x = Tensor(x_data, requires_grad=True)
    fn(x).backward()
    analytic = x.grad.copy()
    numeric = np.zeros_like(x_data)
    flat = x_data.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_hi = float(fn(Tensor(x_data)).data.sum())
        flat[i] = orig - eps
        f_lo = float(fn(Tensor(x_data)).data.sum())
        flat[i] = orig
        numeric.ravel()[i] = (f_hi - f_lo) / (2 * eps)
    err = np.abs(analytic - numeric).max()
    assert err < tol, f"gradcheck failed: max abs err {err:.3e}"
    return err
