"""Tests for the pre-trained model zoo (caching, content addressing)."""

import os

import numpy as np
import pytest

from repro.pretrain import get_pretrained


@pytest.fixture
def zoo_dir(tmp_path):
    return str(tmp_path / "zoo")


SMALL = dict(num_layers=2, emb_dim=8, corpus_size=24, epochs=1)


class TestZoo:
    def test_returns_encoder_with_config(self, zoo_dir):
        enc = get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        assert enc.num_layers == 2 and enc.emb_dim == 8 and enc.conv_type == "gin"

    def test_checkpoint_cached_on_disk(self, zoo_dir):
        get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        files = os.listdir(zoo_dir)
        assert any(f.endswith(".npz") for f in files)
        assert any(f.endswith(".json") for f in files)

    def test_cache_hit_returns_identical_weights(self, zoo_dir):
        a = get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        b = get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_different_methods_different_checkpoints(self, zoo_dir):
        a = get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        b = get_pretrained("attrmasking", "gin", cache_dir=zoo_dir, **SMALL)
        diff = any(
            not np.array_equal(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
        )
        assert diff

    def test_config_change_invalidates_cache(self, zoo_dir):
        get_pretrained("edgepred", "gin", cache_dir=zoo_dir, **SMALL)
        count_before = len(os.listdir(zoo_dir))
        get_pretrained("edgepred", "gin", cache_dir=zoo_dir,
                       num_layers=2, emb_dim=8, corpus_size=24, epochs=2)
        assert len(os.listdir(zoo_dir)) > count_before

    def test_unknown_method_raises(self, zoo_dir):
        with pytest.raises(KeyError):
            get_pretrained("bert", cache_dir=zoo_dir)

    def test_pretraining_changes_weights(self, zoo_dir):
        from repro.gnn import GNNEncoder

        trained = get_pretrained("attrmasking", "gin", cache_dir=zoo_dir, **SMALL)
        fresh = GNNEncoder("gin", num_layers=2, emb_dim=8, seed=0)
        diff = any(
            not np.allclose(pt.data, pf.data)
            for (_, pt), (_, pf) in zip(trained.named_parameters(), fresh.named_parameters())
        )
        assert diff

    def test_mgssl_uses_smaller_corpus(self, zoo_dir):
        import json

        get_pretrained("mgssl", "gin", cache_dir=zoo_dir, **SMALL)
        meta_file = [f for f in os.listdir(zoo_dir) if f.endswith(".json")][0]
        with open(os.path.join(zoo_dir, meta_file)) as fh:
            meta = json.load(fh)
        assert meta["corpus_size"] == SMALL["corpus_size"] // 2
