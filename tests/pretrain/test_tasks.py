"""Tests for the 10 SSL pre-training tasks: losses, gradients, learning."""

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.graph import zinc_corpus
from repro.nn import Adam
from repro.pretrain import (
    PRETRAIN_CATEGORIES,
    PRETRAIN_METHODS,
    mask_batch_atoms,
    mean_pool_graphs,
    normalize_rows,
    nt_xent_loss,
    pretrain,
)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def corpus():
    return zinc_corpus(size=24, seed=7)


def fresh_encoder():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


class TestAllTasks:
    @pytest.mark.parametrize("name", list(PRETRAIN_METHODS))
    def test_loss_is_finite_scalar(self, name, corpus):
        task = PRETRAIN_METHODS[name](fresh_encoder(), seed=0)
        loss = task.loss(corpus[:8], np.random.default_rng(0))
        assert loss.data.size == 1 and np.isfinite(loss.item())

    @pytest.mark.parametrize("name", list(PRETRAIN_METHODS))
    def test_gradient_reaches_encoder(self, name, corpus):
        task = PRETRAIN_METHODS[name](fresh_encoder(), seed=0)
        task.loss(corpus[:8], np.random.default_rng(0)).backward()
        grads = [p.grad for p in task.encoder.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads), name

    @pytest.mark.parametrize("name", list(PRETRAIN_METHODS))
    def test_loss_decreases_with_training(self, name, corpus):
        # SSL objectives resample masks/views each batch, so epoch losses are
        # noisy; compare the loss on a FIXED (graphs, rng) probe before vs
        # after training for a deterministic improvement check.
        task = PRETRAIN_METHODS[name](fresh_encoder(), seed=0)
        probe = corpus[:12]
        before = task.loss(probe, np.random.default_rng(123)).item()
        history = pretrain(task, corpus, epochs=10, batch_size=12, lr=3e-3, seed=0)
        assert len(history) == 10
        after = task.loss(probe, np.random.default_rng(123)).item()
        assert after < before + 1e-6, (name, before, after)

    @pytest.mark.parametrize("name", list(PRETRAIN_METHODS))
    def test_deterministic_given_seed(self, name, corpus):
        a = PRETRAIN_METHODS[name](fresh_encoder(), seed=0)
        b = PRETRAIN_METHODS[name](fresh_encoder(), seed=0)
        la = a.loss(corpus[:6], np.random.default_rng(3)).item()
        lb = b.loss(corpus[:6], np.random.default_rng(3)).item()
        assert la == pytest.approx(lb)

    def test_categories_cover_paper_taxonomy(self):
        assert set(PRETRAIN_CATEGORIES.values()) == {"AE", "AM", "MCM", "CP", "CL"}
        assert PRETRAIN_CATEGORIES["contextpred"] == "CP"
        assert PRETRAIN_CATEGORIES["mgssl"] == "AM"
        assert PRETRAIN_CATEGORIES["molebert"] == "MCM"
        assert PRETRAIN_CATEGORIES["graphmae"] == "AE"
        assert PRETRAIN_CATEGORIES["graphcl"] == "CL"

    def test_exactly_ten_methods(self):
        assert len(PRETRAIN_METHODS) == 10


class TestBuildingBlocks:
    def test_normalize_rows_unit_norm(self, rng):
        z = normalize_rows(Tensor(rng.normal(size=(5, 4))))
        assert np.allclose(np.linalg.norm(z.data, axis=1), 1.0)

    def test_nt_xent_identical_views_low_loss(self, rng):
        z = Tensor(rng.normal(size=(6, 8)))
        loss_same = nt_xent_loss(z, z, temperature=0.1).item()
        other = Tensor(rng.normal(size=(6, 8)))
        loss_diff = nt_xent_loss(z, other, temperature=0.1).item()
        assert loss_same < loss_diff

    def test_nt_xent_symmetric_gradient(self, rng):
        z1 = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        z2 = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        nt_xent_loss(z1, z2).backward()
        assert z1.grad is not None and z2.grad is not None

    def test_mask_batch_atoms_masks_at_least_one(self, corpus):
        from repro.graph import Batch, MASK_ATOM_ID

        batch = Batch(corpus[:2])
        original = batch.x.copy()
        masked = mask_batch_atoms(batch, np.random.default_rng(0), mask_rate=0.01)
        assert len(masked) >= 1
        assert np.all(batch.x[masked, 0] == MASK_ATOM_ID)
        # Original graphs untouched (Batch.x was copied on write).
        assert np.array_equal(original[masked, 1], batch.x[masked, 1])

    def test_mean_pool_shape(self, corpus):
        from repro.graph import Batch

        batch = Batch(corpus[:3])
        enc = fresh_encoder()
        pooled = mean_pool_graphs(enc(batch)[-1], batch)
        assert pooled.shape == (3, 12)


class TestSpecificBehaviours:
    def test_contextpred_context_ring_excludes_center(self, corpus):
        from repro.graph import Batch
        from repro.pretrain import ContextPredTask

        batch = Batch(corpus[:3])
        centers = batch.node_offsets[:-1].copy()
        nodes, owners = ContextPredTask._context_ring(batch, centers)
        for node, owner in zip(nodes, owners):
            assert node != centers[owner]

    def test_mgssl_bfs_order_starts_at_root(self, corpus):
        from repro.pretrain import MGSSLTask

        order = MGSSLTask._bfs_order(corpus[0], root=2)
        assert order[0] == 2
        assert sorted(order) == list(range(corpus[0].num_nodes))

    def test_simgrace_restores_weights_after_perturbation(self, corpus):
        from repro.pretrain import SimGRACETask

        task = SimGRACETask(fresh_encoder(), seed=0)
        before = [p.data.copy() for p in task.encoder.parameters()]
        task.loss(corpus[:6], np.random.default_rng(0))
        after = [p.data for p in task.encoder.parameters()]
        for b, a in zip(before, after):
            assert np.array_equal(b, a)

    def test_molebert_codes_context_dependent(self, corpus):
        from repro.graph import Batch
        from repro.pretrain import MoleBERTTask

        task = MoleBERTTask(fresh_encoder(), seed=0, codebook_size=16)
        batch = Batch(corpus[:6])
        codes = task._tokenize(batch)
        assert codes.shape == (batch.num_nodes,)
        assert codes.max() < 16
        # Context-awareness: more distinct codes than raw atom types on
        # carbon-dominated graphs.
        carbons = batch.x[:, 0] == 0
        if carbons.sum() > 4:
            assert len(np.unique(codes[carbons])) > 1

    def test_molebert_tokenizer_frozen(self, corpus):
        from repro.pretrain import MoleBERTTask

        task = MoleBERTTask(fresh_encoder(), seed=0)
        assert all(not p.requires_grad for p in task.tokenizer.parameters())

    def test_graphmae_remask_token_trainable(self, corpus):
        from repro.pretrain import GraphMAETask

        task = GraphMAETask(fresh_encoder(), seed=0)
        task.loss(corpus[:6], np.random.default_rng(0)).backward()
        assert task.remask_token.grad is not None

    def test_edgepred_negatives_within_graph(self, corpus):
        # Structural property asserted implicitly; here just run the loss on
        # graphs of very different sizes to exercise the offset arithmetic.
        from repro.pretrain import EdgePredTask

        task = EdgePredTask(fresh_encoder(), seed=0)
        loss = task.loss(corpus[:10], np.random.default_rng(0))
        assert np.isfinite(loss.item())
