"""Failure-injection and edge-case robustness tests across modules."""

import numpy as np
import pytest

from repro.finetune import finetune
from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import Batch, Graph, load_dataset
from repro.nn import Adam, Tensor, clip_grad_norm
from repro.nn.functional import binary_cross_entropy_with_logits


def single_atom_graph(y=None):
    return Graph(
        x=np.zeros((1, 2), dtype=np.int64),
        edge_index=np.zeros((2, 0), dtype=np.int64),
        edge_attr=np.zeros((0, 2), dtype=np.int64),
        y=y,
    )


class TestDegenerateGraphs:
    def test_single_atom_molecule_through_model(self):
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1
        )
        batch = Batch([single_atom_graph(np.array([1.0]))])
        out = model(batch)
        assert out.shape == (1, 1) and np.isfinite(out.data).all()

    def test_mixed_sizes_in_one_batch(self, molecules):
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1,
            fusion="lstm", readout="set2set",
        )
        graphs = [single_atom_graph()] + molecules[:3]
        out = model(Batch(graphs))
        assert out.shape == (4, 1) and np.isfinite(out.data).all()

    @pytest.mark.parametrize("readout", ["sum", "mean", "max", "set2set", "sort", "neural"])
    def test_every_readout_on_singleton_graph(self, readout):
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1,
            readout=readout,
        )
        out = model(Batch([single_atom_graph()]))
        assert np.isfinite(out.data).all()

    def test_all_labels_missing_batch_loss_finite(self):
        graphs = [single_atom_graph(np.array([np.nan])) for _ in range(3)]
        batch = Batch(graphs)
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 1)))
        loss = binary_cross_entropy_with_logits(
            logits, batch.labels_filled(), batch.label_mask().astype(float)
        )
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0)  # nothing to learn from


class TestNumericalRobustness:
    def test_gradient_clipping_tames_exploding_grads(self):
        from repro.nn import Parameter

        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 1e12)
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) <= 1.0 + 1e-9

    def test_bce_survives_huge_logits_through_training_step(self):
        from repro.nn import Parameter

        w = Parameter(np.array([1000.0]))
        opt = Adam([w], lr=1e-3)
        logits = w * Tensor(np.ones(4))
        loss = binary_cross_entropy_with_logits(logits, np.zeros(4))
        loss.backward()
        opt.step()
        assert np.isfinite(w.data).all()

    def test_softmax_of_identical_values_uniform(self):
        from repro.nn.functional import softmax

        out = softmax(Tensor(np.full((2, 5), 7.0))).data
        assert np.allclose(out, 0.2)


class TestCheckpointCorruption:
    def test_truncated_state_dict_rejected(self, tmp_path, rng):
        from repro.nn import load_state_dict, save_state_dict

        enc = GNNEncoder("gin", 2, 8, seed=0)
        state = enc.state_dict()
        keys = list(state)
        del state[keys[0]]
        path = str(tmp_path / "bad.npz")
        save_state_dict(state, path)
        fresh = GNNEncoder("gin", 2, 8, seed=1)
        with pytest.raises(KeyError):
            fresh.load_state_dict(load_state_dict(path))

    def test_wrong_architecture_checkpoint_rejected(self, tmp_path):
        small = GNNEncoder("gin", 2, 8, seed=0)
        big = GNNEncoder("gin", 2, 16, seed=0)
        with pytest.raises((ValueError, KeyError)):
            big.load_state_dict(small.state_dict())

    def test_non_strict_load_partially_applies(self):
        a = GNNEncoder("gin", 2, 8, seed=0)
        b = GNNEncoder("gin", 2, 8, seed=1)
        state = a.state_dict()
        removed = list(state)[-1]
        del state[removed]
        b.load_state_dict(state, strict=False)
        assert np.allclose(
            b.atom_embedding.weight.data, a.atom_embedding.weight.data
        )


class TestTrainingLoopEdges:
    def test_finetune_with_single_epoch(self, tiny_dataset):
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1
        )
        res = finetune(model, tiny_dataset, epochs=1, patience=1, seed=0)
        assert len(res.train_losses) == 1

    def test_zero_patience_stops_after_first_plateau(self, tiny_dataset):
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1
        )
        res = finetune(model, tiny_dataset, epochs=30, patience=1, seed=0)
        assert len(res.train_losses) < 30

    def test_dataset_smaller_than_batch(self):
        ds = load_dataset("bbbp", size=40)
        model = GraphPredictionModel(
            GNNEncoder("gin", 2, 8, dropout=0.0, seed=0), num_tasks=1
        )
        res = finetune(model, ds, epochs=2, patience=2, batch_size=512, seed=0)
        assert np.isfinite(res.test_score)
