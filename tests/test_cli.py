"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table6"])
        assert args.tier == "bench" and args.datasets is None

    def test_tier_choices(self):
        args = build_parser().parse_args(["table7", "--tier", "smoke"])
        assert args.tier == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table7", "--tier", "gpu"])

    def test_dataset_restriction(self):
        args = build_parser().parse_args(["table9", "--datasets", "bbbp", "bace"])
        assert args.datasets == ["bbbp", "bace"]

    def test_serving_targets_accepted(self):
        args = build_parser().parse_args(["score"])
        assert args.target == "score" and args.specs == 6
        args = build_parser().parse_args(
            ["serve", "--specs", "3", "--size", "80", "--search-epochs", "1"])
        assert args.target == "serve"
        assert (args.specs, args.size, args.search_epochs) == (3, 80, 1)

    def test_route_target_accepted(self):
        args = build_parser().parse_args(["route"])
        assert args.target == "route"
        assert (args.requests, args.max_batch_size, args.max_delay) == (64, 16, 4)
        args = build_parser().parse_args(
            ["route", "--requests", "12", "--max-batch-size", "4",
             "--max-delay", "2"])
        assert (args.requests, args.max_batch_size, args.max_delay) == (12, 4, 2)


class TestExecution:
    def test_space_target(self, capsys):
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert "10,206" in out

    def test_table7_smoke_restricted(self, capsys):
        code = main(["table7", "--tier", "smoke", "--datasets", "bbbp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "s2pgnn" in out
        assert "bbbp" in out

    def test_table11_smoke_restricted(self, capsys):
        code = main(["table11", "--tier", "smoke", "--datasets", "bbbp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seconds per epoch" in out

    def test_score_target(self, capsys):
        code = main(["score", "--size", "60", "--specs", "2",
                     "--search-epochs", "1", "--emb-dim", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scored 3 specs" in out
        assert "derived" in out
        assert "cache stats" in out

    def test_serve_target_reports_request_throughput(self, capsys):
        code = main(["serve", "--size", "60", "--specs", "1",
                     "--search-epochs", "1", "--emb-dim", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "requests/s" in out

    def test_route_target_reports_dynamic_batching(self, capsys):
        code = main(["route", "--size", "60", "--requests", "12",
                     "--search-epochs", "1", "--emb-dim", "16",
                     "--max-batch-size", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "routed 12 single-graph requests" in out
        assert "micro-batches" in out
        assert "dynamic batching speedup" in out
