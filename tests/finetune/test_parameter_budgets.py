"""Parameter-budget checks against the paper's stated fractions.

Paper Sec. IV-C2: Last-k with k in {1,2,3} tunes roughly 20%-60% of the
5-layer model's parameters; Adapter with m in {2,4,8} tunes only ~1.3%-5.2%
(at d=300).  Our widths differ, but the *ordering* and rough bands must
hold: budget grows with k and with m, FE tunes the least, vanilla the most.
"""

import numpy as np
import pytest

from repro.finetune import (
    AdapterFineTune,
    FeatureExtractorFineTune,
    LastKFineTune,
    VanillaFineTune,
)
from repro.gnn import GNNEncoder, GraphPredictionModel


def tunable_fraction(strategy, layers=5, dim=64):
    encoder = GNNEncoder("gin", num_layers=layers, emb_dim=dim, dropout=0.0, seed=0)
    model = GraphPredictionModel(encoder, num_tasks=1, seed=0)
    total_encoder = encoder.num_parameters()
    model = strategy.prepare(model)
    trainable = sum(p.size for p in model.parameters() if p.requires_grad)
    return trainable / total_encoder


class TestBudgets:
    def test_ordering_across_strategies(self):
        fe = tunable_fraction(FeatureExtractorFineTune())
        k1 = tunable_fraction(LastKFineTune(1))
        k3 = tunable_fraction(LastKFineTune(3))
        vanilla = tunable_fraction(VanillaFineTune())
        assert fe < k1 < k3 < vanilla

    def test_last_k_band(self):
        """k of 5 layers tunes ~k/5 of the message-passing parameters."""
        fractions = [tunable_fraction(LastKFineTune(k)) for k in (1, 2, 3)]
        assert 0.10 < fractions[0] < 0.45
        assert 0.35 < fractions[2] < 0.80
        assert fractions == sorted(fractions)

    def test_adapter_band(self):
        """Adapters tune a few percent of the encoder, growing with m."""
        fractions = [tunable_fraction(AdapterFineTune(m)) for m in (2, 4, 8)]
        assert fractions == sorted(fractions)
        # head+adapters only: well under half the encoder budget.
        assert fractions[-1] < 0.5
        # and the adapters themselves are tiny: removing the head's share,
        # m=2 stays in the single-digit-percent regime.
        assert fractions[0] < 0.10

    def test_vanilla_tunes_everything(self):
        assert tunable_fraction(VanillaFineTune()) > 1.0  # encoder + head

    def test_feature_extractor_only_new_modules(self):
        frac = tunable_fraction(FeatureExtractorFineTune())
        assert frac < 0.05  # just the linear head (fusion/readout default are parameter-free)
