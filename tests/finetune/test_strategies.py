"""Tests for every fine-tuning strategy (paper Tabs. II, VII, VIII)."""

import numpy as np
import pytest

from repro.finetune import (
    AdapterFineTune,
    BSSFineTune,
    DELTAFineTune,
    FeatureExtractorFineTune,
    GTOTFineTune,
    L2SPFineTune,
    LastKFineTune,
    STRATEGY_REGISTRY,
    StochNormFineTune,
    VanillaFineTune,
    bss_penalty,
    finetune,
    sinkhorn_plan,
)
from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import Batch
from repro.nn import StochNorm1d, Tensor
from tests.conftest import gradcheck


def make_model(seed=0, layers=3, dim=12):
    enc = GNNEncoder("gin", num_layers=layers, emb_dim=dim, dropout=0.0, seed=seed)
    return GraphPredictionModel(enc, num_tasks=1, seed=seed)


ALL_STRATEGIES = [
    VanillaFineTune(),
    L2SPFineTune(),
    DELTAFineTune(),
    BSSFineTune(),
    StochNormFineTune(),
    GTOTFineTune(),
    FeatureExtractorFineTune(),
    LastKFineTune(2),
    AdapterFineTune(4),
]


class TestAllStrategiesRun:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_finetune_completes(self, strategy, tiny_dataset):
        res = finetune(make_model(), tiny_dataset, strategy=strategy,
                       epochs=2, patience=2, seed=0)
        assert np.isfinite(res.test_score)
        assert res.strategy == strategy.name

    def test_registry_contents(self):
        assert set(STRATEGY_REGISTRY) == {
            "vanilla", "l2sp", "delta", "bss", "stochnorm", "gtot", "feature_extractor",
        }


class TestFreezingStrategies:
    def test_feature_extractor_freezes_encoder(self):
        model = FeatureExtractorFineTune().prepare(make_model())
        assert all(not p.requires_grad for p in model.encoder.parameters())
        assert model.head.weight.requires_grad

    def test_last_k_freezes_early_layers(self):
        model = LastKFineTune(1).prepare(make_model(layers=3))
        assert all(not p.requires_grad for p in model.encoder.convs[0].parameters())
        assert all(not p.requires_grad for p in model.encoder.convs[1].parameters())
        assert all(p.requires_grad for p in model.encoder.convs[2].parameters())
        assert not model.encoder.atom_embedding.weight.requires_grad

    def test_last_k_equals_layers_tunes_all_convs(self):
        model = LastKFineTune(3).prepare(make_model(layers=3))
        for conv in model.encoder.convs:
            assert all(p.requires_grad for p in conv.parameters())

    def test_last_k_negative_raises(self):
        with pytest.raises(ValueError):
            LastKFineTune(-1)

    def test_trainable_parameters_excludes_frozen(self):
        strategy = FeatureExtractorFineTune()
        model = strategy.prepare(make_model())
        trainable = strategy.trainable_parameters(model)
        encoder_params = set(map(id, model.encoder.parameters()))
        assert all(id(p) not in encoder_params for p in trainable)


class TestAdapter:
    def test_adapter_parameter_budget_small(self):
        model = make_model(dim=12)
        encoder_params = model.encoder.num_parameters()
        model = AdapterFineTune(2).prepare(model)
        trainable = sum(p.size for p in model.parameters() if p.requires_grad)
        assert trainable < encoder_params  # adapters + head << encoder

    def test_adapter_wraps_but_preserves_interface(self, batch):
        model = AdapterFineTune(4).prepare(make_model())
        out = model.forward_full(batch)
        assert out["logits"].shape == (batch.num_graphs, 1)
        assert model.encoder.num_layers == 3 and model.encoder.emb_dim == 12

    def test_adapter_initially_identity(self, batch):
        base = make_model(seed=1)
        base.eval()
        expected = base.forward_full(batch)["node"].data.copy()
        wrapped = AdapterFineTune(4, seed=5).prepare(base)
        wrapped.eval()
        got = wrapped.forward_full(batch)["node"].data
        # Zero-initialized adapters must not perturb the representation.
        assert np.allclose(got, expected)

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            AdapterFineTune(0)


class TestRegularizers:
    def test_l2sp_zero_at_init(self, tiny_dataset):
        strategy = L2SPFineTune(alpha=1.0, beta=0.0)
        model = strategy.prepare(make_model())
        batch = Batch(tiny_dataset.graphs[:4])
        outputs = model.forward_full(batch)
        reg = strategy.regularizer(model, batch, outputs)
        assert reg.item() == pytest.approx(0.0)

    def test_l2sp_grows_with_drift(self, tiny_dataset):
        strategy = L2SPFineTune(alpha=1.0, beta=0.0)
        model = strategy.prepare(make_model())
        for p in model.encoder.parameters():
            p.data += 0.1
        batch = Batch(tiny_dataset.graphs[:4])
        reg = strategy.regularizer(model, batch, model.forward_full(batch))
        assert reg.item() > 0.0

    def test_delta_zero_at_init(self, tiny_dataset):
        strategy = DELTAFineTune(weight=1.0)
        model = make_model()
        model.eval()  # disable dropout so features match exactly
        model = strategy.prepare(model)
        batch = Batch(tiny_dataset.graphs[:4])
        reg = strategy.regularizer(model, batch, model.forward_full(batch))
        assert reg.item() == pytest.approx(0.0, abs=1e-12)

    def test_delta_penalizes_feature_drift(self, tiny_dataset):
        strategy = DELTAFineTune(weight=1.0)
        model = make_model()
        model.eval()
        model = strategy.prepare(model)
        for p in model.encoder.parameters():
            p.data += 0.3
        batch = Batch(tiny_dataset.graphs[:4])
        reg = strategy.regularizer(model, batch, model.forward_full(batch))
        assert reg.item() > 0.0

    def test_stochnorm_swaps_norm_modules(self):
        model = StochNormFineTune().prepare(make_model())
        assert all(isinstance(n, StochNorm1d) for n in model.encoder.norms)

    def test_stochnorm_preserves_statistics(self):
        base = make_model()
        base.encoder.norms[0].set_buffer("running_mean", np.full(12, 3.0))
        model = StochNormFineTune().prepare(base)
        assert np.allclose(model.encoder.norms[0].running_mean, 3.0)


class TestBSS:
    def test_penalty_equals_smallest_singular_values(self, rng):
        x = rng.normal(size=(6, 4))
        s = np.linalg.svd(x, compute_uv=False)
        got = bss_penalty(Tensor(x), k=2).item()
        assert got == pytest.approx(np.sum(np.sort(s)[:2] ** 2))

    def test_penalty_gradcheck(self, rng):
        x = rng.normal(size=(5, 3))
        gradcheck(lambda t: bss_penalty(t, k=1), x, tol=1e-4)

    def test_k_larger_than_rank_handled(self, rng):
        x = rng.normal(size=(3, 2))
        assert np.isfinite(bss_penalty(Tensor(x), k=10).item())


class TestGTOT:
    def test_sinkhorn_marginals_uniform(self, rng):
        n = 5
        cost = rng.random((n, n))
        mask = np.ones((n, n))
        plan = sinkhorn_plan(cost, mask, epsilon=0.5, iterations=100)
        assert np.allclose(plan.sum(axis=1), 1.0 / n, atol=1e-6)
        assert np.allclose(plan.sum(axis=0), 1.0 / n, atol=1e-6)

    def test_sinkhorn_respects_mask(self, rng):
        cost = np.zeros((3, 3))
        mask = np.eye(3)
        plan = sinkhorn_plan(cost, mask, epsilon=0.1, iterations=50)
        off_diagonal = plan[~np.eye(3, dtype=bool)]
        assert np.all(off_diagonal < 1e-8)

    def test_sinkhorn_prefers_cheap_cells(self, rng):
        cost = np.array([[0.0, 10.0], [10.0, 0.0]])
        plan = sinkhorn_plan(cost, np.ones((2, 2)), epsilon=0.1, iterations=100)
        assert plan[0, 0] > plan[0, 1] and plan[1, 1] > plan[1, 0]

    def test_gtot_grows_with_drift(self, tiny_dataset):
        # Entropic smoothing spreads some mass off-diagonal, so the OT value
        # at init is small-but-nonzero; it must grow as representations drift
        # from the pre-trained ones.
        strategy = GTOTFineTune(weight=1.0)
        model = make_model()
        model.eval()
        model = strategy.prepare(model)
        batch = Batch(tiny_dataset.graphs[:4])
        at_init = strategy.regularizer(model, batch, model.forward_full(batch)).item()
        for p in model.encoder.parameters():
            p.data += 0.5
        drifted = strategy.regularizer(model, batch, model.forward_full(batch)).item()
        assert 0.0 <= at_init < drifted

    def test_gtot_gradient_flows(self, tiny_dataset):
        strategy = GTOTFineTune(weight=1.0)
        model = make_model()
        model.eval()
        model = strategy.prepare(model)
        for p in model.encoder.parameters():
            p.data += 0.2
        batch = Batch(tiny_dataset.graphs[:4])
        reg = strategy.regularizer(model, batch, model.forward_full(batch))
        reg.backward()
        grads = [p.grad for p in model.encoder.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)
