"""Tests for the fine-tuning trainer: losses, evaluation, early stopping."""

import numpy as np
import pytest

from repro.finetune import FineTuneStrategy, evaluate_model, finetune, supervised_loss
from repro.gnn import GNNEncoder, GraphPredictionModel
from repro.graph import Batch, load_dataset
from repro.nn import Tensor


def make_model(num_tasks=1, seed=0, layers=2, dim=12):
    enc = GNNEncoder("gin", num_layers=layers, emb_dim=dim, dropout=0.0, seed=seed)
    return GraphPredictionModel(enc, num_tasks=num_tasks, seed=seed)


class TestSupervisedLoss:
    def test_classification_masked(self, tiny_dataset):
        batch = Batch(tiny_dataset.graphs[:8])
        logits = Tensor(np.zeros((8, 1)))
        loss = supervised_loss(logits, batch, "classification")
        assert abs(loss.item() - np.log(2)) < 1e-9

    def test_regression_mse(self, tiny_regression_dataset):
        batch = Batch(tiny_regression_dataset.graphs[:8])
        logits = Tensor(batch.labels_filled())
        assert supervised_loss(logits, batch, "regression").item() == pytest.approx(0.0)

    def test_missing_labels_excluded(self):
        ds = load_dataset("tox21", size=40)
        batch = Batch(ds.graphs[:10])
        big = Tensor(np.where(np.isnan(batch.y), 1e6, 0.0))
        # Huge logits only at missing positions must not explode the loss.
        loss = supervised_loss(big, batch, "classification")
        assert loss.item() < 10.0

    def test_unknown_task_type_raises(self, tiny_dataset):
        batch = Batch(tiny_dataset.graphs[:4])
        with pytest.raises(ValueError):
            supervised_loss(Tensor(np.zeros((4, 1))), batch, "ranking")


class TestEvaluateModel:
    def test_returns_metric_value(self, tiny_dataset):
        model = make_model()
        score = evaluate_model(model, tiny_dataset.graphs[:30], tiny_dataset.info)
        assert 0.0 <= score <= 1.0

    def test_restores_training_mode(self, tiny_dataset):
        model = make_model()
        model.train()
        evaluate_model(model, tiny_dataset.graphs[:20], tiny_dataset.info)
        assert model.training

    def test_fallback_on_single_class(self):
        ds = load_dataset("bbbp", size=40)
        one_class = [g for g in ds.graphs if g.y[0] == 1.0][:5]
        model = make_model()
        with pytest.raises(ValueError):
            evaluate_model(model, one_class, ds.info)
        score = evaluate_model(model, one_class, ds.info, allow_fallback=True)
        assert 0.0 <= score <= 1.0


class TestFinetuneLoop:
    def test_loss_decreases(self, tiny_dataset):
        model = make_model()
        res = finetune(model, tiny_dataset, epochs=6, patience=6, seed=0)
        assert res.train_losses[-1] < res.train_losses[0]

    def test_early_stopping_respects_patience(self, tiny_dataset):
        model = make_model()
        res = finetune(model, tiny_dataset, epochs=50, patience=2, seed=0)
        assert len(res.train_losses) <= 50
        assert res.best_epoch <= len(res.train_losses)

    def test_best_weights_restored(self, tiny_dataset):
        model = make_model()
        res = finetune(model, tiny_dataset, epochs=5, patience=5, seed=0)
        # After training, evaluating valid again must reproduce best score.
        _, valid, _ = tiny_dataset.split()
        score = evaluate_model(model, valid, tiny_dataset.info, allow_fallback=True)
        assert score == pytest.approx(res.valid_score, abs=1e-9)

    def test_result_records_metadata(self, tiny_dataset):
        res = finetune(make_model(), tiny_dataset, epochs=2, patience=2, seed=0)
        assert res.metric == "roc_auc"
        assert res.seconds_per_epoch > 0
        assert res.strategy == "base"

    def test_regression_path(self, tiny_regression_dataset):
        model = make_model()
        res = finetune(model, tiny_regression_dataset, epochs=4, patience=4, seed=0)
        assert res.metric == "rmse" and np.isfinite(res.test_score)

    def test_multitask_path(self):
        ds = load_dataset("clintox", size=50)
        model = make_model(num_tasks=ds.num_tasks)
        res = finetune(model, ds, epochs=3, patience=3, seed=0)
        assert np.isfinite(res.test_score)

    def test_strategy_hooks_called(self, tiny_dataset):
        calls = {"prepare": 0, "reg": 0}

        class Spy(FineTuneStrategy):
            name = "spy"

            def prepare(self, model):
                calls["prepare"] += 1
                return model

            def regularizer(self, model, batch, outputs):
                calls["reg"] += 1
                return Tensor(0.0)

        finetune(make_model(), tiny_dataset, strategy=Spy(), epochs=2, patience=2, seed=0)
        assert calls["prepare"] == 1 and calls["reg"] > 0

    def test_deterministic_given_seed(self, tiny_dataset):
        r1 = finetune(make_model(seed=3), tiny_dataset, epochs=3, patience=3, seed=7)
        r2 = finetune(make_model(seed=3), tiny_dataset, epochs=3, patience=3, seed=7)
        assert r1.test_score == pytest.approx(r2.test_score)
