"""Sharded-cluster tests: affinity routing, retry/failover, real shards.

The routing logic is wall-clock-free and client-agnostic, so everything
about dispatch — affinity determinism, backoff, failover walks, health
probes, stats aggregation — is pinned against hand-rolled fake shard
clients (deterministic, no processes, recorded sleeps).  Cross-process
parity and real shard-kill failover run against genuine spawned shard
processes and are marked ``cluster``.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.space import FineTuneStrategySpec
from repro.gnn import GNNEncoder
from repro.graph import load_dataset
from repro.serve import (
    ClusterError,
    ClusterRouter,
    InferenceServer,
    InferenceService,
    InProcessTransport,
    ShardProcess,
    ShardServiceConfig,
    TransportConnectionError,
    launch_shards,
    spec_affinity,
)

SPEC_A = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                              fusion="last", readout="mean")
SPEC_B = FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                              fusion="concat", readout="sum")


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


class FakeShard:
    """In-process shard double speaking the serving-client API.

    ``fail_connects`` makes the next N calls raise the typed connection
    error (a flaky shard); ``dead=True`` makes every call fail (a killed
    shard) until flipped back — which is exactly the knob the probe and
    resurrection tests need.
    """

    def __init__(self, logits=(1.0, 2.0), fail_connects=0, dead=False):
        self.logits = list(logits)
        self.fail_connects = fail_connects
        self.dead = dead
        self.calls = []
        self._seq = 0

    def _gate(self, op):
        self.calls.append(op)
        if self.dead:
            raise TransportConnectionError(f"{op}: shard down")
        if self.fail_connects > 0:
            self.fail_connects -= 1
            raise TransportConnectionError(f"{op}: flaky connect")

    def predict(self, graph, spec, timeout_s=None):
        self._gate("predict")
        return np.asarray(self.logits)

    def submit(self, graph, spec):
        self._gate("submit")
        self._seq += 1
        return self._seq

    def result(self, seq, timeout_s=0.0):
        self._gate("result")
        return {"seq": seq, "logits": self.logits, "batch_size": 1}

    def stats(self):
        self._gate("stats")
        return {"server": {"running": True}}


def recording_sleep(log):
    def sleep(seconds):
        log.append(seconds)
    return sleep


class TestSpecAffinity:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 3, 7):
            home = spec_affinity(SPEC_A, shards)
            assert 0 <= home < shards
            assert spec_affinity(SPEC_A, shards) == home  # stable

    def test_equal_specs_share_a_home(self):
        clone = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                                     fusion="last", readout="mean")
        assert spec_affinity(clone, 4) == spec_affinity(SPEC_A, 4)

    def test_spreads_over_shards(self):
        rng = np.random.default_rng(3)
        specs = [DEFAULT_SPACE.random_spec(3, rng) for _ in range(40)]
        homes = {spec_affinity(s, 4) for s in specs}
        assert len(homes) > 1  # content hash actually distributes

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            spec_affinity(SPEC_A, 0)


class TestDispatch:
    def test_predict_lands_on_home_shard(self):
        shards = [FakeShard(logits=(float(i),)) for i in range(3)]
        cluster = ClusterRouter(shards)
        home = spec_affinity(SPEC_A, 3)
        logits = cluster.predict("g", SPEC_A)
        assert logits[0] == float(home)
        assert cluster.dispatched[home] == 1
        assert shards[home].calls == ["predict"]

    def test_retry_with_exponential_backoff(self):
        sleeps = []
        shards = [FakeShard(fail_connects=2) for _ in range(2)]
        cluster = ClusterRouter(shards, max_retries=2, backoff_s=0.05,
                                sleep=recording_sleep(sleeps))
        home = spec_affinity(SPEC_A, 2)
        cluster.predict("g", SPEC_A)
        assert sleeps == [0.05, 0.1]  # doubled per attempt, recorded not slept
        assert cluster.retries == 2
        assert cluster.failovers == 0
        assert cluster.live_shards() == [0, 1]  # recovered, nobody died
        assert shards[home].calls == ["predict"] * 3

    def test_failover_to_next_live_shard(self):
        sleeps = []
        home = spec_affinity(SPEC_A, 2)
        shards = [FakeShard(logits=(float(i),)) for i in range(2)]
        shards[home].dead = True
        cluster = ClusterRouter(shards, max_retries=1, backoff_s=0.01,
                                sleep=recording_sleep(sleeps))
        logits = cluster.predict("g", SPEC_A)
        assert logits[0] == float(1 - home)  # re-dispatched deterministically
        assert cluster.failovers == 1 and cluster.deaths == 1
        assert cluster.live_shards() == [1 - home]
        # affinity now routes straight to the survivor, no re-knocking
        shards[home].calls.clear()
        cluster.predict("g", SPEC_A)
        assert shards[home].calls == []

    def test_all_shards_dead_raises_cluster_error(self):
        shards = [FakeShard(dead=True) for _ in range(3)]
        cluster = ClusterRouter(shards, max_retries=0,
                                sleep=recording_sleep([]))
        with pytest.raises(ClusterError, match="no live shard left"):
            cluster.predict("g", SPEC_A)
        assert cluster.live_shards() == []

    def test_submit_and_result_stay_on_one_shard(self):
        shards = [FakeShard(logits=(float(i),)) for i in range(3)]
        cluster = ClusterRouter(shards)
        shard, seq = cluster.submit("g", SPEC_B)
        assert shard == spec_affinity(SPEC_B, 3)
        reply = cluster.result(shard, seq, timeout_s=5)
        assert reply["seq"] == seq
        assert reply["logits"] == [float(shard)]
        assert shards[shard].calls == ["submit", "result"]

    def test_shard_for_skips_excluded(self):
        cluster = ClusterRouter([FakeShard() for _ in range(3)])
        home = spec_affinity(SPEC_A, 3)
        assert cluster.shard_for(SPEC_A) == home
        assert cluster.shard_for(SPEC_A, exclude={home}) == (home + 1) % 3
        assert cluster.shard_for(SPEC_A, exclude={0, 1, 2}) is None


class TestHealth:
    def test_probe_marks_dead_and_resurrects(self):
        shards = [FakeShard(), FakeShard()]
        cluster = ClusterRouter(shards)
        shards[1].dead = True
        assert cluster.probe() == {0: True, 1: False}
        assert cluster.live_shards() == [0]
        shards[1].dead = False
        assert cluster.probe() == {0: True, 1: True}
        assert cluster.live_shards() == [0, 1]
        assert cluster.deaths == 1 and cluster.resurrections == 1

    def test_probe_timer_runs_in_background(self):
        shards = [FakeShard()]
        cluster = ClusterRouter(shards)
        done = threading.Event()
        calls = 0

        original = cluster.probe

        def counting_probe():
            nonlocal calls
            calls += 1
            if calls >= 2:
                done.set()
            return original()

        cluster.probe = counting_probe
        cluster.start_probes(interval_s=0.01)
        try:
            assert done.wait(10)  # probed repeatedly without help
        finally:
            cluster.stop_probes()
        assert cluster.live_shards() == [0]
        cluster.start_probes(interval_s=60)
        with pytest.raises(RuntimeError, match="already started"):
            cluster.start_probes()
        cluster.stop_probes()

    def test_stats_aggregate_is_json_safe_with_dead_shard(self):
        shards = [FakeShard(), FakeShard(dead=True)]
        cluster = ClusterRouter(shards, max_retries=0,
                                sleep=recording_sleep([]))
        cluster.predict("g", SPEC_A)
        tree = json.loads(json.dumps(cluster.stats()))
        assert tree["cluster"]["shards"] == 2
        assert tree["shards"]["1"] == {"unreachable": True}
        assert tree["shards"]["0"]["server"]["running"] is True
        assert sum(tree["cluster"]["dispatched"].values()) == 1


class TestInProcessDoubleParity:
    def test_cluster_logits_bit_identical_to_serial_service(self, tiny_dataset):
        """Two identically-seeded in-process stacks behind the cluster
        router serve the exact bits the serial service path computes."""
        reference = InferenceService(factory, tiny_dataset.num_tasks,
                                     batch_size=8, seed=0)
        services = [InferenceService(factory, tiny_dataset.num_tasks,
                                     batch_size=8, seed=0) for _ in range(2)]
        servers = [InferenceServer(s, num_workers=1, max_batch_size=1,
                                   max_delay=10_000, tick_interval_s=0.001)
                   for s in services]
        for s in servers:
            s.start()
        try:
            cluster = ClusterRouter([InProcessTransport(s) for s in servers])
            for i, spec in enumerate([SPEC_A, SPEC_B, SPEC_A]):
                graph = tiny_dataset.graphs[i]
                logits = cluster.predict(graph, spec, timeout_s=30)
                ref = reference.predict([graph], spec, batch_size=1)
                assert np.array_equal(logits, ref[0])
        finally:
            for s in servers:
                s.stop()


@pytest.mark.cluster
class TestRealShards:
    """Spawned shard processes: handshake, cross-process parity, failover."""

    def test_startup_failure_surfaces_through_handshake(self):
        bad = ShardServiceConfig(dataset="no-such-dataset", size=8)
        shard = ShardProcess(bad, ready_timeout_s=120.0)
        with pytest.raises(ClusterError, match="failed to start"):
            shard.start()
        assert not shard.alive

    def test_two_shards_parity_and_shard_kill_failover(self):
        config = ShardServiceConfig(dataset="bbbp", size=40, num_layers=2,
                                    emb_dim=12, batch_size=8, seed=0)
        shards = launch_shards(config, 2, num_workers=1, max_batch_size=1,
                               tick_interval_s=0.002)
        try:
            cluster = ClusterRouter([s.client(timeout_s=60) for s in shards],
                                    max_retries=1, backoff_s=0.01)
            reference = config()
            data = load_dataset("bbbp", size=40)
            rng = np.random.default_rng(7)
            specs = [DEFAULT_SPACE.random_spec(2, rng) for _ in range(2)]
            stream = [(data.graphs[i], specs[i % 2]) for i in range(8)]

            def check(graph, spec):
                logits = cluster.predict(graph, spec, timeout_s=60)
                ref = reference.predict([graph], spec, batch_size=1)
                assert np.array_equal(logits, ref[0])

            for graph, spec in stream[:4]:
                check(graph, spec)  # cross-process == serial, bit for bit
            assert sum(cluster.dispatched) == 4

            # Kill the home shard of a spec still in the stream, so the
            # remaining requests genuinely exercise failover (not luck).
            victim = spec_affinity(specs[0], 2)
            shards[victim].kill()
            for graph, spec in stream[4:]:
                check(graph, spec)  # failover keeps serving, same bits

            assert cluster.live_shards() == [1 - victim]
            stats = cluster.stats()
            assert stats["cluster"]["deaths"] == 1
            assert stats["cluster"]["failovers"] >= 1
            assert stats["shards"][str(victim)] == {"unreachable": True}
            json.dumps(stats)  # HTTP stats trees aggregate JSON-safe
        finally:
            for shard in shards:
                shard.stop()
