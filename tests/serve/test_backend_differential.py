"""End-to-end differential test of the segment-op backends.

PR 2 promised that the legacy ``np.add.at`` ops stay available as a
*reference backend* for the plan-backed kernels.  The unit parity tests
(`tests/nn/test_segment.py`, `tests/gnn/test_segment_parity.py`) cover
individual ops and modules; this suite pins the promise down end to end:
a complete search + fine-tune + serve run under every backend the op
registry implements (``OP_REGISTRY.backends()`` — the table in
``repro.nn.ops`` is the source of truth, so a future ``compiled``
backend joins this suite by registering itself) must be
**bit-identical** to the legacy reference — identical search histories,
derived specs, training losses, validation trajectories, scores and
served logits.

Bit-identity (not just tolerance) holds because every fast kernel
accumulates in the same order as its legacy counterpart: the plans' stable
sort preserves each segment's appearance order, the CSR matvec reduces
rows sequentially, and max is order-exact.  Any future kernel change that
reorders floating-point accumulation will trip this suite.

Marked ``slow``: this is the tier-2 differential suite (run tier-1 with
``pytest -m "not slow"``).
"""

import numpy as np
import pytest

from repro.core import S2PGNNFineTuner, SearchConfig
from repro.core.api import FineTuneConfig
from repro.core.evolution import EvolutionConfig, EvolutionarySearcher
from repro.gnn import GNNEncoder
from repro.nn import use_backend
from repro.nn.ops import OP_REGISTRY

pytestmark = pytest.mark.slow

#: Every backend with at least one direct implementation in the registry.
BACKENDS = OP_REGISTRY.backends()
REFERENCE = "legacy"
FAST_BACKENDS = tuple(b for b in BACKENDS if b != REFERENCE)


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


def run_pipeline(dataset, backend: str) -> dict:
    """One full search + finetune + predict run under ``backend``."""
    with use_backend(backend):
        tuner = S2PGNNFineTuner(
            factory,
            search_config=SearchConfig(epochs=2, batch_size=16, seed=0),
            finetune_config=FineTuneConfig(epochs=2, patience=2),
            seed=0,
        )
        result = tuner.fit(dataset)
        logits = tuner.predict(dataset.graphs[:16])
    return {
        "search_history": tuner.search_result_.history,
        "spec": tuner.best_spec_,
        "train_losses": result.train_losses,
        "valid_history": result.valid_history,
        "valid_score": result.valid_score,
        "test_score": result.test_score,
        "best_epoch": result.best_epoch,
        "logits": logits,
    }


@pytest.fixture(scope="module")
def runs(tiny_dataset):
    return {backend: run_pipeline(tiny_dataset, backend)
            for backend in BACKENDS}


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestEndToEndBackendParity:
    def test_derived_specs_identical(self, runs, backend):
        fast, legacy = runs[backend], runs[REFERENCE]
        assert fast["spec"] == legacy["spec"]

    def test_search_histories_bit_identical(self, runs, backend):
        fast, legacy = runs[backend], runs[REFERENCE]
        assert len(fast["search_history"]) == len(legacy["search_history"])
        for a, b in zip(fast["search_history"], legacy["search_history"]):
            assert a == b  # epoch, tau, threshold, losses, derived — exact

    def test_finetune_trajectories_bit_identical(self, runs, backend):
        fast, legacy = runs[backend], runs[REFERENCE]
        assert fast["train_losses"] == legacy["train_losses"]
        assert fast["valid_history"] == legacy["valid_history"]
        assert fast["best_epoch"] == legacy["best_epoch"]
        assert fast["valid_score"] == legacy["valid_score"]
        assert fast["test_score"] == legacy["test_score"]

    def test_served_logits_bit_identical(self, runs, backend):
        fast, legacy = runs[backend], runs[REFERENCE]
        assert np.array_equal(fast["logits"], legacy["logits"])


class TestEvolutionBackendParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_evolution_bit_identical(self, tiny_dataset, backend):
        def run(name):
            with use_backend(name):
                searcher = EvolutionarySearcher(
                    factory(), tiny_dataset,
                    config=EvolutionConfig(warmup_epochs=1, population_size=4,
                                           generations=2, seed=0),
                )
                return searcher.search()

        fast, legacy = run(backend), run(REFERENCE)
        assert fast.spec == legacy.spec
        assert fast.score == legacy.score
        assert fast.history == legacy.history


class TestServiceBackendParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_spec_scoring_bit_identical(self, tiny_dataset, backend):
        from repro.core import DEFAULT_SPACE
        from repro.core.supernet import S2PGNNSupernet
        from repro.serve import InferenceService

        rng = np.random.default_rng(3)
        specs = [DEFAULT_SPACE.random_spec(2, rng) for _ in range(3)]
        graphs = tiny_dataset.graphs[:16]

        def run(name):
            with use_backend(name):
                supernet = S2PGNNSupernet(factory(), DEFAULT_SPACE,
                                          num_tasks=tiny_dataset.num_tasks,
                                          seed=0)
                service = InferenceService(factory, tiny_dataset.num_tasks,
                                           supernet=supernet, batch_size=8)
                return service.score_specs(specs, graphs,
                                           metric=tiny_dataset.info.metric,
                                           keep_logits=True)

        fast, legacy = run(backend), run(REFERENCE)
        for a, b in zip(fast, legacy):
            assert a.spec == b.spec
            assert a.score == b.score
            assert np.array_equal(a.logits, b.logits)


class TestServingPolicyDifferential:
    """PR 7's float32 serving policy against the float64 ground truth.

    Unlike the backend legs above, float32 cannot be bit-identical — the
    contract is toleranced logit parity and a bounded score delta, with
    the *same* full pipeline (search + fine-tune) providing the weights.
    The train path runs outside the policy and stays float64, so the two
    services serve the same fitted model; only the serving compute
    differs.
    """

    def test_fitted_model_served_under_float32_policy(self, tiny_dataset):
        from repro.serve import InferenceService

        tuner = S2PGNNFineTuner(
            factory,
            search_config=SearchConfig(epochs=2, batch_size=16, seed=0),
            finetune_config=FineTuneConfig(epochs=2, patience=2),
            seed=0,
        )
        tuner.fit(tiny_dataset)
        graphs = tiny_dataset.graphs[:32]
        spec = tuner.best_spec_

        ref = InferenceService.from_tuner(tuner).predict(graphs, spec)

        # A float32 serving deployment of the same fitted weights: fresh
        # dtype-set registry (casting a *copy* is the registry's documented
        # ownership contract — the tuner keeps training its float64 model).
        import copy

        f32 = InferenceService(tuner.encoder_factory, tuner.model_.num_tasks,
                               policy="float32", batch_size=16,
                               seed=tuner.seed)
        f32.models.add(spec, copy.deepcopy(tuner.model_))
        got = f32.predict(graphs, spec)

        assert got.dtype == np.float32
        assert ref.dtype == np.float64
        assert np.abs(got - ref).max() <= 1e-4
        pool_stats = f32.stats()["policy"]["workspace"]
        assert pool_stats["misses"] > 0  # the forward really ran pooled
