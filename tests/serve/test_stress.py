"""Concurrency stress: many threads hammering one ``InferenceServer``.

Tier-2 (``slow``) + ``stress`` marked.  Two configurations:

* **batch-of-one server** (``max_batch_size=1``): every request is its own
  micro-batch, so each response must be **bit-identical to the serial**
  ``service.predict([g], spec, batch_size=1)`` answer — the strongest
  possible parity statement, no float-noise carve-outs;
* **batching server**: micro-batch composition under concurrency is
  nondeterministic, but every ticket records the batch it was served in,
  so each response is verified bit-identical to a *serial replay* of that
  exact micro-batch through an independent reference service.

Both also assert the bookkeeping stayed consistent under load: no lost or
double-counted requests anywhere in the stack (router served/batches
counters, worker execution counts, registry hit/miss totals).

``pytest.ini`` enables ``faulthandler_timeout``, so a deadlock here fails
fast with thread stacks instead of hanging the suite.
"""

import threading

import numpy as np
import pytest

from repro.core.space import FineTuneStrategySpec
from repro.devtools.runtime import guard_serving_stack
from repro.gnn import GNNEncoder
from repro.serve import InferenceServer, InferenceService

pytestmark = [pytest.mark.slow, pytest.mark.stress]

SPECS = [
    FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                         fusion="last", readout="mean"),
    FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                         fusion="mean", readout="sum"),
    FineTuneStrategySpec(identity=("trans_aug", "identity_aug"),
                         fusion="concat", readout="max"),
]

NUM_THREADS = 8
REQUESTS_PER_THREAD = 40


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


def hammer(server, graphs, collect):
    """NUM_THREADS threads mixing submit-then-wait and synchronous predict."""
    failures = []

    def worker(tid):
        try:
            for i in range(REQUESTS_PER_THREAD):
                graph = graphs[(tid * 7 + i) % len(graphs)]
                spec = SPECS[(tid + i) % len(SPECS)]
                if i % 3 == 0:  # synchronous path
                    row = server.predict(graph, spec, timeout=60)
                    collect(tid, i, graph, spec, row, None)
                else:  # ticket path
                    ticket = server.submit(graph, spec)
                    row = ticket.wait(timeout=60)
                    collect(tid, i, graph, spec, row, ticket)
        except BaseException as err:
            failures.append(err)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(NUM_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]


def test_batch_of_one_server_is_bit_identical_to_serial_predict(tiny_dataset):
    service = InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                               seed=0, logit_cache_size=0)
    reference = InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                                 seed=0, logit_cache_size=0)
    graphs = tiny_dataset.graphs
    serial = {(id(g), spec): reference.predict([g], spec, batch_size=1)[0]
              for g in graphs for spec in SPECS}

    results = []
    lock = threading.Lock()

    def collect(tid, i, graph, spec, row, ticket):
        with lock:
            results.append((graph, spec, row))

    with InferenceServer(service, num_workers=4, max_batch_size=1,
                         max_delay=2, tick_interval_s=0.001,
                         queue_size=512) as server:
        # Every interleaving the hammer explores also validates the
        # documented lock hierarchy (repro.devtools.locks) at runtime.
        with guard_serving_stack(server, service):
            hammer(server, graphs, collect)
            stats = server.stats()

    total = NUM_THREADS * REQUESTS_PER_THREAD
    assert len(results) == total
    for graph, spec, row in results:
        assert np.array_equal(row, serial[(id(graph), spec)])

    # No lost or double-counted entries anywhere in the stack.
    router = stats["server_router"]
    assert router["served"] == total
    assert router["batches"] == total  # batch-of-one: one per request
    assert router["pending"] == 0
    assert sum(router["flushes"].values()) == router["batches"]
    assert stats["server"]["executed_batches"] == router["batches"]
    assert stats["server"]["worker_errors"] == 0
    models = stats["models"]
    assert models["models"] == len(SPECS)
    assert models["misses"] == len(SPECS)  # one build per spec, ever
    assert models["hits"] == router["batches"] - len(SPECS)


def test_batching_server_matches_serial_replay_of_each_micro_batch(tiny_dataset):
    service = InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                               seed=0, logit_cache_size=0)
    reference = InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                                 seed=0, logit_cache_size=0)
    graphs = tiny_dataset.graphs

    results = []
    lock = threading.Lock()

    def collect(tid, i, graph, spec, row, ticket):
        with lock:
            results.append((graph, spec, row, ticket))

    with InferenceServer(service, num_workers=4, max_batch_size=8,
                         max_delay=3, tick_interval_s=0.001,
                         queue_size=512) as server:
        with guard_serving_stack(server, service):
            hammer(server, graphs, collect)
            stats = server.stats()

    total = NUM_THREADS * REQUESTS_PER_THREAD
    assert len(results) == total
    router = stats["server_router"]
    assert router["served"] >= total  # + predict()'s piggybacked neighbours
    assert router["pending"] == 0
    assert sum(router["flushes"].values()) == router["batches"]
    assert stats["server"]["executed_batches"] == router["batches"]
    assert stats["server"]["worker_errors"] == 0

    # Bit-identical to the serial replay of each request's actual batch;
    # replays hit the reference's caches, so distinct batches only.
    replays = {}
    for graph, spec, row, ticket in results:
        if ticket is None:
            continue  # synchronous predicts verified via their tickets below
        key = (tuple(id(g) for g in ticket.batch_graphs), spec)
        if key not in replays:
            replays[key] = reference.predict(list(ticket.batch_graphs), spec,
                                             batch_size=len(ticket.batch_graphs))
        assert np.array_equal(row, replays[key][ticket.batch_index])
        assert ticket.batch_graphs[ticket.batch_index] is graph
        assert ticket.spec is spec
