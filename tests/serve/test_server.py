"""InferenceServer lifecycle, execution modes and shutdown contract.

Deterministic server tests run in **manual-tick mode**
(``tick_interval_s=None``): no background ticker means no wall-clock in
the loop, exactly like the router's simulated-clock test path.  A couple
of tests exercise the real ticker, asserting only liveness (a deadline
flush eventually fires), never timing.
"""

import threading

import numpy as np
import pytest

from repro.core.space import FineTuneStrategySpec
from repro.gnn import GNNEncoder
from repro.serve import InferenceServer, InferenceService

SPEC_A = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                              fusion="last", readout="mean")
SPEC_B = FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                              fusion="mean", readout="sum")


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


@pytest.fixture
def service(tiny_dataset):
    return InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                            seed=0)


@pytest.fixture
def reference(tiny_dataset):
    return InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                            seed=0)


class TestLifecycle:
    def test_requires_start_and_rejects_double_start(self, tiny_dataset, service):
        server = InferenceServer(service, num_workers=1, tick_interval_s=None)
        with pytest.raises(RuntimeError, match="not started"):
            server.submit(tiny_dataset.graphs[0], SPEC_A)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_submit_after_stop_raises(self, tiny_dataset, service):
        server = InferenceServer(service, num_workers=1, tick_interval_s=None)
        with server:
            pass
        with pytest.raises(RuntimeError, match="stopped"):
            server.submit(tiny_dataset.graphs[0], SPEC_A)

    def test_stop_resolves_every_pending_ticket(self, tiny_dataset, service):
        server = InferenceServer(service, num_workers=2, max_batch_size=100,
                                 max_delay=10_000, tick_interval_s=None)
        with server:
            tickets = [server.submit(g, SPEC_A if i % 2 else SPEC_B)
                       for i, g in enumerate(tiny_dataset.graphs[:9])]
        # No flush, no ticks: stop() itself must flush + drain the queue.
        assert all(t.done for t in tickets)
        for t in tickets:
            assert t.result().shape == (tiny_dataset.num_tasks,)
        assert server.executed_batches == 2  # one micro-batch per spec
        assert not server.worker_errors

    def test_parameter_validation(self, service):
        with pytest.raises(ValueError):
            InferenceServer(service, num_workers=0)
        with pytest.raises(ValueError):
            InferenceServer(service, tick_interval_s=0.0)
        with pytest.raises(ValueError):
            InferenceServer(service, queue_size=0)

    def test_stop_is_idempotent(self, service):
        server = InferenceServer(service, num_workers=1, tick_interval_s=None)
        server.start()
        server.stop()
        server.stop()
        assert not server.running


class TestExecution:
    def test_flush_on_size_runs_on_workers(self, tiny_dataset, service,
                                           reference):
        graphs = tiny_dataset.graphs[:8]
        with InferenceServer(service, num_workers=2, max_batch_size=4,
                             max_delay=10_000, tick_interval_s=None) as server:
            tickets = [server.submit(g, SPEC_A) for g in graphs]
            rows = [t.wait(timeout=30) for t in tickets]
        ref = reference.predict(graphs[:4], SPEC_A, batch_size=4)
        for i in range(4):
            assert np.array_equal(rows[i], ref[i])
        assert server.executed_batches == 2
        assert server.router.flushes["size"] == 2

    def test_manual_tick_deadline_flush(self, tiny_dataset, service, reference):
        with InferenceServer(service, num_workers=1, max_batch_size=100,
                             max_delay=3, tick_interval_s=None) as server:
            ticket = server.submit(tiny_dataset.graphs[0], SPEC_A)
            server.tick(2)
            assert not ticket.done  # age 2 < deadline: nothing dispatched
            server.tick(1)
            row = ticket.wait(timeout=30)
        ref = reference.predict([tiny_dataset.graphs[0]], SPEC_A, batch_size=1)
        assert np.array_equal(row, ref[0])
        assert server.router.flushes["deadline"] == 1

    def test_real_ticker_fires_deadline_flush(self, tiny_dataset, service,
                                              reference):
        """Liveness only: with a real-clock ticker, a lone sub-batch-size
        request resolves without anyone calling tick()/flush()."""
        with InferenceServer(service, num_workers=2, max_batch_size=100,
                             max_delay=2, tick_interval_s=0.001) as server:
            row = server.predict(tiny_dataset.graphs[1], SPEC_A, timeout=30)
        ref = reference.predict([tiny_dataset.graphs[1]], SPEC_A, batch_size=1)
        assert np.array_equal(row, ref[0])
        assert server.router.flushes["deadline"] >= 1
        assert server.router.flushes["forced"] == 0

    def test_predict_without_ticker_flushes_itself(self, tiny_dataset, service,
                                                   reference):
        with InferenceServer(service, num_workers=1, max_batch_size=100,
                             max_delay=10_000, tick_interval_s=None) as server:
            row = server.predict(tiny_dataset.graphs[2], SPEC_A, timeout=30)
        ref = reference.predict([tiny_dataset.graphs[2]], SPEC_A, batch_size=1)
        assert np.array_equal(row, ref[0])

    def test_tickets_record_their_micro_batch(self, tiny_dataset, service):
        graphs = tiny_dataset.graphs[:4]
        with InferenceServer(service, num_workers=2, max_batch_size=4,
                             max_delay=10_000, tick_interval_s=None) as server:
            tickets = [server.submit(g, SPEC_A) for g in graphs]
            for t in tickets:
                t.wait(timeout=30)
        for i, t in enumerate(tickets):
            assert t.batch_graphs == tuple(graphs)
            assert t.batch_index == i

    def test_worker_error_reaches_ticket_and_counter(self, tiny_dataset,
                                                     service):
        # onehot without a supernet: the micro-batch forward raises.
        with InferenceServer(service, num_workers=1, max_batch_size=1,
                             max_delay=10_000, onehot=True,
                             tick_interval_s=None) as server:
            ticket = server.submit(tiny_dataset.graphs[0], SPEC_A)
            with pytest.raises(RuntimeError, match="micro-batch execution failed"):
                ticket.wait(timeout=30)
        assert len(server.worker_errors) == 1
        assert server.executed_batches == 0

    def test_worker_error_ring_bounds_memory_not_the_count(self, tiny_dataset,
                                                           service):
        # Regression: worker_errors was an unbounded list — a failing
        # deployment pinned every exception (traceback and all) for the
        # life of the process.  The ring keeps the last K while stats()
        # still reports the true monotonic total.
        with InferenceServer(service, num_workers=1, max_batch_size=1,
                             max_delay=10_000, onehot=True,
                             tick_interval_s=None,
                             max_worker_errors=4) as server:
            tickets = [server.submit(g, SPEC_A)
                       for g in tiny_dataset.graphs[:6]]
            server.flush()
            for t in tickets:
                with pytest.raises(RuntimeError):
                    t.wait(timeout=30)
            stats = server.stats()
        assert len(server.worker_errors) == 4          # ring capacity
        assert server.worker_error_total == 6          # true count
        assert stats["server"]["worker_errors"] == 6
        assert stats["server"]["recent_worker_errors"] == 4

    def test_pre_execute_hook_runs_per_micro_batch(self, tiny_dataset, service):
        calls = []
        with InferenceServer(service, num_workers=1, max_batch_size=2,
                             max_delay=10_000, tick_interval_s=None,
                             pre_execute=lambda: calls.append(1)) as server:
            for g in tiny_dataset.graphs[:6]:
                server.submit(g, SPEC_A)
            server.flush()
        assert len(calls) == server.executed_batches == 3


class TestStats:
    def test_stats_counters_consistent_after_load(self, tiny_dataset, service):
        graphs = tiny_dataset.graphs
        with InferenceServer(service, num_workers=3, max_batch_size=4,
                             max_delay=10_000, tick_interval_s=None) as server:
            tickets = [server.submit(graphs[i % len(graphs)],
                                     SPEC_A if i % 2 else SPEC_B)
                       for i in range(40)]
            server.flush()
            for t in tickets:
                t.wait(timeout=30)
            stats = server.stats()
        router = stats["server_router"]
        assert router["served"] == 40
        assert router["pending"] == 0
        assert sum(router["flushes"].values()) == router["batches"]
        assert stats["server"]["executed_batches"] == router["batches"]
        assert stats["server"]["worker_errors"] == 0
        assert stats["server"]["queue_depth"] == 0
