"""Thread-safety contracts of the serve stack (registries, router, service).

These are the *unit-level* concurrency pins behind the ``InferenceServer``
(whole-runtime stress lives in ``test_stress.py``):

* **router submit atomicity** — ticket allocation (the ``seq`` counter)
  and the bucket insert happen under the router lock, so concurrent
  submitters (including submits racing a service ``router()``
  reconfigure, the PR-4 follow-up bug) get unique gapless sequence
  numbers and ``drain()`` preserves submission order;
* **registry coherence** — ``ModelRegistry.get`` races build exactly one
  model per spec; ``BatchCacheRegistry.loader`` races collate each split
  exactly once; stats counters stay consistent (hits + misses == calls);
* **ticket wait semantics** — ``RoutedRequest.wait(timeout)`` blocks,
  times out while queued, and resolves across threads.
"""

import threading

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.space import FineTuneStrategySpec
from repro.gnn import GNNEncoder
from repro.serve import BatchCacheRegistry, BatchingRouter, InferenceService, ModelRegistry

SPEC_A = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                              fusion="last", readout="mean")
SPEC_B = FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                              fusion="mean", readout="sum")


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


def run_threads(n, target):
    """Run ``target(thread_id)`` on n threads; re-raise the first failure."""
    failures = []

    def wrap(tid):
        try:
            target(tid)
        except BaseException as err:
            failures.append(err)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]


@pytest.fixture
def service(tiny_dataset):
    return InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                            seed=0)


class TestRouterSubmitAtomicity:
    def test_concurrent_submitters_get_unique_gapless_seqs(self, tiny_dataset,
                                                           service):
        router = BatchingRouter(service, max_batch_size=10_000,
                                max_delay=10_000, max_pending=10_000)
        graphs = tiny_dataset.graphs
        per_thread = 50

        def submitter(tid):
            spec = SPEC_A if tid % 2 == 0 else SPEC_B
            for i in range(per_thread):
                router.submit(graphs[(tid + i) % len(graphs)], spec)

        run_threads(8, submitter)
        assert router.pending == 8 * per_thread
        done = router.flush()
        # The pinned invariant: seq allocation + insert are atomic, so no
        # interleaving can duplicate or drop a sequence number...
        assert sorted(r.seq for r in done) == list(range(8 * per_thread))
        # ...and drain preserves global submission order.
        drained = router.drain()
        assert [r.seq for r in drained] == sorted(r.seq for r in drained)
        assert len(drained) == 8 * per_thread

    def test_submit_racing_service_reconfigure_loses_nothing(self, tiny_dataset):
        """PR-4 follow-up bug: ``submit`` racing ``service.router()`` (or a
        second thread mid-flush) could tear the seq counter / orphan
        tickets.  Every submitted ticket must resolve exactly once, on
        whichever router (old or new) accepted it."""
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        service.router(max_batch_size=4, max_delay=10_000)
        graphs = tiny_dataset.graphs
        tickets, tickets_lock = [], threading.Lock()
        stop = threading.Event()

        def submitter(tid):
            for i in range(40):
                ticket = service.submit(graphs[(tid + i) % len(graphs)], SPEC_A)
                with tickets_lock:
                    tickets.append(ticket)

        def reconfigurer(_tid):
            while not stop.is_set():
                service.router(max_batch_size=4, max_delay=10_000)

        recon = threading.Thread(target=reconfigurer, args=(0,))
        recon.start()
        try:
            run_threads(4, submitter)
        finally:
            stop.set()
            recon.join()
        service.flush()
        assert all(t.done for t in tickets)
        for t in tickets:
            assert t.result().shape == (tiny_dataset.num_tasks,)

    def test_concurrent_predict_one_all_resolve_consistently(self, tiny_dataset,
                                                             service):
        router = BatchingRouter(service, max_batch_size=6, max_delay=10_000)
        graphs = tiny_dataset.graphs
        out = {}

        def worker(tid):
            rows = [router.predict_one(graphs[(tid + i) % len(graphs)], SPEC_A)
                    for i in range(15)]
            out[tid] = rows

        run_threads(6, worker)
        stats = router.stats()
        assert stats["served"] == 6 * 15
        assert stats["pending"] == 0
        assert sum(stats["flushes"].values()) == stats["batches"]


class TestRegistryCoherence:
    def test_model_registry_races_build_one_model_per_spec(self, tiny_dataset):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks, capacity=8,
                                 seed=0)
        specs = [SPEC_A, SPEC_B]
        seen = {spec: set() for spec in specs}
        lock = threading.Lock()

        def getter(tid):
            for i in range(10):
                spec = specs[(tid + i) % 2]
                model = registry.get(spec)
                with lock:
                    seen[spec].add(id(model))

        run_threads(8, getter)
        for spec in specs:  # one persistent model object per spec, ever
            assert len(seen[spec]) == 1
        stats = registry.stats()
        assert stats["hits"] + stats["misses"] == 8 * 10
        assert stats["misses"] == len(specs)

    def test_batch_cache_races_collate_each_split_once(self, tiny_dataset):
        registry = BatchCacheRegistry(capacity=8)
        graphs = tiny_dataset.graphs[:24]
        loaders = set()
        lock = threading.Lock()

        def getter(_tid):
            for _ in range(10):
                loader = registry.loader(graphs, 8)
                batches = list(loader)
                assert sum(b.num_graphs for b in batches) == 24
                with lock:
                    loaders.add(id(loader))

        run_threads(6, getter)
        assert len(loaders) == 1
        stats = registry.stats()
        assert stats["hits"] + stats["misses"] == 60
        assert stats["misses"] == 1
        assert stats["collations"] == 3  # 24 graphs / batch_size 8, built once

    def test_memoization_lru_consistent_under_threads(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0, logit_cache_size=16)
        graphs = tiny_dataset.graphs[:8]
        reference = InferenceService(factory, tiny_dataset.num_tasks,
                                     batch_size=8, seed=0, logit_cache_size=0)
        expected = reference.predict(graphs, SPEC_A)

        def caller(_tid):
            for _ in range(10):
                assert np.array_equal(service.predict(graphs, SPEC_A), expected)

        run_threads(6, caller)
        stats = service.stats()["logits"]
        assert stats["hits"] + stats["misses"] == 60
        assert stats["hits"] >= 50  # at most a few racing first misses


class TestTicketWait:
    def test_wait_times_out_while_queued(self, tiny_dataset, service):
        router = BatchingRouter(service, max_batch_size=100, max_delay=100)
        ticket = router.submit(tiny_dataset.graphs[0], SPEC_A)
        with pytest.raises(TimeoutError, match="still queued"):
            ticket.wait(timeout=0.01)
        router.flush()
        assert ticket.wait(timeout=0.01).shape == (tiny_dataset.num_tasks,)

    def test_wait_unblocks_across_threads(self, tiny_dataset, service):
        router = BatchingRouter(service, max_batch_size=100, max_delay=100)
        ticket = router.submit(tiny_dataset.graphs[0], SPEC_A)
        box = {}

        def waiter():
            box["row"] = ticket.wait(timeout=10)

        t = threading.Thread(target=waiter)
        t.start()
        router.flush()
        t.join(timeout=10)
        assert not t.is_alive()
        assert np.array_equal(box["row"], ticket.result())

    def test_failed_micro_batch_resolves_waiters_with_error(self, tiny_dataset,
                                                            service):
        router = BatchingRouter(service, max_batch_size=100, max_delay=100,
                                onehot=True)  # no supernet -> execution fails
        ticket = router.submit(tiny_dataset.graphs[0], SPEC_A)
        with pytest.raises(RuntimeError):
            router.flush()
        assert ticket.done
        with pytest.raises(RuntimeError, match="micro-batch execution failed"):
            ticket.wait(timeout=1)
