"""Serving-layer tests: parity, cache registries, model registry, service.

The load-bearing contract is *serving parity*: logits served through the
persistent-model / shared-cache / memoized paths must be bit-identical to
a fresh ``DerivedModel`` + uncached ``DataLoader`` forward — across
several specs and batch sizes.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.space import FineTuneStrategySpec
from repro.core.supernet import DerivedModel, S2PGNNSupernet
from repro.gnn import GNNEncoder
from repro.graph import DataLoader
from repro.nn import no_grad
from repro.serve import (
    BatchCacheRegistry,
    InferenceService,
    ModelRegistry,
    spec_key,
)

SPECS = [
    FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                         fusion="last", readout="mean"),
    FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                         fusion="mean", readout="sum"),
    FineTuneStrategySpec(identity=("trans_aug", "identity_aug"),
                         fusion="concat", readout="max"),
]


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


@pytest.fixture(scope="module")
def served(tiny_dataset):
    """A supernet + service over a labeled graph list."""
    graphs = tiny_dataset.graphs[:20]
    supernet = S2PGNNSupernet(factory(), DEFAULT_SPACE,
                              num_tasks=tiny_dataset.num_tasks, seed=0)
    service = InferenceService(factory, tiny_dataset.num_tasks,
                               supernet=supernet, batch_size=8, seed=0)
    return graphs, supernet, service


def cold_logits(supernet, spec, graphs, num_tasks, batch_size):
    """Reference path: fresh warm-started model + fresh uncached loader."""
    model = DerivedModel(factory(), spec, num_tasks, seed=0)
    model.load_from_supernet(supernet)
    model.eval()
    preds = []
    with no_grad():
        for batch in DataLoader(graphs, batch_size=batch_size):
            preds.append(model(batch).data.copy())
    return np.concatenate(preds, axis=0)


class TestServingParity:
    @pytest.mark.parametrize("batch_size", [8, 64])
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_predict_bit_identical_to_cold_path(self, served, tiny_dataset,
                                                spec, batch_size):
        graphs, supernet, service = served
        ref = cold_logits(supernet, spec, graphs, tiny_dataset.num_tasks,
                          batch_size)
        assert np.array_equal(service.predict(graphs, spec, batch_size), ref)
        # Second (memoized) request must serve the same bits.
        assert np.array_equal(service.predict(graphs, spec, batch_size), ref)

    @pytest.mark.parametrize("batch_size", [8, 64])
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_onehot_fast_path_bit_identical_to_cold_path(self, served,
                                                         tiny_dataset, spec,
                                                         batch_size):
        graphs, supernet, service = served
        ref = cold_logits(supernet, spec, graphs, tiny_dataset.num_tasks,
                          batch_size)
        got = service.predict_spec_onehot(graphs, spec, batch_size)
        assert np.array_equal(got, ref)

    def test_score_specs_matches_cold_scores(self, served, tiny_dataset):
        from repro.metrics import multitask_score_or_fallback

        graphs, supernet, service = served
        results = service.score_specs(SPECS, graphs,
                                      metric=tiny_dataset.info.metric,
                                      keep_logits=True)
        assert [r.spec for r in results] == SPECS
        trues = np.stack([g.y for g in graphs])
        for entry in results:
            ref = cold_logits(supernet, entry.spec, graphs,
                              tiny_dataset.num_tasks, service.batch_size)
            assert np.array_equal(entry.logits, ref)
            assert entry.score == multitask_score_or_fallback(
                trues, ref, tiny_dataset.info.metric)

    def test_score_specs_without_supernet_uses_derived_models(self, tiny_dataset):
        graphs = tiny_dataset.graphs[:12]
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        results = service.score_specs(SPECS[:2], graphs,
                                      metric=tiny_dataset.info.metric)
        assert len(results) == 2 and all(np.isfinite(r.score) for r in results)

    def test_onehot_without_supernet_raises(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks)
        with pytest.raises(RuntimeError):
            service.predict_spec_onehot(tiny_dataset.graphs[:4], SPECS[0])

    def test_empty_request_yields_zero_rows(self, served, tiny_dataset):
        graphs, _, service = served
        out = service.predict([], SPECS[0])
        assert out.shape == (0, tiny_dataset.num_tasks)
        out = service.predict_spec_onehot([], SPECS[0])
        assert out.shape == (0, tiny_dataset.num_tasks)
        # Scoring zero graphs is undefined (metrics need samples) and must
        # fail loudly rather than crash deep in concatenation.
        with pytest.raises(ValueError, match="empty graph list"):
            service.score_specs(SPECS, [])

    def test_shared_empty_registries_are_respected(self, tiny_dataset):
        """Regression: registries define __len__, so a freshly created
        (empty, falsy) registry passed for sharing must still be used."""
        cache = BatchCacheRegistry()
        models = ModelRegistry(factory, tiny_dataset.num_tasks)
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   models=models, batch_cache=cache)
        assert service.models is models
        assert service.batch_cache is cache


class TestServiceBehavior:
    def test_modes_restored(self, served):
        graphs, supernet, service = served
        model = service.model_for(SPECS[0])
        model.train()
        supernet.train()
        service.predict(graphs, SPECS[0], 16)
        service.predict_spec_onehot(graphs, SPECS[0], 16)
        assert model.training and supernet.training
        model.eval()
        supernet.eval()
        service.predict(graphs, SPECS[0], 32)
        service.predict_spec_onehot(graphs, SPECS[0], 32)
        assert not model.training and not supernet.training

    def test_memoization_and_invalidation(self, served, tiny_dataset):
        graphs, supernet, service = served
        spec = SPECS[1]
        first = service.predict(graphs, spec, 16)
        hits_before = service.logit_hits
        second = service.predict(graphs, spec, 16)
        assert service.logit_hits == hits_before + 1
        assert np.array_equal(first, second)
        # Responses are private copies: mutating one doesn't poison the cache.
        second += 1e9
        assert np.array_equal(service.predict(graphs, spec, 16), first)
        # Weight mutation requires explicit invalidation (frozen-model
        # contract); after it, responses reflect the new weights.
        model = service.model_for(spec)
        model.head.weight.data = model.head.weight.data + 1.0
        assert np.array_equal(service.predict(graphs, spec, 16), first)
        service.invalidate_logits()
        assert not np.array_equal(service.predict(graphs, spec, 16), first)
        # Restore for other tests sharing the module-scoped fixture.
        model.head.weight.data = model.head.weight.data - 1.0
        service.invalidate_logits()

    def test_evicted_models_pruned_from_logit_cache(self, tiny_dataset):
        """Memoization keys pin their model; once the registry evicts a
        model, its responses must not keep it alive until LRU churn."""
        graphs = tiny_dataset.graphs[:8]
        models = ModelRegistry(factory, tiny_dataset.num_tasks, capacity=2)
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   models=models, batch_size=8)
        for spec in SPECS:  # capacity 2: SPECS[0]'s model gets evicted
            service.predict(graphs, spec)
        cached_models = {id(key[0]) for key in service._logit_cache}
        live = {id(m) for m in models.live_models()} | {id(service.supernet)}
        assert cached_models <= live
        assert len(service._logit_cache) == 2

    def test_logit_cache_disabled(self, served):
        graphs, supernet, service = served
        off = InferenceService(factory, 1, supernet=supernet,
                               batch_cache=service.batch_cache,
                               logit_cache_size=0)
        off.predict(graphs, SPECS[0], 16)
        off.predict(graphs, SPECS[0], 16)
        assert off.logit_hits == 0 and len(off._logit_cache) == 0

    def test_stats_shape(self, served):
        _, _, service = served
        stats = service.stats()
        assert set(stats) == {"models", "batches", "logits", "compiled"}
        assert stats["batches"]["collations"] >= 1
        assert stats["compiled"]["state"] in (
            "available", "unavailable", "disabled")

    def test_from_tuner_serves_fitted_model(self, tiny_dataset):
        from repro.core import S2PGNNFineTuner, SearchConfig
        from repro.core.api import FineTuneConfig

        tuner = S2PGNNFineTuner(
            factory,
            search_config=SearchConfig(epochs=1, batch_size=16, seed=0),
            finetune_config=FineTuneConfig(epochs=1, patience=1),
        )
        with pytest.raises(RuntimeError):
            InferenceService.from_tuner(tuner)
        tuner.fit(tiny_dataset)
        service = InferenceService.from_tuner(tuner)
        assert service.batch_cache is tuner.batch_cache
        assert service.model_for(tuner.best_spec_) is tuner.model_
        graphs = tiny_dataset.graphs[:10]
        assert np.array_equal(service.predict(graphs, tuner.best_spec_),
                              tuner.predict(graphs))


class TestBatchCacheRegistry:
    def test_shared_across_equal_content_lists(self, molecules):
        registry = BatchCacheRegistry()
        a = registry.loader(molecules[:10], 4)
        b = registry.loader(list(molecules[:10]), 4)
        assert a is b
        assert registry.hits == 1 and registry.misses == 1

    def test_distinct_batch_sizes_are_distinct_entries(self, molecules):
        registry = BatchCacheRegistry()
        assert registry.loader(molecules[:10], 4) is not \
            registry.loader(molecules[:10], 8)

    def test_lru_eviction(self, molecules):
        registry = BatchCacheRegistry(capacity=2)
        a = registry.loader(molecules[:5], 4)
        registry.loader(molecules[5:10], 4)
        registry.loader(molecules[:5], 4)       # refresh a
        registry.loader(molecules[10:15], 4)    # evicts molecules[5:10]
        assert registry.loader(molecules[:5], 4) is a
        assert len(registry) == 2

    def test_invalidate_by_graphs(self, molecules):
        registry = BatchCacheRegistry()
        a = registry.loader(molecules[:5], 4)
        registry.loader(molecules[5:10], 4)
        registry.invalidate(molecules[2:3])
        assert registry.loader(molecules[:5], 4) is not a
        assert len(registry) == 2

    def test_collations_counter_monotonic_across_eviction(self, molecules):
        registry = BatchCacheRegistry(capacity=2)
        seen = 0
        for lo in range(0, 25, 5):  # 5 distinct sets through capacity 2
            list(registry.loader(molecules[lo:lo + 5], 2))
            total = registry.stats()["collations"]
            assert total >= seen
            seen = total
        assert seen == 5 * 3  # every set collated (3 batches each), none lost
        registry.invalidate()
        assert registry.stats()["collations"] == seen

    def test_warm_builds_plans(self, molecules):
        registry = BatchCacheRegistry()
        loader = registry.warm(molecules[:6], 3)
        for batch in loader.materialize():
            assert batch._edge_plan is not None
            assert batch._node_plan is not None

    def test_materialize_requires_cache_mode(self, molecules):
        with pytest.raises(RuntimeError):
            DataLoader(molecules[:4], batch_size=2).materialize()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BatchCacheRegistry(capacity=0)


class TestModelRegistry:
    def test_get_builds_once_and_hits(self):
        registry = ModelRegistry(factory, num_tasks=1)
        a = registry.get(SPECS[0])
        assert registry.get(SPECS[0]) is a
        assert registry.hits == 1 and registry.misses == 1

    def test_warm_start_from_supernet(self, tiny_dataset):
        supernet = S2PGNNSupernet(factory(), DEFAULT_SPACE,
                                  num_tasks=tiny_dataset.num_tasks, seed=0)
        registry = ModelRegistry(factory, tiny_dataset.num_tasks)
        model = registry.get(SPECS[0], supernet=supernet)
        ref = DerivedModel(factory(), SPECS[0], tiny_dataset.num_tasks, seed=0)
        ref.load_from_supernet(supernet)
        for (name, p), (_, q) in zip(sorted(model.named_parameters()),
                                     sorted(ref.named_parameters())):
            assert np.array_equal(p.data, q.data), name

    def test_lru_eviction(self):
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        a = registry.get(SPECS[0])
        registry.get(SPECS[1])
        registry.get(SPECS[0])      # refresh
        registry.get(SPECS[2])      # evicts SPECS[1]
        assert SPECS[1] not in registry and SPECS[0] in registry
        assert registry.get(SPECS[0]) is a
        assert len(registry) == 2

    def test_externally_added_models_are_pinned(self):
        """A registered fine-tuned model carries weights the registry
        cannot rebuild; eviction must never silently replace it."""
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        fitted = registry.get(SPECS[0])
        fitted.head.weight.data = fitted.head.weight.data + 5.0
        registry.add(SPECS[0], fitted)  # external add -> pinned
        registry.get(SPECS[1])
        registry.get(SPECS[2])  # evicts SPECS[1], not the pinned model
        assert registry.get(SPECS[0]) is fitted
        assert registry.stats()["pinned"] == 1

    def test_all_pinned_exceeds_capacity_rather_than_evicting(self):
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        for spec in SPECS:
            registry.add(spec, registry._build(spec))
        assert len(registry) == 3
        assert all(spec in registry for spec in SPECS)

    def test_checkpoint_roundtrip(self, tmp_path):
        registry = ModelRegistry(factory, num_tasks=1)
        model = registry.get(SPECS[0])
        model.head.weight.data = model.head.weight.data + 3.0
        path = str(tmp_path / f"{spec_key(SPECS[0])}.npz")
        registry.save_checkpoint(SPECS[0], path)

        fresh = ModelRegistry(factory, num_tasks=1)
        loaded = fresh.load_checkpoint(SPECS[0], path)
        assert np.array_equal(loaded.head.weight.data, model.head.weight.data)

    def test_load_checkpoint_replaces_and_pins(self, tmp_path):
        """Checkpoint loading must register a *new pinned* model object —
        in-place mutation of an already served model would leave stale
        memoized responses live, and an unpinned one could be evicted and
        silently rebuilt without the checkpoint weights."""
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        served_before = registry.get(SPECS[0])
        served_before.head.weight.data = served_before.head.weight.data + 3.0
        path = str(tmp_path / "ckpt.npz")
        registry.save_checkpoint(SPECS[0], path)

        loaded = registry.load_checkpoint(SPECS[0], path)
        assert loaded is not served_before
        assert registry.get(SPECS[0]) is loaded
        registry.get(SPECS[1])
        registry.get(SPECS[2])  # churn past capacity: pinned model survives
        assert registry.get(SPECS[0]) is loaded
        assert registry.stats()["pinned"] == 1

    def test_save_unknown_spec_raises(self, tmp_path):
        registry = ModelRegistry(factory, num_tasks=1)
        with pytest.raises(KeyError):
            registry.save_checkpoint(SPECS[0], str(tmp_path / "x.npz"))

    def test_spec_key_stable_and_distinct(self):
        assert spec_key(SPECS[0]) == spec_key(SPECS[0])
        assert spec_key(SPECS[0]) != spec_key(SPECS[1])

    def test_remove_drops_model_and_pin(self):
        """Regression: ``_pinned`` only ever grew — a removed/retired spec
        left a stale pinned entry behind forever."""
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        registry.add(SPECS[0], registry._build(SPECS[0]))  # pinned
        assert registry.stats()["pinned"] == 1
        assert registry.remove(SPECS[0])
        assert SPECS[0] not in registry
        assert registry.stats()["pinned"] == 0
        assert registry._pinned == set()
        # Removing again (or an unknown spec) reports nothing to do.
        assert not registry.remove(SPECS[0])
        assert not registry.remove(SPECS[1])

    def test_remove_then_get_rebuilds_unpinned(self):
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        pinned = registry.get(SPECS[0])
        registry.add(SPECS[0], pinned)
        registry.remove(SPECS[0])
        rebuilt = registry.get(SPECS[0])
        assert rebuilt is not pinned
        # The rebuilt model is registry-built: evictable, not pinned.
        registry.get(SPECS[1])
        registry.get(SPECS[2])
        assert SPECS[0] not in registry
        assert registry.stats()["pinned"] == 0

    def test_unpin_makes_model_evictable(self):
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        registry.add(SPECS[0], registry._build(SPECS[0]))  # pinned, oldest
        registry.get(SPECS[1])
        assert registry.unpin(SPECS[0])
        assert not registry.unpin(SPECS[0])  # already unpinned
        assert registry.stats()["pinned"] == 0
        registry.get(SPECS[2])  # at capacity: evicts the now-unpinned oldest
        assert SPECS[0] not in registry
        assert len(registry) == 2

    def test_pinned_count_exact_under_churn(self):
        registry = ModelRegistry(factory, num_tasks=1, capacity=2)
        for spec in SPECS:
            registry.add(spec, registry._build(spec))
        assert registry.stats()["pinned"] == 3
        registry.remove(SPECS[1])
        registry.unpin(SPECS[2])
        assert registry.stats()["pinned"] == 1
        assert registry._pinned <= set(registry._models)
