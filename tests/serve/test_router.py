"""Dynamic-batching router tests: flush semantics, ordering, parity, caches.

The load-bearing contracts:

* **parity** — a routed request's logits are bit-identical to
  ``InferenceService.predict`` on the same graphs (the assembled
  micro-batch; for a single-request flush, the one graph itself), for
  several specs and both flush triggers.  The reference service is an
  *independent* instance sharing only the supernet, so the comparison
  cannot be satisfied by response memoization alone.
* **order preservation** — ``drain()`` yields completed requests in
  global submission order even when specs interleave, and every ticket
  carries the row of *its own* graph.
* **cache integration** — ``InferenceService.invalidate_logits`` reaches
  routed responses exactly as it reaches list requests.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.space import FineTuneStrategySpec
from repro.core.supernet import S2PGNNSupernet
from repro.gnn import GNNEncoder
from repro.serve import BatchingRouter, InferenceService

SPEC_A = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                              fusion="last", readout="mean")
SPEC_B = FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                              fusion="mean", readout="sum")


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


@pytest.fixture(scope="module")
def routed(tiny_dataset):
    """A supernet-backed service plus an independent reference service.

    Both build their models warm-started from the same supernet with the
    same seed, so the reference predicts the same bits without sharing
    any cache with the routed service.
    """
    graphs = tiny_dataset.graphs[:24]
    supernet = S2PGNNSupernet(factory(), DEFAULT_SPACE,
                              num_tasks=tiny_dataset.num_tasks, seed=0)
    service = InferenceService(factory, tiny_dataset.num_tasks,
                               supernet=supernet, batch_size=8, seed=0)
    reference = InferenceService(factory, tiny_dataset.num_tasks,
                                 supernet=supernet, batch_size=8, seed=0)
    return graphs, service, reference


class TestFlushTriggers:
    def test_flush_on_size(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=4, max_delay=100)
        tickets = [router.submit(g, SPEC_A) for g in graphs[:4]]
        # The 4th submit filled the bucket: flushed inline, queue empty.
        assert all(t.done for t in tickets)
        assert router.pending == 0
        assert router.flushes["size"] == 1 and router.batches == 1

    def test_flush_on_deadline(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=100, max_delay=3)
        first = router.submit(graphs[0], SPEC_A)
        assert router.tick(2) == []          # age 2 < max_delay
        late = router.submit(graphs[1], SPEC_A)  # joins the aging bucket
        done = router.tick(1)                # oldest age hits 3: flush
        assert first.done and late.done
        assert [r.seq for r in done] == [0, 1]
        assert router.flushes["deadline"] == 1 and router.batches == 1

    def test_deadline_counts_from_oldest_request(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=100, max_delay=2)
        router.submit(graphs[0], SPEC_A)
        router.tick(1)
        router.submit(graphs[1], SPEC_B)     # younger bucket
        done = router.tick(1)                # only SPEC_A's bucket expired
        assert [r.spec for r in done] == [SPEC_A]
        assert router.pending == 1
        assert router.tick(1) and router.pending == 0

    def test_empty_queue_flush_is_noop(self, routed):
        _, service, _ = routed
        router = BatchingRouter(service, max_batch_size=4, max_delay=4)
        assert router.flush() == []
        assert router.flush(SPEC_A) == []
        assert router.tick(10) == []
        assert router.batches == 0 and router.served == 0

    def test_backpressure_flushes_oldest_bucket(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=4, max_delay=100,
                                max_pending=4)
        specs = [FineTuneStrategySpec(identity=("zero_aug", i), fusion="last",
                                      readout="mean")
                 for i in DEFAULT_SPACE.identity[:3]]
        first = router.submit(graphs[0], specs[0])
        for g, spec in zip(graphs[1:4], [specs[1], specs[2], specs[1]]):
            router.submit(g, spec)
        assert router.pending == 4 and not first.done
        router.submit(graphs[4], specs[2])   # exceeds max_pending
        assert first.done                    # oldest bucket served, not dropped
        assert router.flushes["backpressure"] == 1
        assert router.pending == 4 - 1 + 1   # specs[0] bucket (1 req) flushed

    def test_parameter_validation(self, routed):
        _, service, _ = routed
        with pytest.raises(ValueError):
            BatchingRouter(service, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingRouter(service, max_delay=0)
        with pytest.raises(ValueError):
            BatchingRouter(service, max_batch_size=8, max_pending=4)


class TestOrderingAndTickets:
    def test_order_preserved_under_interleaved_specs(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=100, max_delay=100)
        tickets = [router.submit(g, SPEC_A if i % 2 == 0 else SPEC_B)
                   for i, g in enumerate(graphs[:10])]
        done = router.flush()
        assert [r.seq for r in done] == list(range(10))
        assert router.drain() == sorted(done, key=lambda r: r.seq)
        assert router.drain() == []          # each request drains once
        # Every ticket carries the row of its *own* graph: recompute each
        # spec's micro-batch through the service and match per position.
        for spec in (SPEC_A, SPEC_B):
            group = [t for t in tickets if t.spec is spec]
            batch_logits = service.predict([t.graph for t in group], spec,
                                           batch_size=len(group))
            for i, t in enumerate(group):
                assert np.array_equal(t.result(), batch_logits[i])

    def test_result_before_flush_raises(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=4, max_delay=4)
        ticket = router.submit(graphs[0], SPEC_A)
        with pytest.raises(RuntimeError, match="still queued"):
            ticket.result()
        router.flush()
        assert ticket.result().shape == (service.models.num_tasks,)

    def test_result_rows_are_private_copies(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=2, max_delay=4)
        a = router.submit(graphs[0], SPEC_A)
        b = router.submit(graphs[1], SPEC_A)
        a.result()[...] = 1e9
        assert float(np.abs(b.result()).max()) < 1e6

    def test_drain_window_is_bounded(self, routed):
        """A caller that holds tickets and never drains must not make the
        router retain every served graph + logits row forever."""
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=2, max_delay=100,
                                max_undrained=4)
        tickets = [router.submit(g, SPEC_A) for g in graphs[:10]]
        assert all(t.done for t in tickets)          # holders keep results
        assert len(router._completed) == 4
        drained = router.drain()
        assert [t.seq for t in drained] == [6, 7, 8, 9]  # oldest aged out
        with pytest.raises(ValueError):
            BatchingRouter(service, max_undrained=0)

    def test_predict_one_piggybacks_on_pending_bucket(self, routed):
        graphs, service, _ = routed
        router = BatchingRouter(service, max_batch_size=100, max_delay=100)
        pending = [router.submit(g, SPEC_A) for g in graphs[:3]]
        out = router.predict_one(graphs[3], SPEC_A)
        assert out.shape == (service.models.num_tasks,)
        assert all(t.done for t in pending)  # served in the same forward
        assert router.batches == 1 and router.served == 4


class TestParity:
    """Routed logits vs ``InferenceService.predict`` on the same graphs,
    through an independent reference service — >= 2 specs, both triggers."""

    @pytest.mark.parametrize("spec", [SPEC_A, SPEC_B],
                             ids=lambda s: s.describe())
    def test_single_request_parity_size_trigger(self, routed, spec):
        graphs, service, reference = routed
        router = BatchingRouter(service, max_batch_size=1, max_delay=100)
        for g in graphs[:3]:
            ticket = router.submit(g, spec)   # size-1 bucket: flushed inline
            assert ticket.done
            ref = reference.predict([g], spec, batch_size=1)
            assert np.array_equal(ticket.result(), ref[0])
        assert router.flushes["size"] == 3

    @pytest.mark.parametrize("spec", [SPEC_A, SPEC_B],
                             ids=lambda s: s.describe())
    def test_single_request_parity_deadline_trigger(self, routed, spec):
        graphs, service, reference = routed
        router = BatchingRouter(service, max_batch_size=100, max_delay=2)
        ticket = router.submit(graphs[5], spec)
        router.tick(2)
        assert ticket.done and router.flushes["deadline"] == 1
        ref = reference.predict([graphs[5]], spec, batch_size=1)
        assert np.array_equal(ticket.result(), ref[0])

    @pytest.mark.parametrize("spec", [SPEC_A, SPEC_B],
                             ids=lambda s: s.describe())
    @pytest.mark.parametrize("trigger", ["size", "deadline"])
    def test_micro_batch_parity(self, routed, spec, trigger):
        graphs, service, reference = routed
        if trigger == "size":
            router = BatchingRouter(service, max_batch_size=6, max_delay=100)
        else:
            router = BatchingRouter(service, max_batch_size=100, max_delay=1)
        tickets = [router.submit(g, spec) for g in graphs[:6]]
        if trigger == "deadline":
            router.tick(1)
        assert all(t.done for t in tickets)
        assert router.flushes[trigger] == 1
        ref = reference.predict(graphs[:6], spec, batch_size=6)
        for i, t in enumerate(tickets):
            assert np.array_equal(t.result(), ref[i])

    def test_predict_one_parity(self, routed):
        graphs, service, reference = routed
        for spec in (SPEC_A, SPEC_B):
            got = service.predict_one(graphs[7], spec)
            ref = reference.predict([graphs[7]], spec, batch_size=1)
            assert np.array_equal(got, ref[0])

    def test_onehot_routing_parity(self, routed):
        graphs, service, reference = routed
        router = BatchingRouter(service, max_batch_size=4, max_delay=100,
                                onehot=True)
        tickets = [router.submit(g, SPEC_A) for g in graphs[:4]]
        ref = reference.predict_spec_onehot(graphs[:4], SPEC_A, batch_size=4)
        for i, t in enumerate(tickets):
            assert np.array_equal(t.result(), ref[i])


class TestServiceFacade:
    def test_submit_flush_tick_delegate_to_default_router(self, routed):
        graphs, service, _ = routed
        service.router(max_batch_size=100, max_delay=2)  # reconfigure default
        ticket = service.submit(graphs[0], SPEC_A)
        assert service.default_router.pending == 1
        assert service.tick(2) == [ticket] and ticket.done
        ticket = service.submit(graphs[1], SPEC_B)
        assert service.flush() == [ticket] and ticket.done
        assert "router" in service.stats()

    def test_reconfiguring_router_flushes_pending_requests(self, tiny_dataset):
        """Replacing the default router must not orphan queued tickets in
        an unreachable router where they would never resolve."""
        graphs = tiny_dataset.graphs[:4]
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        service.router(max_batch_size=100, max_delay=100)
        pending = service.submit(graphs[0], SPEC_A)
        service.router(max_batch_size=4, max_delay=2)  # reconfigure
        assert pending.done
        assert pending.result().shape == (tiny_dataset.num_tasks,)

    def test_default_router_created_lazily(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        assert "router" not in service.stats()
        router = service.default_router
        assert isinstance(router, BatchingRouter)
        assert service.default_router is router
        assert "router" in service.stats()

    def test_invalidate_logits_reaches_routed_responses(self, tiny_dataset):
        """Routed micro-batches flow through the service's response LRU:
        repeated identical single requests are memoized, and
        ``invalidate_logits`` is the same escape hatch list requests use
        after weight mutation."""
        graphs = tiny_dataset.graphs[:4]
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        first = service.predict_one(graphs[0], SPEC_A)
        hits_before = service.logit_hits
        again = service.predict_one(graphs[0], SPEC_A)
        assert service.logit_hits == hits_before + 1
        assert np.array_equal(first, again)

        model = service.model_for(SPEC_A)
        model.head.weight.data = model.head.weight.data + 1.0
        # Frozen-model contract: still the memoized response...
        assert np.array_equal(service.predict_one(graphs[0], SPEC_A), first)
        # ...until invalidation, which reaches routed responses too.
        service.invalidate_logits()
        assert not np.array_equal(service.predict_one(graphs[0], SPEC_A), first)
