"""Inference memory plane, end to end through the serve stack (PR 7).

The tentpole contract has three legs:

* **registration-time casting** — a dtype-set :class:`ModelRegistry`
  casts frozen weights once, in place, when a model enters; checkpoints
  round-trip dtype-preservingly (the satellite-2 regression: loading a
  float32 serving checkpoint must not silently re-upcast to float64);
* **toleranced float32 parity** — a ``policy="float32"`` service tracks
  the float64 service within fixed numeric budgets, including a
  *committed accuracy delta* (:data:`ACCURACY_DELTA_BUDGET`) that the
  benchmark (``benchmarks/BENCH_memory_plane.json``) also records;
* **workspace steady state** — after the first pass over a graph set,
  repeated predictions lease every kernel output buffer from the
  policy's :class:`WorkspacePool`: zero new allocations (misses frozen,
  hit rate -> 1).
"""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.space import FineTuneStrategySpec
from repro.core.supernet import DerivedModel, S2PGNNSupernet
from repro.gnn import GNNEncoder
from repro.nn import load_state_dict, use_dtype
from repro.serve import BatchCacheRegistry, InferenceService, ModelRegistry

SPECS = [
    FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                         fusion="last", readout="mean"),
    FineTuneStrategySpec(identity=("identity_aug", "zero_aug"),
                         fusion="mean", readout="sum"),
]

#: |logit_f32 - logit_f64| bound for the tiny serving models below.  The
#: forward is a few dozen float32 matmuls/reductions over unit-scale
#: activations; observed deltas sit around 1e-6, so 1e-4 is ~100x slack
#: without ever masking a real dtype bug (which shows up at 1e-1+).
LOGIT_TOL = 1e-4

#: The committed serving-accuracy budget: |score_f32 - score_f64| on the
#: fixed-seed evaluation below.  Scores are metric outputs in [0, 1];
#: float32 serving moves them by <1e-5 here.  The benchmark snapshot
#: (BENCH_memory_plane.json) records the measured delta against the same
#: budget at full scale.
ACCURACY_DELTA_BUDGET = 1e-3


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


@pytest.fixture(scope="module")
def supernet(tiny_dataset):
    return S2PGNNSupernet(factory(), DEFAULT_SPACE,
                          num_tasks=tiny_dataset.num_tasks, seed=0)


def make_service(tiny_dataset, supernet, policy=None, **kwargs):
    return InferenceService(factory, tiny_dataset.num_tasks,
                            supernet=supernet, batch_size=8, seed=0,
                            policy=policy, **kwargs)


class TestRegistryDtypeCasting:
    def test_add_casts_frozen_weights_once(self, tiny_dataset):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks,
                                 dtype="float32")
        model = DerivedModel(factory(), SPECS[0], tiny_dataset.num_tasks,
                             seed=0)
        model.parameters()[0].grad = np.zeros_like(
            model.parameters()[0].data)
        registry.add(SPECS[0], model)
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32
            assert param.grad is None
        for _, buf in model.named_buffers():
            assert buf.dtype == np.float32

    def test_built_models_are_cast(self, tiny_dataset):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks,
                                 dtype="float32")
        model = registry.get(SPECS[0])
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_default_registry_preserves_float64(self, tiny_dataset):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks)
        model = registry.get(SPECS[0])
        assert all(p.data.dtype == np.float64 for p in model.parameters())
        assert registry.stats()["dtype"] == "float64"

    def test_stats_report_serving_dtype(self, tiny_dataset):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks,
                                 dtype="float32")
        assert registry.stats()["dtype"] == "float32"


class TestCheckpointDtypeRoundTrip:
    """Satellite 2: npz round-trips preserve parameter dtype."""

    def test_float32_checkpoint_survives_save_and_load(self, tiny_dataset,
                                                       tmp_path):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks,
                                 dtype="float32")
        source = registry.get(SPECS[0])
        path = registry.save_checkpoint(SPECS[0], str(tmp_path / "m.npz"))

        # The raw state dict reloads as float32 — npz preserved the dtype.
        state = load_state_dict(path)
        float_arrays = [v for v in state.values() if v.dtype.kind == "f"]
        assert float_arrays and all(v.dtype == np.float32
                                    for v in float_arrays)

        # Loading into a float64 model adopts the checkpoint's dtype (the
        # historical behaviour force-upcast to float64, breaking the
        # "cast once at registration" economics).
        target = DerivedModel(factory(), SPECS[0], tiny_dataset.num_tasks,
                              seed=1)
        target.load_state_dict(state)
        for _, param in target.named_parameters():
            assert param.data.dtype == np.float32
        for (_, a), (_, b) in zip(source.named_parameters(),
                                  target.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_float64_checkpoints_stay_float64(self, tiny_dataset, tmp_path):
        registry = ModelRegistry(factory, tiny_dataset.num_tasks)
        registry.get(SPECS[0])
        path = registry.save_checkpoint(SPECS[0], str(tmp_path / "m64.npz"))
        state = load_state_dict(path)
        assert all(v.dtype == np.float64 for v in state.values()
                   if v.dtype.kind == "f")

    def test_registry_load_checkpoint_lands_in_serving_dtype(
            self, tiny_dataset, tmp_path):
        f64_registry = ModelRegistry(factory, tiny_dataset.num_tasks)
        f64_registry.get(SPECS[0])
        path = f64_registry.save_checkpoint(SPECS[0], str(tmp_path / "c.npz"))
        serving = ModelRegistry(factory, tiny_dataset.num_tasks,
                                dtype="float32")
        model = serving.load_checkpoint(SPECS[0], path)
        assert all(p.data.dtype == np.float32 for p in model.parameters())


class TestServingPolicyParity:
    @pytest.fixture(scope="class")
    def services(self, tiny_dataset, supernet):
        return (make_service(tiny_dataset, supernet),
                make_service(tiny_dataset, supernet, policy="float32"))

    def test_float32_logits_track_float64(self, services, tiny_dataset):
        f64, f32 = services
        graphs = tiny_dataset.graphs[:20]
        for spec in SPECS:
            ref = f64.predict(graphs, spec)
            got = f32.predict(graphs, spec)
            assert ref.dtype == np.float64
            assert got.dtype == np.float32
            assert got.shape == ref.shape
            assert np.abs(got - ref).max() <= LOGIT_TOL

    def test_onehot_fast_path_under_policy(self, services, tiny_dataset):
        f64, f32 = services
        graphs = tiny_dataset.graphs[:20]
        ref = f64.predict_spec_onehot(graphs, SPECS[0])
        got = f32.predict_spec_onehot(graphs, SPECS[0])
        assert got.dtype == np.float32
        assert np.abs(got - ref).max() <= LOGIT_TOL

    def test_accuracy_delta_within_committed_budget(self, services,
                                                    tiny_dataset):
        f64, f32 = services
        graphs = tiny_dataset.graphs[:40]
        metric = tiny_dataset.info.metric
        ref = f64.score_specs(SPECS, graphs, metric=metric)
        got = f32.score_specs(SPECS, graphs, metric=metric)
        for a, b in zip(ref, got):
            assert a.spec == b.spec
            assert abs(a.score - b.score) <= ACCURACY_DELTA_BUDGET

    def test_stats_expose_the_policy(self, services):
        f64, f32 = services
        assert "policy" not in f64.stats()
        policy = f32.stats()["policy"]
        assert policy["dtype"] == "float32"
        assert set(policy["workspace"]) == {
            "threads", "hits", "misses", "passes", "hit_rate", "buffers",
            "held_bytes"}


class TestWorkspaceSteadyState:
    def test_repeat_requests_allocate_nothing(self, tiny_dataset, supernet):
        # logit_cache_size=0: every predict recomputes the forward, which
        # is exactly what must hit the workspace instead of allocating.
        service = make_service(tiny_dataset, supernet, policy="float32",
                               logit_cache_size=0)
        graphs = tiny_dataset.graphs[:20]
        service.warm(graphs)
        pool = service.policy.workspace

        service.predict(graphs, SPECS[0])  # first pass: misses populate
        warm = pool.stats()
        assert warm["misses"] > 0

        for _ in range(3):
            service.predict(graphs, SPECS[0])
        steady = pool.stats()
        assert steady["misses"] == warm["misses"]  # zero new allocations
        assert steady["hits"] > warm["hits"]
        assert steady["hit_rate"] > warm["hit_rate"]

    def test_held_bytes_stay_bounded_across_requests(self, tiny_dataset,
                                                     supernet):
        service = make_service(tiny_dataset, supernet, policy="float32",
                               logit_cache_size=0)
        graphs = tiny_dataset.graphs[:16]
        service.predict(graphs, SPECS[0])
        held = service.policy.workspace.stats()["held_bytes"]
        for _ in range(4):
            service.predict(graphs, SPECS[0])
        assert service.policy.workspace.stats()["held_bytes"] == held


class TestBatchCacheDtypeKeying:
    def test_loaders_are_separated_by_policy_dtype(self, tiny_dataset):
        cache = BatchCacheRegistry()
        graphs = tiny_dataset.graphs[:12]
        loader64 = cache.loader(graphs, 8)
        with use_dtype("float32"):
            loader32 = cache.loader(graphs, 8)
            assert loader32 is not loader64
            assert cache.loader(graphs, 8) is loader32  # hit within dtype
        assert cache.loader(graphs, 8) is loader64

    def test_batches_snapshot_their_collation_dtype(self, tiny_dataset):
        cache = BatchCacheRegistry()
        graphs = tiny_dataset.graphs[:12]
        batch64 = next(iter(cache.loader(graphs, 8)))
        with use_dtype("float32"):
            batch32 = next(iter(cache.loader(graphs, 8)))
        assert batch64.y.dtype == np.float64
        assert batch32.y.dtype == np.float32
        # Immutable after collation: re-reading outside the policy scope
        # must serve the snapshot, not re-materialize.
        assert next(iter(cache.loader(graphs, 8))).y.dtype == np.float64

    def test_invalidate_matches_members_with_dtype_key(self, tiny_dataset):
        cache = BatchCacheRegistry()
        graphs = tiny_dataset.graphs[:12]
        cache.loader(graphs, 8)
        with use_dtype("float32"):
            cache.loader(graphs, 8)
        assert len(cache) == 2
        cache.invalidate(graphs[:1])  # member-id slot sits after the dtype
        assert len(cache) == 0
