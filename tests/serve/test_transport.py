"""Transport protocol tests: codecs, in-process dict protocol, real HTTP.

The in-process transport and the HTTP transport share one
``ServingProtocol`` core, so protocol semantics (submit/result windows,
error mapping, payload validation) are pinned against the in-process
transport — deterministic, no sockets — and the HTTP tests only add the
wire: real POST/GET round-trips through ``http.server`` + ``urllib``,
status-code mapping, and concurrent connections.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.space import FineTuneStrategySpec
from repro.gnn import GNNEncoder
from repro.serve import (
    HTTPServingClient,
    HTTPServingTransport,
    InferenceServer,
    InferenceService,
    InProcessTransport,
)
from repro.serve.transport import (
    TransportError,
    _Handler,
    graph_from_payload,
    graph_to_payload,
    spec_from_payload,
    spec_to_payload,
)

SPEC_A = FineTuneStrategySpec(identity=("zero_aug", "zero_aug"),
                              fusion="last", readout="mean")


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


@pytest.fixture
def server(tiny_dataset):
    service = InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                               seed=0)
    with InferenceServer(service, num_workers=2, max_batch_size=4,
                         max_delay=2, tick_interval_s=0.001) as srv:
        yield srv


@pytest.fixture
def reference(tiny_dataset):
    return InferenceService(factory, tiny_dataset.num_tasks, batch_size=8,
                            seed=0)


class TestCodecs:
    def test_graph_round_trip(self, tiny_dataset):
        graph = tiny_dataset.graphs[0]
        clone = graph_from_payload(json.loads(json.dumps(graph_to_payload(graph))))
        assert np.array_equal(clone.x, graph.x)
        assert np.array_equal(clone.edge_index, graph.edge_index)
        assert np.array_equal(clone.edge_attr, graph.edge_attr)
        assert np.array_equal(clone.y, graph.y)

    def test_unlabeled_graph_round_trip(self, tiny_dataset):
        graph = tiny_dataset.graphs[0].copy()
        graph.y = None
        assert graph_from_payload(graph_to_payload(graph)).y is None

    def test_spec_round_trip(self):
        clone = spec_from_payload(json.loads(json.dumps(spec_to_payload(SPEC_A))))
        assert clone == SPEC_A  # frozen dataclass equality == same strategy

    def test_malformed_graph_rejected(self):
        with pytest.raises(ValueError):
            graph_from_payload({"x": [[0, 0]], "edge_index": [[0], [5]],
                                "edge_attr": [[0, 0]], "y": None})


class TestInProcessProtocol:
    def test_predict_matches_service(self, tiny_dataset, server, reference):
        transport = InProcessTransport(server)
        graph = tiny_dataset.graphs[0]
        logits = transport.predict(graph, SPEC_A, timeout_s=30)
        # The JSON round-trip rebuilds the graph object, so the service
        # collates a fresh batch — values equal, bits equal (same arrays).
        ref = reference.predict([graph], SPEC_A, batch_size=1)
        assert np.array_equal(logits, ref[0])

    def test_submit_then_result(self, tiny_dataset, server):
        transport = InProcessTransport(server)
        seq = transport.submit(tiny_dataset.graphs[1], SPEC_A)
        reply = transport.result(seq, timeout_s=30)
        assert reply["seq"] == seq
        assert len(reply["logits"]) == tiny_dataset.num_tasks
        assert reply["batch_size"] >= 1

    def test_result_pending_then_unknown_seq(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        with InferenceServer(service, num_workers=1, max_batch_size=100,
                             max_delay=10_000, tick_interval_s=None) as srv:
            transport = InProcessTransport(srv)
            seq = transport.submit(tiny_dataset.graphs[0], SPEC_A)
            assert transport.result(seq)["pending"] is True  # not flushed yet
            srv.flush()
            assert "logits" in transport.result(seq, timeout_s=30)
            with pytest.raises(TransportError, match="unknown or expired"):
                transport.result(seq + 999)

    def test_malformed_requests_raise_transport_errors(self, server):
        transport = InProcessTransport(server)
        with pytest.raises(TransportError, match="malformed request"):
            transport.request("predict", {"graph": {"x": "nope"}})
        with pytest.raises(TransportError, match="unknown operation"):
            transport.request("frobnicate", {})
        with pytest.raises(TransportError, match="integer 'seq'"):
            transport.request("result", {})

    def test_stats_are_json_safe(self, server):
        stats = InProcessTransport(server).stats()
        json.dumps(stats)  # numpy scalars would raise
        assert stats["server"]["workers"] == 2

    def test_ticket_window_drops_only_resolved(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        with InferenceServer(service, num_workers=1, max_batch_size=2,
                             max_delay=10_000, tick_interval_s=None) as srv:
            transport = InProcessTransport(srv, ticket_window=3)
            seqs = [transport.submit(g, SPEC_A)
                    for g in tiny_dataset.graphs[:8]]
            srv.flush()
            for seq in seqs:
                transport.result(seq, timeout_s=30)  # one-shot claims
            # Claimed tickets leave the window; nothing unresolved lingers.
            assert len(transport.protocol._tickets) <= 3
            with pytest.raises(TransportError, match="unknown or expired"):
                transport.result(seqs[0])  # already claimed


class TestResultClaim:
    """The one-shot claim must be atomic and must cover failed tickets."""

    def test_concurrent_pollers_exactly_one_claim(self, tiny_dataset):
        # Regression: handle_result used to check done-ness and then
        # delete the ticket in a separate lock section, so two pollers
        # racing on a resolved seq could both deliver (or crash on the
        # second delete).  The pop under the window lock must pick
        # exactly one winner.
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        with InferenceServer(service, num_workers=1, max_batch_size=2,
                             max_delay=10_000, tick_interval_s=None) as srv:
            transport = InProcessTransport(srv)
            seq = transport.submit(tiny_dataset.graphs[0], SPEC_A)
            srv.flush()
            transport.result(seq, timeout_s=30)  # poll once -> resolved...
            # ...but claimed!  Re-submit to race on a fresh resolved seq.
            seq = transport.submit(tiny_dataset.graphs[1], SPEC_A)
            srv.flush()

            outcomes = []
            barrier = threading.Barrier(8)

            def poll():
                barrier.wait()
                try:
                    outcomes.append(("ok", transport.result(seq, timeout_s=30)))
                except TransportError as err:
                    outcomes.append(("expired", str(err)))

            threads = [threading.Thread(target=poll) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        wins = [reply for tag, reply in outcomes if tag == "ok"]
        assert len(wins) == 1, f"{len(wins)} pollers claimed seq {seq}"
        assert "logits" in wins[0] and wins[0]["seq"] == seq
        assert sum(tag == "expired" for tag, _ in outcomes) == 7

    def test_failed_ticket_is_claimed_not_wedged(self, tiny_dataset):
        # Regression: a failed micro-batch used to raise out of
        # handle_result *before* the ticket left the window, so the seq
        # wedged there re-raising forever (and, over HTTP, burning a 500
        # per poll).  The error must be delivered as a one-shot claim.
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        # onehot routing without a supernet: every micro-batch fails.
        with InferenceServer(service, num_workers=1, max_batch_size=2,
                             max_delay=10_000, tick_interval_s=None,
                             onehot=True) as srv:
            transport = InProcessTransport(srv)
            seq = transport.submit(tiny_dataset.graphs[0], SPEC_A)
            srv.flush()
            reply = transport.result(seq, timeout_s=30)
            assert reply["seq"] == seq
            assert "error" in reply and "logits" not in reply
            # the claim emptied the window — the seq is gone, not wedged
            with pytest.raises(TransportError, match="unknown or expired"):
                transport.result(seq)

    def test_json_safe_numpy_bools(self):
        # Regression: _json_safe missed np.bool_ (not an np.integer
        # subclass), so a stats tree containing one blew up json.dumps.
        from types import SimpleNamespace

        from repro.serve.transport import _json_safe

        tree = {
            "running": np.bool_(True),
            "flags": [np.bool_(False), np.True_],
            "count": np.int64(3),
            "ratio": np.float32(0.5),
            "mask": np.array([True, False]),
        }
        safe = json.loads(json.dumps(_json_safe(tree)))
        assert safe["running"] is True
        assert safe["flags"] == [False, True]
        assert safe["count"] == 3 and abs(safe["ratio"] - 0.5) < 1e-9
        assert safe["mask"] == [True, False]
        # and through the stats handler, end to end
        from repro.serve.transport import ServingProtocol

        protocol = ServingProtocol(SimpleNamespace(stats=lambda: tree))
        json.dumps(protocol.handle("stats", {}))


class TestHandlerErrorBoundary:
    """The HTTP handler's catch-all must never swallow interpreter exits."""

    @staticmethod
    def _bare_handler(raise_err):
        """A ``_Handler`` with no socket: stubbed core + reply collector."""
        from types import SimpleNamespace

        class _Core:
            def handle(self, op, payload):
                raise raise_err

        handler = _Handler.__new__(_Handler)
        handler.server = SimpleNamespace(serving_protocol=_Core())
        handler.replies = []
        handler._reply = lambda status, body: handler.replies.append(
            (status, body))
        return handler

    def test_plain_exception_maps_to_500(self):
        handler = self._bare_handler(RuntimeError("boom"))
        handler._dispatch("predict", {})
        assert handler.replies == [(500, {"error": "RuntimeError: boom"})]

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_interpreter_exits_propagate(self, exc_type):
        handler = self._bare_handler(exc_type())
        with pytest.raises(exc_type):
            handler._dispatch("predict", {})
        assert handler.replies == []  # no 500 written for a dying process

    def test_transport_and_timeout_mapping_unchanged(self):
        handler = self._bare_handler(TransportError("bad request"))
        handler._dispatch("predict", {})
        assert handler.replies == [(400, {"error": "bad request"})]
        handler = self._bare_handler(TimeoutError("too slow"))
        handler._dispatch("predict", {})
        assert handler.replies == [(504, {"error": "too slow"})]


class TestHTTPTransport:
    def test_predict_round_trip(self, tiny_dataset, server, reference):
        with HTTPServingTransport(server, port=0) as http:
            client = HTTPServingClient(http.url)
            graph = tiny_dataset.graphs[2]
            logits = client.predict(graph, SPEC_A, timeout_s=30)
            ref = reference.predict([graph], SPEC_A, batch_size=1)
            assert np.array_equal(logits, ref[0])

    def test_submit_result_stats_endpoints(self, tiny_dataset, server):
        with HTTPServingTransport(server, port=0) as http:
            client = HTTPServingClient(http.url)
            seq = client.submit(tiny_dataset.graphs[3], SPEC_A)
            reply = client.result(seq, timeout_s=30)
            assert reply["seq"] == seq and "logits" in reply
            stats = client.stats()
            assert stats["server_router"]["served"] >= 1
            # GET /stats works too (the curl-able endpoint)
            with urllib.request.urlopen(f"{http.url}/stats", timeout=10) as resp:
                assert json.loads(resp.read())["server"]["running"] is True

    def test_error_status_codes(self, tiny_dataset, server):
        with HTTPServingTransport(server, port=0) as http:
            client = HTTPServingClient(http.url)
            with pytest.raises(RuntimeError, match=r"\(400\)"):
                client.result(10_000_000)  # unknown seq
            request = urllib.request.Request(f"{http.url}/predict",
                                             data=b"not json", method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{http.url}/nope", timeout=10)
            assert err.value.code == 404

    def test_predict_timeout_maps_to_504(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        # Deadline ~ max_delay * tick_interval = hours; nothing flushes a
        # lone request before the client's tiny predict timeout expires.
        with InferenceServer(service, num_workers=1, max_batch_size=100,
                             max_delay=10_000, tick_interval_s=5.0) as srv:
            with HTTPServingTransport(srv, port=0) as http:
                client = HTTPServingClient(http.url)
                with pytest.raises(RuntimeError, match=r"\(504\)"):
                    client.predict(tiny_dataset.graphs[0], SPEC_A,
                                   timeout_s=0.05)

    def test_failed_batch_maps_to_500_and_result_claims_error(self, tiny_dataset):
        service = InferenceService(factory, tiny_dataset.num_tasks,
                                   batch_size=8, seed=0)
        with InferenceServer(service, num_workers=1, max_batch_size=1,
                             max_delay=1, tick_interval_s=0.001,
                             onehot=True) as srv:  # no supernet: all batches fail
            with HTTPServingTransport(srv, port=0) as http:
                client = HTTPServingClient(http.url)
                with pytest.raises(RuntimeError, match=r"\(500\)"):
                    client.predict(tiny_dataset.graphs[0], SPEC_A, timeout_s=30)
                # submit/result path: the error arrives as a one-shot
                # claim dict, not a status blast, and then expires.
                seq = client.submit(tiny_dataset.graphs[1], SPEC_A)
                reply = client.result(seq, timeout_s=30)
                assert reply["seq"] == seq and "error" in reply
                with pytest.raises(RuntimeError, match=r"\(400\)"):
                    client.result(seq)

    def test_dead_server_raises_typed_connection_error(self, tiny_dataset, server):
        from repro.serve import TransportConnectionError

        with HTTPServingTransport(server, port=0) as http:
            url = http.url
            client = HTTPServingClient(url, timeout_s=2.0)
            client.stats()  # alive
        # transport stopped: connection refused must surface as the typed
        # error the cluster router keys failover on, not a bare RuntimeError
        with pytest.raises(TransportConnectionError):
            client.stats()

    def test_concurrent_http_clients(self, tiny_dataset, server, reference):
        graphs = tiny_dataset.graphs
        expected = {id(g): reference.predict([g], SPEC_A, batch_size=1)[0]
                    for g in graphs[:6]}
        failures = []
        with HTTPServingTransport(server, port=0) as http:
            def client_thread(tid):
                try:
                    client = HTTPServingClient(http.url)
                    for i in range(4):
                        g = graphs[(tid + i) % 6]
                        logits = client.predict(g, SPEC_A, timeout_s=30)
                        # Batch composition under concurrency is nondeterministic,
                        # so allow micro-batch BLAS-shape float noise here; exact
                        # parity is pinned via batch replay in the stress suite.
                        if not np.allclose(logits, expected[id(g)], atol=1e-9):
                            failures.append((tid, i))
                except BaseException as err:
                    failures.append(repr(err))

            threads = [threading.Thread(target=client_thread, args=(t,))
                       for t in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures
