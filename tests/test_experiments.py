"""Tests for the experiments harness: configs, runners, formatters."""

import numpy as np
import pytest

from repro.experiments import (
    BENCH_SCALE,
    SMOKE_SCALE,
    Scale,
    average_gain,
    run_s2pgnn,
    run_strategy,
    run_table9,
    run_table11,
)
from repro.experiments.configs import (
    CLASSIFICATION_DATASETS,
    REGRESSION_DATASETS,
    TABLE6_DATASETS,
    TABLE6_PRETRAIN_METHODS,
    TABLE8_STRATEGIES,
)
from repro.experiments.tables import format_table7, format_table9, format_table11


class TestConfigs:
    def test_table6_covers_all_paper_rows(self):
        assert len(TABLE6_PRETRAIN_METHODS) == 10
        assert len(TABLE6_DATASETS) == 8
        assert set(REGRESSION_DATASETS) == {"esol", "lipo"}
        assert len(CLASSIFICATION_DATASETS) == 6

    def test_table8_covers_paper_variants(self):
        names = [(n, tuple(sorted(kw.items()))) for n, kw in TABLE8_STRATEGIES]
        ks = [kw["k"] for n, kw in TABLE8_STRATEGIES if n == "last_k"]
        ms = [kw["adapter_dim"] for n, kw in TABLE8_STRATEGIES if n == "adapter"]
        assert sorted(ks) == [1, 2, 3]
        assert sorted(ms) == [2, 4, 8]

    def test_scales_preserve_layer_count(self):
        # K=5 keeps the 10,206-strategy space; only smoke shrinks it.
        assert BENCH_SCALE.num_layers == 5
        assert SMOKE_SCALE.num_layers < BENCH_SCALE.num_layers

    def test_toxcast_task_override(self):
        kwargs = BENCH_SCALE.dataset_kwargs("toxcast")
        assert kwargs["num_tasks"] == BENCH_SCALE.toxcast_tasks
        assert "num_tasks" not in BENCH_SCALE.dataset_kwargs("bbbp")


class TestGain:
    def test_classification_gain_positive_when_improved(self):
        base = {"mean": 0.70, "metric": "roc_auc"}
        ours = {"mean": 0.77, "metric": "roc_auc"}
        assert average_gain(base, ours) == pytest.approx(0.1)

    def test_regression_gain_positive_when_rmse_drops(self):
        base = {"mean": 2.0, "metric": "rmse"}
        ours = {"mean": 1.5, "metric": "rmse"}
        assert average_gain(base, ours) == pytest.approx(0.25)

    def test_metric_mismatch_raises(self):
        with pytest.raises(ValueError):
            average_gain({"mean": 1, "metric": "rmse"}, {"mean": 1, "metric": "roc_auc"})


class TestRunners:
    def test_run_strategy_output_contract(self):
        out = run_strategy("vanilla", "edgepred", "bbbp", scale=SMOKE_SCALE)
        assert set(out) >= {"mean", "std", "seconds_per_epoch", "scores", "metric"}
        assert len(out["scores"]) == len(SMOKE_SCALE.seeds)

    def test_run_s2pgnn_records_specs(self):
        out = run_s2pgnn("edgepred", "bbbp", scale=SMOKE_SCALE)
        assert len(out["specs"]) == len(SMOKE_SCALE.seeds)
        assert all("fuse=" in s for s in out["specs"])

    def test_run_table9_has_all_variants(self):
        out = run_table9(["bbbp"], scale=SMOKE_SCALE)
        assert set(out) == {"full", "no_id", "no_fuse", "no_read"}
        assert "avg_drop" in out["no_fuse"]

    def test_run_table11_reports_seconds(self):
        out = run_table11(["vanilla"], ["bbbp"], scale=SMOKE_SCALE)
        assert out["vanilla"]["bbbp"] > 0
        assert out["vanilla"]["avg"] > 0


class TestFormatters:
    def test_format_table7_layout(self):
        results = {
            "vanilla": {"bbbp": {"mean": 0.7, "std": 0.01, "metric": "roc_auc"},
                        "avg": 0.7},
            "s2pgnn": {"bbbp": {"mean": 0.75, "std": 0.02, "metric": "roc_auc"},
                       "avg": 0.75},
        }
        text = format_table7(results, ["bbbp"])
        assert "Table VII" in text
        assert "70.0" in text and "75.0" in text

    def test_format_table9_marks_drops(self):
        results = {
            "full": {"bbbp": {"mean": 0.8, "std": 0.0, "metric": "roc_auc"}},
            "no_id": {"bbbp": {"mean": 0.7, "std": 0.0, "metric": "roc_auc"},
                      "avg_drop": -0.125},
        }
        text = format_table9(results, ["bbbp"])
        assert "-12.5%" in text

    def test_format_table11_seconds(self):
        results = {"vanilla": {"bbbp": 0.123, "avg": 0.123}}
        text = format_table11(results, ["bbbp"])
        assert "0.123" in text


class TestFormatTable10:
    def test_backbone_row_labels_clean(self):
        results = {
            "gcn": {
                "bbbp": {
                    "vanilla": {"mean": 0.6, "std": 0.01, "metric": "roc_auc"},
                    "s2pgnn": {"mean": 0.7, "std": 0.01, "metric": "roc_auc"},
                },
                "avg_gain": 0.1,
            }
        }
        from repro.experiments.tables import format_table10

        text = format_table10(results, ["bbbp"])
        assert "contextpred(gcn)" in text
        assert ":<24" not in text  # regression: format spec must not leak
        assert "+10.0%" in text
