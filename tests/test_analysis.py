"""Tests for strategy analysis helpers."""

import pytest

from repro.analysis import (
    candidate_frequencies,
    dimension_agreement,
    spec_distance,
    summarize_specs,
)
from repro.core import FineTuneStrategySpec


def spec(ids, fuse, read):
    return FineTuneStrategySpec(identity=tuple(ids), fusion=fuse, readout=read)


VANILLA = spec(["zero_aug"] * 3, "last", "mean")
RICH = spec(["identity_aug", "trans_aug", "zero_aug"], "lstm", "set2set")


class TestFrequencies:
    def test_normalized_per_dimension(self):
        freq = candidate_frequencies([VANILLA, RICH])
        for dim in ("identity", "fusion", "readout"):
            assert sum(freq[dim].values()) == pytest.approx(1.0)

    def test_counts_identity_across_layers(self):
        freq = candidate_frequencies([VANILLA])
        assert freq["identity"] == {"zero_aug": 1.0}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            candidate_frequencies([])


class TestAgreement:
    def test_identical_specs_full_agreement(self):
        agreement = dimension_agreement([VANILLA, VANILLA])
        assert agreement == {"identity": 1.0, "fusion": 1.0, "readout": 1.0}

    def test_disjoint_specs_zero_agreement(self):
        agreement = dimension_agreement([VANILLA, RICH])
        assert agreement["fusion"] == 0.0
        assert agreement["readout"] == 0.0
        assert agreement["identity"] == pytest.approx(1 / 3)  # zero_aug matches once

    def test_needs_two(self):
        with pytest.raises(ValueError):
            dimension_agreement([VANILLA])


class TestDistance:
    def test_zero_for_identical(self):
        assert spec_distance(VANILLA, VANILLA) == 0.0

    def test_one_for_fully_different(self):
        other = spec(["identity_aug"] * 3, "mean", "sum")
        assert spec_distance(VANILLA, other) == 1.0

    def test_symmetric(self):
        assert spec_distance(VANILLA, RICH) == spec_distance(RICH, VANILLA)

    def test_depth_mismatch_raises(self):
        shallow = spec(["zero_aug"], "last", "mean")
        with pytest.raises(ValueError):
            spec_distance(VANILLA, shallow)


class TestSummary:
    def test_mentions_datasets_and_agreement(self):
        text = summarize_specs({"bbbp": [VANILLA], "esol": [RICH]})
        assert "bbbp" in text and "esol" in text
        assert "agreement" in text
        assert "Most selected" in text

    def test_single_spec_no_agreement_block(self):
        text = summarize_specs({"bbbp": [VANILLA]})
        assert "agreement" not in text
