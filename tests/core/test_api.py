"""Tests for the high-level S2PGNNFineTuner API."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_SPACE,
    FineTuneStrategySpec,
    S2PGNNFineTuner,
    SearchConfig,
)
from repro.core.api import FineTuneConfig
from repro.finetune import GTOTFineTune
from repro.gnn import GNNEncoder


def factory():
    return GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)


def make_tuner(**kwargs):
    defaults = dict(
        search_config=SearchConfig(epochs=2, batch_size=16, seed=0),
        finetune_config=FineTuneConfig(epochs=2, patience=2),
        seed=0,
    )
    defaults.update(kwargs)
    return S2PGNNFineTuner(factory, **defaults)


class TestFit:
    def test_fit_populates_attributes(self, tiny_dataset):
        tuner = make_tuner()
        result = tuner.fit(tiny_dataset)
        assert tuner.best_spec_ is not None
        assert tuner.search_result_ is not None
        assert tuner.model_ is not None
        assert np.isfinite(result.test_score)
        assert result.strategy == "s2pgnn"

    def test_fit_with_explicit_spec_skips_search(self, tiny_dataset):
        spec = FineTuneStrategySpec(identity=("zero_aug", "identity_aug"),
                                    fusion="mean", readout="sum")
        tuner = make_tuner()
        tuner.fit(tiny_dataset, spec=spec)
        assert tuner.best_spec_ == spec
        assert tuner.search_result_ is None

    def test_predict_shapes(self, tiny_dataset):
        tuner = make_tuner()
        tuner.fit(tiny_dataset)
        preds = tuner.predict(tiny_dataset.graphs[:10])
        assert preds.shape == (10, tiny_dataset.num_tasks)

    def test_predict_before_fit_raises(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            make_tuner().predict(tiny_dataset.graphs[:2])

    def test_search_only_entry_point(self, tiny_dataset):
        tuner = make_tuner()
        spec = tuner.search(tiny_dataset)
        assert spec == tuner.best_spec_
        assert tuner.model_ is None  # no fine-tuning happened

    def test_combinable_with_regularized_strategy(self, tiny_dataset):
        """Paper Sec. IV-C1: regularizers like GTOT are orthogonal to S2PGNN."""
        tuner = make_tuner(strategy=GTOTFineTune(weight=0.01))
        result = tuner.fit(tiny_dataset)
        assert np.isfinite(result.test_score)

    def test_degraded_space_respected(self, tiny_dataset):
        tuner = make_tuner(space=DEFAULT_SPACE.without_readout())
        tuner.fit(tiny_dataset)
        assert tuner.best_spec_.readout == "mean"

    def test_deterministic_fit(self, tiny_dataset):
        a = make_tuner().fit(tiny_dataset).test_score
        b = make_tuner().fit(tiny_dataset).test_score
        assert a == pytest.approx(b)


class TestPredictServing:
    def test_predict_restores_eval_mode(self, tiny_dataset):
        """Regression: predict() used to call model_.train() on exit even
        when the model was in eval mode, silently re-enabling dropout for
        any subsequent caller."""
        tuner = make_tuner()
        tuner.fit(tiny_dataset)
        tuner.model_.eval()
        tuner.predict(tiny_dataset.graphs[:5])
        assert not tuner.model_.training
        tuner.model_.train()
        tuner.predict(tiny_dataset.graphs[:5])
        assert tuner.model_.training

    def test_predict_routes_through_shared_batch_cache(self, tiny_dataset):
        """Regression: predict() hard-coded its own fresh DataLoader; it
        must draw batches from the run-wide registry so repeated requests
        (and splits already collated by fit) never re-collate."""
        tuner = make_tuner()
        tuner.fit(tiny_dataset)
        graphs = tiny_dataset.graphs[:10]
        tuner.predict(graphs)
        loader = tuner.batch_cache.loader(graphs, 64)
        collations = loader.num_collations
        preds = tuner.predict(graphs)
        assert loader.num_collations == collations  # no re-collation
        assert np.array_equal(preds, tuner.predict(graphs))

    def test_predict_unchanged_by_caching(self, tiny_dataset):
        """Cached-batch predictions must equal a fresh uncached forward."""
        from repro.graph import DataLoader
        from repro.nn import no_grad

        tuner = make_tuner()
        tuner.fit(tiny_dataset)
        graphs = tiny_dataset.graphs[:10]
        served = tuner.predict(graphs)
        tuner.model_.eval()
        with no_grad():
            ref = np.concatenate(
                [tuner.model_(b).data.copy()
                 for b in DataLoader(graphs, batch_size=64)], axis=0)
        tuner.model_.train()
        assert np.array_equal(served, ref)
