"""Tests for the fine-tuning search space (paper Table III, Remark 3)."""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE, FineTuneSpace, FineTuneStrategySpec


class TestSpaceSize:
    def test_paper_remark3_size(self):
        """5-layer GIN => 3^5 * 7 * 6 = 10,206 candidate strategies."""
        assert DEFAULT_SPACE.size(5) == 10_206

    def test_size_formula_general(self):
        assert DEFAULT_SPACE.size(1) == 3 * 7 * 6
        assert DEFAULT_SPACE.size(2) == 9 * 7 * 6

    def test_candidate_sets_match_paper_table3(self):
        assert DEFAULT_SPACE.conv == ("pre_trained",)
        assert DEFAULT_SPACE.identity == ("zero_aug", "identity_aug", "trans_aug")
        assert DEFAULT_SPACE.fusion == ("last", "concat", "max", "mean", "ppr", "lstm", "gpr")
        assert DEFAULT_SPACE.readout == ("sum", "mean", "max", "set2set", "sort", "neural")

    def test_enumerate_matches_size(self):
        space = FineTuneSpace(identity=("zero_aug", "identity_aug"),
                              fusion=("last", "mean"), readout=("sum",))
        specs = list(space.enumerate(2))
        assert len(specs) == space.size(2) == 4 * 2 * 1
        assert len(set(specs)) == len(specs)  # all distinct

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            FineTuneSpace(fusion=())


class TestRandomSpec:
    def test_spec_within_space(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            spec = DEFAULT_SPACE.random_spec(5, rng)
            assert len(spec.identity) == 5
            assert all(i in DEFAULT_SPACE.identity for i in spec.identity)
            assert spec.fusion in DEFAULT_SPACE.fusion
            assert spec.readout in DEFAULT_SPACE.readout

    def test_sampling_covers_space(self):
        rng = np.random.default_rng(1)
        fusions = {DEFAULT_SPACE.random_spec(2, rng).fusion for _ in range(200)}
        assert fusions == set(DEFAULT_SPACE.fusion)


class TestAblationSpaces:
    def test_without_identity(self):
        space = DEFAULT_SPACE.without_identity()
        assert space.identity == ("zero_aug",)
        assert space.size(5) == 7 * 6

    def test_without_fusion(self):
        space = DEFAULT_SPACE.without_fusion()
        assert space.fusion == ("last",)
        assert space.size(5) == 3 ** 5 * 6

    def test_without_readout(self):
        space = DEFAULT_SPACE.without_readout()
        assert space.readout == ("mean",)
        assert space.size(5) == 3 ** 5 * 7

    def test_ablations_preserve_other_dimensions(self):
        assert DEFAULT_SPACE.without_identity().fusion == DEFAULT_SPACE.fusion
        assert DEFAULT_SPACE.without_fusion().readout == DEFAULT_SPACE.readout


class TestSpec:
    def test_describe_contains_choices(self):
        spec = FineTuneStrategySpec(identity=("zero_aug",), fusion="lstm", readout="sum")
        text = spec.describe()
        assert "lstm" in text and "sum" in text and "zero_aug" in text

    def test_specs_hashable_and_comparable(self):
        a = FineTuneStrategySpec(identity=("zero_aug",), fusion="last", readout="mean")
        b = FineTuneStrategySpec(identity=("zero_aug",), fusion="last", readout="mean")
        assert a == b and len({a, b}) == 1
