"""Tests for the Gumbel-softmax strategy controller (paper Eq. 17-18)."""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.controller import StrategyController
from repro.nn import Adam


@pytest.fixture
def controller():
    return StrategyController(DEFAULT_SPACE, num_layers=3)


class TestSampling:
    def test_sample_shapes(self, controller, rng):
        s = controller.sample(tau=1.0, rng=rng)
        assert len(s.identity) == 3
        assert s.identity[0].shape == (3,)
        assert s.fusion.shape == (7,)
        assert s.readout.shape == (6,)

    def test_samples_are_distributions(self, controller, rng):
        s = controller.sample(tau=1.0, rng=rng)
        for w in s.identity + [s.fusion, s.readout]:
            assert np.all(w.data >= 0)
            assert abs(w.data.sum() - 1.0) < 1e-9

    def test_low_tau_near_discrete(self, controller, rng):
        s = controller.sample(tau=0.01, rng=rng)
        assert s.fusion.data.max() > 0.99

    def test_hard_sampling_exact_onehot(self, controller, rng):
        s = controller.sample(tau=0.5, rng=rng, hard=True)
        assert set(np.unique(s.readout.data)) <= {0.0, 1.0}
        assert s.readout.data.sum() == 1.0

    def test_uniform_init_probabilities(self, controller):
        probs = controller.probabilities()
        assert np.allclose(probs["fusion"], 1.0 / 7)
        assert np.allclose(probs["identity"], 1.0 / 3)
        assert np.allclose(probs["readout"], 1.0 / 6)

    def test_expectation_no_noise(self, controller):
        e1 = controller.expectation()
        e2 = controller.expectation()
        assert np.allclose(e1.fusion.data, e2.fusion.data)


class TestDerivation:
    def test_derive_returns_argmax(self, controller):
        controller.alpha_fusion.data[2] = 5.0  # "max"
        controller.alpha_readout.data[0] = 5.0  # "sum"
        controller.alpha_identity.data[1, 2] = 5.0  # layer 1 -> trans_aug
        spec = controller.derive()
        assert spec.fusion == "max"
        assert spec.readout == "sum"
        assert spec.identity[1] == "trans_aug"

    def test_derive_layerwise_independent(self, controller):
        controller.alpha_identity.data[0, 0] = 3.0
        controller.alpha_identity.data[2, 1] = 3.0
        spec = controller.derive()
        assert spec.identity[0] == "zero_aug"
        assert spec.identity[2] == "identity_aug"


class TestLearning:
    def test_alpha_gradient_through_sample(self, controller, rng):
        s = controller.sample(tau=0.7, rng=rng)
        (s.fusion * np.arange(7.0)).sum().backward()
        assert controller.alpha_fusion.grad is not None

    def test_optimizing_alpha_shifts_distribution(self, controller):
        """Minimizing -phi[target] should concentrate mass on the target."""
        rng = np.random.default_rng(0)
        opt = Adam(controller.parameters(), lr=0.2)
        target = 4  # candidate "ppr"
        for _ in range(60):
            s = controller.sample(tau=0.7, rng=rng)
            loss = -s.fusion[target].log()
            opt.zero_grad()
            loss.backward()
            opt.step()
        probs = controller.probabilities()["fusion"]
        assert np.argmax(probs) == target
        assert probs[target] > 0.5
