"""Tests for the evolutionary strategy search (gradient-free alternative)."""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE, EvolutionConfig, EvolutionarySearcher
from repro.gnn import GNNEncoder


def make_searcher(dataset, **overrides):
    config = EvolutionConfig(
        warmup_epochs=1, population_size=4, generations=3,
        tournament_size=2, seed=0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    encoder = GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)
    return EvolutionarySearcher(encoder, dataset, config=config)


class TestEvolution:
    def test_search_returns_valid_spec(self, tiny_dataset):
        result = make_searcher(tiny_dataset).search()
        assert result.spec.fusion in DEFAULT_SPACE.fusion
        assert result.spec.readout in DEFAULT_SPACE.readout
        assert len(result.spec.identity) == 2
        assert np.isfinite(result.score)

    def test_history_tracks_generations(self, tiny_dataset):
        result = make_searcher(tiny_dataset).search()
        assert len(result.history) == 3
        assert all("best_fitness" in h for h in result.history)

    def test_best_fitness_never_degrades(self, tiny_dataset):
        """Regularized evolution keeps the best individual's score monotone
        as long as the best isn't the oldest — check the recorded best only
        improves or stays equal across most generations."""
        result = make_searcher(tiny_dataset, generations=5).search()
        fits = [h["best_fitness"] for h in result.history]
        # Not strictly monotone (aging can evict the best), but the final
        # best must be at least the median of the trajectory.
        assert fits[-1] >= float(np.median(fits)) - 1e-9

    def test_deterministic_given_seed(self, tiny_dataset):
        a = make_searcher(tiny_dataset).search().spec
        b = make_searcher(tiny_dataset).search().spec
        assert a == b

    def test_mutation_stays_in_space(self, tiny_dataset):
        searcher = make_searcher(tiny_dataset)
        rng = np.random.default_rng(0)
        spec = DEFAULT_SPACE.random_spec(2, rng)
        for _ in range(30):
            spec = searcher._mutate(spec, rng)
            assert spec.fusion in DEFAULT_SPACE.fusion
            assert spec.readout in DEFAULT_SPACE.readout
            assert all(i in DEFAULT_SPACE.identity for i in spec.identity)

    def test_mutation_rate_one_always_changes_something(self, tiny_dataset):
        searcher = make_searcher(tiny_dataset, mutation_rate=1.0)
        rng = np.random.default_rng(1)
        spec = DEFAULT_SPACE.random_spec(2, rng)
        changed = sum(searcher._mutate(spec, rng) != spec for _ in range(10))
        assert changed >= 8  # occasionally a mutation re-draws the same value

    def test_regression_dataset(self, tiny_regression_dataset):
        result = make_searcher(tiny_regression_dataset).search()
        assert np.isfinite(result.score)

    def test_best_ever_survives_aging_out(self, tiny_dataset):
        """Regression: regularized evolution ages the oldest individual out
        each generation, so with generations >= population_size every
        warm-up individual dies.  Under a fitness landscape where the very
        first evaluated spec is the best ever and all children are worse,
        the old argmax-over-survivors returned a worse survivor; the
        searcher must return the best spec ever evaluated."""
        searcher = make_searcher(tiny_dataset, population_size=3,
                                 generations=4, warmup_epochs=0)
        evaluated = []

        def rigged_fitness(spec, valid_graphs):
            evaluated.append(spec)
            return 10.0 if len(evaluated) == 1 else 1.0 / len(evaluated)

        searcher._fitness = rigged_fitness
        result = searcher.search()

        assert result.spec == evaluated[0]
        assert result.score == 10.0
        # The best individual is long dead: the surviving population's best
        # is strictly worse, so the old code could not have returned it.
        assert result.history[-1]["best_fitness"] < 10.0
        assert result.history[-1]["best_ever_fitness"] == 10.0
        assert result.history[-1]["best_ever"] == evaluated[0].describe()

    def test_history_records_best_ever(self, tiny_dataset):
        result = make_searcher(tiny_dataset).search()
        for entry in result.history:
            assert entry["best_ever_fitness"] >= entry["best_fitness"] - 1e-12
        # best-ever is monotone over generations (roc_auc: higher better).
        ever = [h["best_ever_fitness"] for h in result.history]
        assert ever == sorted(ever)
        assert result.score == ever[-1]
