"""Regression tests for the temperature-aware mix-threshold schedule.

The schedule must be a pure late-phase optimization: at ``tau_start``
(early epochs) the threshold equals the fixed base, so early-epoch mixing
— the exploration phase the relaxation's unbiasedness depends on — is
bit-for-bit unaffected; only as tau anneals may the threshold rise.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_SPACE
from repro.core.search import S2PGNNSearcher, SearchConfig
from repro.core.supernet import (
    MIX_SKIP_THRESHOLD,
    MIX_SKIP_THRESHOLD_FINAL,
    S2PGNNSupernet,
)
from repro.gnn import GNNEncoder
from repro.graph import Batch


def make_supernet(**kwargs):
    enc = GNNEncoder("gin", num_layers=2, emb_dim=12, dropout=0.0, seed=0)
    return S2PGNNSupernet(enc, DEFAULT_SPACE, num_tasks=2, seed=0, **kwargs)


class TestSchedule:
    def test_early_epochs_keep_base_threshold(self):
        net = make_supernet()
        assert net.update_mix_threshold(1.0, 1.0, 0.1) == MIX_SKIP_THRESHOLD
        assert net.update_mix_threshold(1.5, 1.0, 0.1) == MIX_SKIP_THRESHOLD

    def test_final_threshold_at_tau_end(self):
        net = make_supernet()
        assert net.update_mix_threshold(0.1, 1.0, 0.1) == MIX_SKIP_THRESHOLD_FINAL
        assert net.update_mix_threshold(0.01, 1.0, 0.1) == MIX_SKIP_THRESHOLD_FINAL

    def test_monotone_in_annealing(self):
        net = make_supernet()
        taus = np.geomspace(1.0, 0.1, 7)
        thresholds = [net.update_mix_threshold(t, 1.0, 0.1) for t in taus]
        assert all(a <= b for a, b in zip(thresholds, thresholds[1:]))
        assert thresholds[0] == MIX_SKIP_THRESHOLD
        assert thresholds[-1] == MIX_SKIP_THRESHOLD_FINAL

    def test_disabled_skipping_stays_disabled(self):
        net = make_supernet(mix_threshold=None)
        assert net.update_mix_threshold(0.1, 1.0, 0.1) is None
        assert net.mix_threshold is None

    def test_runtime_disable_is_not_clobbered(self):
        """``mix_threshold = None`` is the documented full-mixture escape
        hatch; the schedule must leave it alone at every temperature."""
        net = make_supernet()
        net.mix_threshold = None
        assert net.update_mix_threshold(1.0, 1.0, 0.1) is None
        assert net.update_mix_threshold(0.1, 1.0, 0.1) is None
        assert net.mix_threshold is None

    def test_direct_numeric_assignment_does_not_leak_into_schedule(self):
        net = make_supernet()
        net.mix_threshold = 0.5  # transient override, not the schedule base
        assert net.update_mix_threshold(1.0, 1.0, 0.1) == MIX_SKIP_THRESHOLD

    def test_degenerate_schedule_keeps_base(self):
        net = make_supernet()
        assert net.update_mix_threshold(0.5, 0.1, 0.1) == MIX_SKIP_THRESHOLD


class TestEarlyEpochMixingUnaffected:
    def test_forward_bit_identical_at_tau_start(self, molecules):
        """An epoch-0 update must not change a soft-mixture forward at all."""
        from repro.core.controller import StrategyController
        from repro.nn import no_grad

        batch = Batch(molecules[:6])
        net_a, net_b = make_supernet(), make_supernet()
        controller = StrategyController(DEFAULT_SPACE, 2)
        strategy = controller.sample(1.0, np.random.default_rng(5))
        net_b.update_mix_threshold(1.0, 1.0, 0.1)  # epoch-0 call
        assert net_b.mix_threshold == net_a.mix_threshold
        with no_grad():
            out_a = net_a.forward_full(batch, strategy)["logits"].data
            out_b = net_b.forward_full(batch, strategy)["logits"].data
        assert np.array_equal(out_a, out_b)


class TestSearcherIntegration:
    def test_search_applies_schedule_and_records_it(self, tiny_dataset):
        encoder = GNNEncoder("gin", num_layers=2, emb_dim=8, dropout=0.0, seed=0)
        cfg = SearchConfig(epochs=2, batch_size=16, alpha_batches_per_epoch=1,
                           derive_candidates=0, seed=0)
        searcher = S2PGNNSearcher(encoder, tiny_dataset, config=cfg)
        result = searcher.search()
        recorded = [h["mix_threshold"] for h in result.history]
        assert recorded[0] == MIX_SKIP_THRESHOLD  # epoch 0: base threshold
        assert recorded[-1] == cfg.mix_threshold_final  # tau_end reached
        assert result.spec is not None

    def test_schedule_can_be_disabled(self, tiny_dataset):
        encoder = GNNEncoder("gin", num_layers=2, emb_dim=8, dropout=0.0, seed=0)
        cfg = SearchConfig(epochs=2, batch_size=16, alpha_batches_per_epoch=1,
                           derive_candidates=0, adaptive_mix_threshold=False, seed=0)
        searcher = S2PGNNSearcher(encoder, tiny_dataset, config=cfg)
        result = searcher.search()
        assert all(h["mix_threshold"] == MIX_SKIP_THRESHOLD
                   for h in result.history)
